//! Integration smoke test for the `minctx` facade: the public API the
//! README-level rustdoc promises.

use minctx::prelude::*;

#[test]
fn quickstart_flow() {
    let doc = parse_xml("<a><b>1</b><b>2</b><c>3</c></a>").unwrap();
    let engine = Engine::new(Strategy::OptMinContext);
    let result = engine.evaluate_str(&doc, "/child::a/child::b").unwrap();
    let nodes = result.into_node_set().unwrap();
    assert_eq!(nodes.len(), 2);
}

#[test]
fn all_strategies_are_constructible_through_the_facade() {
    let doc = parse_xml("<a><b>5</b></a>").unwrap();
    for strategy in Strategy::ALL {
        let engine = Engine::new(strategy);
        let v = engine.evaluate_str(&doc, "sum(//b) = 5").unwrap();
        assert_eq!(v, Value::Boolean(true), "{strategy}");
    }
}

#[test]
fn errors_surface_through_the_facade() {
    let doc = parse_xml("<a/>").unwrap();
    let err = Engine::new(Strategy::MinContext)
        .evaluate_str(&doc, "count(")
        .unwrap_err();
    assert!(matches!(err, EvalError::Parse(_)));
}

#[test]
fn reexported_crates_compose() {
    use minctx::syntax::parse_xpath;
    use minctx::xml::axes::{Axis, NodeTest};

    let doc = parse_xml("<a><b/><c><b/></c></a>").unwrap();
    let bs = doc.axis_nodes(Axis::Descendant, doc.root(), &NodeTest::name("b"));
    assert_eq!(bs.len(), 2);

    let q = parse_xpath("//b").unwrap();
    let v = Engine::new(Strategy::MinContext)
        .evaluate(&doc, &q)
        .unwrap();
    assert_eq!(v.into_node_set().unwrap().len(), 2);
}

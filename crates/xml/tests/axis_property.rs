//! Randomized property tests: the postings-backed axis kernels against
//! the `axis_relates` brute force, on generated documents with attributes,
//! ids, text, comments and PIs.
//!
//! `axis_relates` is an independent oracle — it answers pair membership
//! straight from the arena invariants (parent pointers, subtree ranges)
//! and shares no code with the set kernels' sweeps, postings walks, or
//! preimage constructions.

use minctx_xml::axes::{axis_image, axis_preimage, Axis, NodeTest};
use minctx_xml::{Document, DocumentBuilder, NodeId, NodeSet};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

const LABELS: &[&str] = &["a", "b", "c", "d", "e"];
const ATTR_NAMES: &[&str] = &["p", "q", "id"];

/// A random document: nested elements from a 5-letter alphabet, ~40% of
/// elements attributed (including `id` attributes wired into the id
/// index), text referencing earlier ids half the time.
fn random_doc(seed: u64, target_elements: usize) -> Document {
    let mut rng = seed | 1;
    let mut b = DocumentBuilder::new();
    let mut made = 0usize;
    let mut ids = 0usize;
    fn element(
        b: &mut DocumentBuilder,
        rng: &mut u64,
        made: &mut usize,
        ids: &mut usize,
        depth: usize,
        target: usize,
    ) {
        if *made >= target {
            return;
        }
        *made += 1;
        let label = LABELS[xorshift(rng) as usize % LABELS.len()];
        let id_val;
        let mut attrs: Vec<(&str, &str)> = Vec::new();
        for name in ATTR_NAMES {
            if xorshift(rng) % 100 < 15 {
                if *name == "id" {
                    id_val = format!("k{ids}");
                    *ids += 1;
                    attrs.push((name, &id_val));
                } else {
                    attrs.push((name, "v"));
                }
                break;
            }
        }
        b.start_element(label, &attrs);
        match xorshift(rng) % 10 {
            0 => {
                // Text that may reference an id minted so far.
                if *ids > 0 {
                    b.text(&format!("k{}", xorshift(rng) as usize % *ids));
                } else {
                    b.text("t");
                }
            }
            1 => {
                b.comment("c");
            }
            2 => {
                b.processing_instruction("pi", "d");
            }
            _ => {}
        }
        if depth < 8 {
            let kids = xorshift(rng) as usize % 4;
            for _ in 0..kids {
                element(b, rng, made, ids, depth + 1, target);
            }
        }
        b.end_element();
    }
    b.start_element("r", &[]);
    made += 1;
    while made < target_elements {
        element(&mut b, &mut rng, &mut made, &mut ids, 1, target_elements);
    }
    b.end_element();
    b.finish().expect("random doc is well-formed")
}

fn brute_image(doc: &Document, axis: Axis, x: &NodeSet) -> NodeSet {
    doc.all_nodes()
        .filter(|&y| x.iter().any(|m| doc.axis_relates(axis, m, y)))
        .collect()
}

fn brute_preimage(doc: &Document, axis: Axis, y: &NodeSet) -> NodeSet {
    doc.all_nodes()
        .filter(|&x| y.iter().any(|m| doc.axis_relates(axis, x, m)))
        .collect()
}

fn random_subset(doc: &Document, rng: &mut u64, density_pct: u64) -> NodeSet {
    doc.all_nodes()
        .filter(|_| xorshift(rng) % 100 < density_pct)
        .collect()
}

#[test]
#[cfg_attr(miri, ignore = "property sweep is minutes-long under the interpreter")]
fn image_and_preimage_match_brute_force_on_random_documents() {
    for seed in 1..=6u64 {
        let doc = random_doc(seed * 0x9e37_79b9, 60 + (seed as usize) * 25);
        let mut rng = seed;
        for density in [3, 20, 80] {
            let set = random_subset(&doc, &mut rng, density);
            for axis in Axis::ALL {
                if axis == Axis::Id {
                    // `axis_relates(Id, …)` tokenizes the *concatenated*
                    // string value; the set kernels tokenize per text node
                    // (see DESIGN.md) — covered by the adjointness test
                    // below instead.
                    continue;
                }
                let fast = axis_image(&doc, axis, &set, &NodeTest::AnyNode);
                let slow = brute_image(&doc, axis, &set);
                assert_eq!(
                    fast,
                    slow,
                    "image: seed {seed}, axis {axis}, |X|={}",
                    set.len()
                );
                let fast = axis_preimage(&doc, axis, &set);
                let slow = brute_preimage(&doc, axis, &set);
                assert_eq!(
                    fast,
                    slow,
                    "preimage: seed {seed}, axis {axis}, |Y|={}",
                    set.len()
                );
            }
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "property sweep is minutes-long under the interpreter")]
fn id_axis_image_and_preimage_are_adjoint_on_random_documents() {
    // Both sides of the id-"axis" use per-text-node tokenization (see
    // DESIGN.md), so they must satisfy the Galois-connection property
    // `x ∈ χ⁻¹({y})  ⇔  y ∈ χ({x})` on every pair.
    for seed in [7u64, 11, 13] {
        let doc = random_doc(seed.wrapping_mul(0x1234_5678_9abc), 60);
        let images: Vec<NodeSet> = doc
            .all_nodes()
            .map(|x| axis_image(&doc, Axis::Id, &NodeSet::singleton(x), &NodeTest::AnyNode))
            .collect();
        for y in doc.all_nodes() {
            let pre = axis_preimage(&doc, Axis::Id, &NodeSet::singleton(y));
            for x in doc.all_nodes() {
                assert_eq!(
                    pre.contains(x),
                    images[x.index()].contains(y),
                    "seed {seed}: id-axis adjointness fails at ({x}, {y})"
                );
            }
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "property sweep is minutes-long under the interpreter")]
fn name_test_kernels_match_brute_force_on_random_documents() {
    for seed in 1..=4u64 {
        let doc = random_doc(seed.wrapping_mul(0xdead_beef_1234), 80);
        let mut rng = seed;
        let set = random_subset(&doc, &mut rng, 30);
        for label in ["a", "c", "e", "q", "id", "nosuch"] {
            let test = NodeTest::name(label);
            let t = test.resolve(&doc);
            for axis in Axis::ALL {
                if axis == Axis::Id {
                    continue; // name tests over id targets covered below
                }
                let fast = axis_image(&doc, axis, &set, &test);
                let mut slow = brute_image(&doc, axis, &set);
                slow.retain(|y| t.matches(&doc, axis, y));
                assert_eq!(fast, slow, "seed {seed}, axis {axis}, label {label}");
            }
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "property sweep is minutes-long under the interpreter")]
fn single_origin_axis_nodes_match_brute_force_order() {
    let doc = random_doc(0xabcd_ef12, 70);
    for from in doc.all_nodes() {
        for axis in Axis::ALL {
            for test in [NodeTest::AnyNode, NodeTest::name("b"), NodeTest::name("q")] {
                let fast = doc.axis_nodes(axis, from, &test);
                let t = test.resolve(&doc);
                let mut slow: Vec<NodeId> = doc
                    .all_nodes()
                    .filter(|&y| doc.axis_relates(axis, from, y) && t.matches(&doc, axis, y))
                    .collect();
                if axis.is_reverse() {
                    slow.reverse();
                }
                assert_eq!(fast, slow, "axis {axis} from {from} test {test}");
            }
        }
    }
}

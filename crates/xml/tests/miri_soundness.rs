//! Miri-first soundness tier for the zero-copy column layer.
//!
//! These tests drive every `unsafe` path in `minctx-xml` — borrowed
//! `Col` reads through cached raw pointers, the `NodeId`/`u32`
//! reinterpret behind postings, `from_utf8_unchecked` content spans,
//! and the `StableBytes` keep-alive contract — through the *public*
//! API, with inputs small enough that `cargo miri test` finishes in
//! seconds.  They also run in the ordinary test tier, where they serve
//! as round-trip regression tests.
//!
//! CI runs them under `MIRIFLAGS="-Zmiri-strict-provenance"`, so a
//! provenance-losing pointer round-trip or any out-of-bounds /
//! use-after-free read in the column code fails the job.

use minctx_xml::{Document, RawColumns, StableBytes};
use std::sync::Arc;

/// An 8-aligned, immutable in-memory region: the test stand-in for a
/// mapped snapshot file.
struct FixedBytes {
    buf: Vec<u64>,
    len: usize,
}

// SAFETY: (test) `buf` is never touched after construction, so the
// pointer and length are stable and the bytes immutable for the
// region's lifetime.
unsafe impl StableBytes for FixedBytes {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the buffer holds at least `len` initialized bytes and
        // u64 -> u8 only lowers alignment.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast::<u8>(), self.len) }
    }
}

/// Byte offsets (within the packed region) of the 14 `u32` columns in
/// `RawColumns` field order, then the text heap.
struct Layout {
    cols: [(usize, usize); 14],
    heap: (usize, usize),
}

/// Packs a document's columns into one contiguous 8-aligned region,
/// mimicking the snapshot layout: u32 columns first (4-aligned by
/// construction), text heap last.
fn pack(doc: &Document) -> (Arc<dyn StableBytes>, Layout) {
    let cols = doc.raw_columns();
    let u32_cols: [&[u32]; 14] = [
        cols.kinds,
        cols.parent,
        cols.first_child,
        cols.last_child,
        cols.next_sibling,
        cols.prev_sibling,
        cols.subtree_end,
        cols.text_off,
        cols.elem_off,
        cols.elem_post,
        cols.attr_off,
        cols.attr_post,
        cols.id_attrs,
        cols.id_elems,
    ];
    let mut bytes: Vec<u8> = Vec::new();
    let mut offs = [(0usize, 0usize); 14];
    for (slot, col) in offs.iter_mut().zip(u32_cols) {
        *slot = (bytes.len(), col.len());
        for v in col {
            bytes.extend_from_slice(&v.to_ne_bytes());
        }
    }
    let heap = (bytes.len(), cols.text_heap.len());
    bytes.extend_from_slice(cols.text_heap);

    // Move into the 8-aligned backing.
    let len = bytes.len();
    let mut buf = vec![0u64; len.div_ceil(8)];
    // SAFETY: (test) viewing the zero-initialized u64 buffer as bytes;
    // alignment only decreases and the lengths match.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) }
        .copy_from_slice(&bytes);
    (
        Arc::new(FixedBytes { buf, len }),
        Layout { cols: offs, heap },
    )
}

/// A `u32` view at `(off, count)` inside the packed region.
#[expect(
    clippy::cast_ptr_alignment,
    reason = "the alignment-raising cast is guarded by the assert above it"
)]
fn view(region: &[u8], (off, count): (usize, usize)) -> &[u32] {
    let sl = &region[off..off + count * 4];
    assert_eq!(sl.as_ptr() as usize % 4, 0, "packing broke alignment");
    // SAFETY: (test) bounds and alignment asserted above; every bit
    // pattern is a valid u32.
    unsafe { std::slice::from_raw_parts(sl.as_ptr().cast::<u32>(), count) }
}

/// Reopens `doc` as a borrowed-column document over a packed region.
fn reopen(doc: &Document) -> Document {
    let (keep, lay) = pack(doc);
    let region = keep.bytes();
    let raw = RawColumns {
        kinds: view(region, lay.cols[0]),
        parent: view(region, lay.cols[1]),
        first_child: view(region, lay.cols[2]),
        last_child: view(region, lay.cols[3]),
        next_sibling: view(region, lay.cols[4]),
        prev_sibling: view(region, lay.cols[5]),
        subtree_end: view(region, lay.cols[6]),
        text_off: view(region, lay.cols[7]),
        text_heap: &region[lay.heap.0..lay.heap.0 + lay.heap.1],
        elem_off: view(region, lay.cols[8]),
        elem_post: view(region, lay.cols[9]),
        attr_off: view(region, lay.cols[10]),
        attr_post: view(region, lay.cols[11]),
        id_attrs: view(region, lay.cols[12]),
        id_elems: view(region, lay.cols[13]),
    };
    let names = doc.names().clone();
    Document::from_mapped_columns(raw, names, doc.stamp() | (1 << 63), Arc::clone(&keep))
        .expect("packed columns validate")
}

const DOC: &str =
    r#"<lib x="1"><b id="b1">téxt·1</b><!--c--><?p d?><b id="b2" y="2">t2<i/></b></lib>"#;

#[test]
fn borrowed_columns_round_trip_owned_columns() {
    let owned = minctx_xml::parse(DOC).unwrap();
    let mapped = reopen(&owned);
    assert_eq!(mapped.debug_tree(), owned.debug_tree());
    assert_eq!(
        mapped.string_value(mapped.root()),
        owned.string_value(owned.root())
    );
    for (a, b) in owned.all_nodes().zip(mapped.all_nodes()) {
        assert_eq!(owned.kind(a), mapped.kind(b));
        assert_eq!(owned.content(a), mapped.content(b));
        assert_eq!(owned.subtree_end(a), mapped.subtree_end(b));
    }
}

#[test]
fn nodeid_reinterpret_postings_agree() {
    let owned = minctx_xml::parse(DOC).unwrap();
    let mapped = reopen(&owned);
    // `element_postings` serves `&[NodeId]` reinterpreted from the
    // borrowed `u32` column — the cast Miri checks here.
    let name = mapped.find_name("b").unwrap();
    let posts = mapped.element_postings(name);
    assert_eq!(posts.len(), 2);
    assert_eq!(posts, owned.element_postings(owned.find_name("b").unwrap()));
    assert_eq!(
        mapped.element_by_id("b2").map(|n| n.index()),
        owned.element_by_id("b2").map(|n| n.index())
    );
}

#[test]
fn mapped_document_keeps_its_region_alive() {
    // The Arc inside the document is the only thing keeping the region
    // mapped; reading after every other handle is gone is exactly the
    // use-after-free Miri would catch if the keep-alive were broken.
    let mapped = {
        let owned = minctx_xml::parse(DOC).unwrap();
        reopen(&owned)
        // `owned` and the packing scope drop here.
    };
    assert_eq!(mapped.string_value(mapped.root()), "téxt·1t2");
    assert_eq!(mapped.element_count(), 4);
}

#[test]
fn two_documents_alias_one_region_soundly() {
    let owned = minctx_xml::parse(DOC).unwrap();
    let a = reopen(&owned);
    let b = reopen(&owned);
    drop(owned);
    assert_eq!(a.debug_tree(), b.debug_tree());
    let tree = b.debug_tree();
    drop(a);
    // `b` still reads its own region after `a` (and its region) died.
    assert_eq!(b.debug_tree(), tree);
}

#[test]
fn columns_outside_the_region_are_rejected() {
    // The containment check is the safe-API guard that makes
    // `from_mapped_columns` sound: slices that do not point into the
    // keep-alive region must be refused, never cached.
    let owned = minctx_xml::parse(DOC).unwrap();
    let (keep, _) = pack(&owned);
    let cols = owned.raw_columns();
    let names = owned.names().clone();
    let err = Document::from_mapped_columns(cols, names, 1 << 63, keep);
    assert!(err.is_err(), "out-of-region columns must be rejected");
}

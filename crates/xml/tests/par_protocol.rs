//! Exhaustive offline interleaving checker for the worker-pool chunk
//! hand-off protocol (`minctx_xml::par::WorkerPool`).
//!
//! The offline workspace vendors no loom, so — like the serve layer's
//! `protocol_model.rs` — this test brute-forces the schedule space.
//! The soundness observation carries over: every pool transition runs
//! entirely inside one critical section of the pool's single state
//! mutex — the caller's *publish* (install task, total, reset next and
//! completed), each *claim* (test `next < total`, take `next`,
//! increment), and each *complete* (increment `completed`, record a
//! first panic).  Real threads can therefore only produce behaviors
//! equal to some sequential interleaving of those atomic steps, so
//! enumerating every interleaving of small per-thread programs against
//! a faithful replica of the state machine covers everything the
//! scheduler could do, minus only the condvar wakeup paths (which the
//! pool's own threaded unit tests and the TSan CI job cover).
//!
//! Checked here, across *every* schedule:
//!
//! * each chunk is claimed and executed **exactly once** — no chunk is
//!   lost, none runs twice, nothing executes before the publish;
//! * the caller observes completion only after every chunk has
//!   executed, and the chunk-order merge of the outputs is identical
//!   in every schedule (the bit-identical-results invariant);
//! * when several chunks panic, exactly the schedule-first panic is
//!   recorded and never overwritten;
//! * the checker has teeth: a claim that skips the `next < total`
//!   bound test is shown to over-claim in some schedule.

use std::collections::BTreeSet;

/// Drives `explore` over every interleaving of threads with the given
/// program lengths: each schedule is a sequence of thread indices in
/// which thread `t` appears exactly `lens[t]` times, preserving each
/// thread's program order.  Returns the number of schedules visited.
fn for_each_schedule(lens: &[usize], mut explore: impl FnMut(&[usize])) -> usize {
    fn rec(
        lens: &[usize],
        done: &mut [usize],
        schedule: &mut Vec<usize>,
        count: &mut usize,
        explore: &mut impl FnMut(&[usize]),
    ) {
        if schedule.len() == lens.iter().sum() {
            *count += 1;
            explore(schedule);
            return;
        }
        for t in 0..lens.len() {
            if done[t] < lens[t] {
                done[t] += 1;
                schedule.push(t);
                rec(lens, done, schedule, count, explore);
                schedule.pop();
                done[t] -= 1;
            }
        }
    }
    let mut count = 0;
    rec(
        lens,
        &mut vec![0; lens.len()],
        &mut Vec::new(),
        &mut count,
        &mut explore,
    );
    count
}

#[test]
fn schedule_enumeration_is_exhaustive() {
    // Sanity-check the enumerator itself: merges of (2, 2) = C(4, 2).
    assert_eq!(for_each_schedule(&[2, 2], |_| {}), 6);
    // Multinomial 6! / (2! 2! 2!).
    assert_eq!(for_each_schedule(&[2, 2, 2], |_| {}), 90);
}

/// One atomic step of a pool-model thread.  `Claim` and `Complete` come
/// in pairs because the real worker drops the state lock between
/// claiming a chunk index and bumping the completion counter — the gap
/// where other threads' steps interleave.
#[derive(Clone, Copy)]
enum Op {
    /// The caller installs a region: task live, `total` chunks.
    Publish(usize),
    /// One claim attempt: under the lock, take `next` if the task is
    /// live and `next < total`.
    Claim,
    /// Completion of this thread's most recent successful claim (no-op
    /// if the claim found nothing): execute the chunk, then under the
    /// lock increment `completed` and record a first panic.
    Complete,
}

/// The faithful replica of `par::State`'s fields (plus bookkeeping the
/// assertions need).  `panics` maps chunk index → simulated panic
/// payload for chunks that "panic" while executing.
#[derive(Default)]
struct Model {
    task_live: bool,
    total: usize,
    next: usize,
    completed: usize,
    panic: Option<u32>,
    /// Chunk indices in execution (completion) order.
    executed: Vec<usize>,
    /// Per-thread pending claim, between its Claim and Complete steps.
    pending: Vec<Option<usize>>,
}

/// Replays `programs` under `schedule`; `buggy_unbounded_claim` drops
/// the `next < total` test (the negative control).  Returns the final
/// model for invariant checks.
fn replay(
    programs: &[Vec<Op>],
    schedule: &[usize],
    panics: &[(usize, u32)],
    buggy_unbounded_claim: bool,
) -> Model {
    let mut m = Model {
        pending: vec![None; programs.len()],
        ..Model::default()
    };
    let mut pc = vec![0usize; programs.len()];
    for &t in schedule {
        let op = programs[t][pc[t]];
        pc[t] += 1;
        match op {
            Op::Publish(total) => {
                // The real publish happens with no region in flight
                // (regions are serialized by a separate mutex).
                assert!(!m.task_live, "publish over a live region");
                m.task_live = true;
                m.total = total;
                m.next = 0;
                m.completed = 0;
                m.panic = None;
            }
            Op::Claim => {
                assert!(m.pending[t].is_none(), "claim with one still pending");
                let eligible = if buggy_unbounded_claim {
                    m.task_live
                } else {
                    m.task_live && m.next < m.total
                };
                if eligible {
                    m.pending[t] = Some(m.next);
                    m.next += 1;
                }
            }
            Op::Complete => {
                if let Some(chunk) = m.pending[t].take() {
                    // "Execute" the chunk outside any lock...
                    m.executed.push(chunk);
                    // ...then the completion critical section.
                    if let Some(&(_, payload)) = panics.iter().find(|&&(c, _)| c == chunk) {
                        if m.panic.is_none() {
                            m.panic = Some(payload);
                        }
                    }
                    m.completed += 1;
                }
            }
        }
    }
    m
}

#[test]
#[cfg_attr(
    miri,
    ignore = "450450-schedule enumeration is minutes-long under the interpreter"
)]
fn every_chunk_is_claimed_exactly_once_under_every_interleaving() {
    // Caller publishes 3 chunks then joins the claim loop; like the
    // real caller it keeps claiming until the region drains, so it gets
    // 3 rounds — enough to finish alone if both workers spend all their
    // attempts before the publish (the real workers park on a condvar
    // and retry forever; model attempts are finite).  Two workers race
    // it with 2 claim rounds each, covering pre-publish attempts that
    // must find nothing.  15!/(7!·4!·4!) = 450450 schedules.
    let programs = vec![
        vec![
            Op::Publish(3),
            Op::Claim,
            Op::Complete,
            Op::Claim,
            Op::Complete,
            Op::Claim,
            Op::Complete,
        ],
        vec![Op::Claim, Op::Complete, Op::Claim, Op::Complete],
        vec![Op::Claim, Op::Complete, Op::Claim, Op::Complete],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let n = for_each_schedule(&lens, |s| {
        let m = replay(&programs, s, &[], false);
        // Exactly-once: seven claim attempts against three chunks must
        // execute {0, 1, 2} with no duplicate and no invention.
        let seen: BTreeSet<usize> = m.executed.iter().copied().collect();
        assert_eq!(seen.len(), m.executed.len(), "a chunk ran twice");
        assert_eq!(
            seen,
            (0..3).collect(),
            "chunks lost or out of range: {:?}",
            m.executed
        );
        assert_eq!(m.completed, 3, "completion count drifted");
        // The caller's wait is `completed == total`, which we just saw
        // implies all chunks executed — and the chunk-order merge is
        // schedule-independent by construction: sorting the executed
        // set recovers 0..3 regardless of execution order.
        let mut merged = m.executed.clone();
        merged.sort_unstable();
        assert_eq!(merged, vec![0, 1, 2], "chunk-order merge diverged");
    });
    assert_eq!(n, 450_450);
}

#[test]
fn first_panic_wins_and_both_orders_occur() {
    // Two chunks, both panicking (payloads 100 and 101), one worker
    // each racing the completion critical section.  Whichever Complete
    // runs first must be the recorded payload, the other discarded —
    // and across schedules each must win at least once (so the
    // first-wins rule is actually schedule-dependent, not vacuous).
    let programs = vec![
        vec![Op::Publish(2)],
        vec![Op::Claim, Op::Complete],
        vec![Op::Claim, Op::Complete],
    ];
    let panics = [(0usize, 100u32), (1usize, 101u32)];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut winners = BTreeSet::new();
    for_each_schedule(&lens, |s| {
        let m = replay(&programs, s, &panics, false);
        if m.executed.len() == 2 {
            // Both chunks ran: the recorded panic is the payload of the
            // chunk that completed first, never overwritten.
            let want = panics.iter().find(|&&(c, _)| c == m.executed[0]).unwrap().1;
            assert_eq!(m.panic, Some(want), "a later panic overwrote the first");
            winners.insert(want);
        }
    });
    assert_eq!(
        winners,
        BTreeSet::from([100, 101]),
        "some panic never won — the race is not being exercised"
    );
}

#[test]
fn unbounded_claim_would_overrun_and_the_checker_catches_it() {
    // Negative control: drop the `next < total` bound from the claim
    // and some schedule must claim a chunk index past the end —
    // proving this checker would have flagged the bug had the claim
    // been written that way.
    let programs = vec![
        vec![Op::Publish(2)],
        vec![Op::Claim, Op::Complete, Op::Claim, Op::Complete],
        vec![Op::Claim, Op::Complete],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut overrun_found = false;
    for_each_schedule(&lens, |s| {
        let m = replay(&programs, s, &[], true);
        if m.executed.iter().any(|&c| c >= 2) {
            overrun_found = true;
        }
    });
    assert!(
        overrun_found,
        "the checker failed to expose the unbounded-claim overrun"
    );
}

//! Programmatic document construction.
//!
//! [`DocumentBuilder`] receives SAX-style events (`start_element`, `text`,
//! `end_element`, …) and assembles the pre-order arena of a [`Document`].
//! Both the XML parser and the synthetic workload generators build documents
//! through this one code path, so every invariant (pre-order ids, subtree
//! ranges, sibling links, id index, text-heap spans, CSR postings) is
//! enforced in a single place.

use crate::document::{Document, NONE};
use crate::error::{XmlError, XmlErrorKind};
use crate::name::NameTable;
use crate::node::NodeKind;
use crate::store::{Col, DocStore};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of [`Document::stamp`] values; see [`Document::stamp`].
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// The `xml/documents_built` counter in the process-wide metrics
/// registry, resolved once.  Stamps still come from [`NEXT_STAMP`] (the
/// registry cell must not double as the stamp source — stamps demand
/// uniqueness, metrics only monotonicity).
fn documents_built_counter() -> &'static minctx_obs::Counter {
    static C: std::sync::OnceLock<minctx_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("xml/documents_built"))
}

/// Number of [`Document`]s fully built process-wide (monotone).
///
/// Diagnostics hook: the streaming allocation smoke asserts this is
/// unchanged across `evaluate_reader` on streamable queries — direct
/// proof that the one-pass path never materializes an arena — and the
/// index smoke asserts the same across `open_snapshot` (reopening a
/// snapshot never re-builds, just as it never re-lexes).
///
/// Thin shim over the `xml/documents_built` counter in
/// [`minctx_obs::global`] (where exposition renderers pick it up).
pub fn documents_built() -> u64 {
    documents_built_counter().get()
}

/// Builder stamps are plain counter values with the high bit clear;
/// snapshot-backed documents use content-derived stamps with the high bit
/// set (`minctx-index`), so the two namespaces can never collide in a
/// compiled-query cache.
const STAMP_COUNTER_MASK: u64 = (1 << 63) - 1;

/// Incremental builder for [`Document`]s.
///
/// # Example
///
/// ```
/// use minctx_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new();
/// b.start_element("a", &[("id", "1")]);
/// b.text("hello");
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.string_value(doc.root()), "hello");
/// ```
#[derive(Debug)]
pub struct DocumentBuilder {
    names: NameTable,
    /// Packed kind words ([`NodeKind::pack`]).
    kinds: Vec<u32>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    last_child: Vec<u32>,
    next_sibling: Vec<u32>,
    prev_sibling: Vec<u32>,
    subtree_end: Vec<u32>,
    /// Per-node content start offsets into `text_heap` (the final
    /// `len + 1`-th offset is pushed at `finish`).
    text_off: Vec<u32>,
    /// All content bytes, appended in pre-order.
    text_heap: String,
    /// `(id attribute node, owner element)` in document order; sorted and
    /// deduplicated (first occurrence wins) at `finish`.
    id_pairs: Vec<(u32, u32)>,
    /// Stack of open elements (indices into the arena); root at bottom.
    open: Vec<u32>,
    /// Name of the attribute that provides element ids (`id` by default).
    id_attribute: String,
    /// Whether a top-level element has been completed already.
    saw_document_element: bool,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates a builder holding just the document root node.
    pub fn new() -> Self {
        let mut b = DocumentBuilder {
            names: NameTable::new(),
            kinds: Vec::new(),
            parent: Vec::new(),
            first_child: Vec::new(),
            last_child: Vec::new(),
            next_sibling: Vec::new(),
            prev_sibling: Vec::new(),
            subtree_end: Vec::new(),
            text_off: Vec::new(),
            text_heap: String::new(),
            id_pairs: Vec::new(),
            open: Vec::new(),
            id_attribute: "id".to_string(),
            saw_document_element: false,
        };
        let root = b.push_node(NodeKind::Root, "", NONE);
        b.open.push(root);
        b
    }

    /// Pre-allocates arena capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut b = Self::new();
        b.kinds.reserve(n);
        b.parent.reserve(n);
        b.first_child.reserve(n);
        b.last_child.reserve(n);
        b.next_sibling.reserve(n);
        b.prev_sibling.reserve(n);
        b.subtree_end.reserve(n);
        b.text_off.reserve(n + 1);
        b
    }

    /// Uses `name` instead of `id` as the id-providing attribute.
    pub fn id_attribute(&mut self, name: &str) -> &mut Self {
        self.id_attribute = name.to_string();
        self
    }

    /// Raw node append; returns the arena index.  Links into the sibling
    /// chain of `parent` unless the node is an attribute.
    fn push_node(&mut self, kind: NodeKind, content: &str, parent: u32) -> u32 {
        let idx = u32::try_from(self.kinds.len()).expect("document larger than u32::MAX nodes");
        self.kinds.push(kind.pack());
        self.parent.push(parent);
        self.first_child.push(NONE);
        self.last_child.push(NONE);
        self.next_sibling.push(NONE);
        self.prev_sibling.push(NONE);
        self.subtree_end.push(idx + 1);
        self.text_off
            .push(u32::try_from(self.text_heap.len()).expect("text heap larger than u32::MAX"));
        self.text_heap.push_str(content);
        if parent != NONE && !kind.is_attribute() {
            let prev = self.last_child[parent as usize];
            if prev == NONE {
                self.first_child[parent as usize] = idx;
            } else {
                self.next_sibling[prev as usize] = idx;
                self.prev_sibling[idx as usize] = prev;
            }
            self.last_child[parent as usize] = idx;
        }
        idx
    }

    fn current_parent(&self) -> u32 {
        *self.open.last().expect("builder always has the root open")
    }

    /// Opens an element with the given attributes.
    pub fn start_element(&mut self, name: &str, attrs: &[(&str, &str)]) -> &mut Self {
        let nm = self.names.intern(name);
        let parent = self.current_parent();
        let elem = self.push_node(NodeKind::Element(nm), "", parent);
        for (aname, avalue) in attrs {
            let an = self.names.intern(aname);
            let attr = self.push_node(NodeKind::Attribute(an), avalue, elem);
            if *aname == self.id_attribute {
                self.id_pairs.push((attr, elem));
            }
        }
        self.open.push(elem);
        self
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open (programming error when building
    /// synthetically; the XML parser guards against it).
    pub fn end_element(&mut self) -> &mut Self {
        assert!(self.open.len() > 1, "end_element with no open element");
        let elem = self.open.pop().expect("checked non-empty");
        let end = u32::try_from(self.kinds.len()).expect("checked at push");
        self.subtree_end[elem as usize] = end;
        if self.open.len() == 1 {
            self.saw_document_element = true;
        }
        self
    }

    /// Appends a text node (empty text is dropped, matching the XPath data
    /// model in which empty text nodes do not exist).
    pub fn text(&mut self, content: &str) -> &mut Self {
        if !content.is_empty() {
            let parent = self.current_parent();
            self.push_node(NodeKind::Text, content, parent);
        }
        self
    }

    /// Appends a comment node.
    pub fn comment(&mut self, content: &str) -> &mut Self {
        let parent = self.current_parent();
        self.push_node(NodeKind::Comment, content, parent);
        self
    }

    /// Appends a processing-instruction node.
    pub fn processing_instruction(&mut self, target: &str, content: &str) -> &mut Self {
        let nm = self.names.intern(target);
        let parent = self.current_parent();
        self.push_node(NodeKind::Pi(nm), content, parent);
        self
    }

    /// Convenience: an element with a single text child.
    pub fn leaf(&mut self, name: &str, attrs: &[(&str, &str)], text: &str) -> &mut Self {
        self.start_element(name, attrs);
        self.text(text);
        self.end_element();
        self
    }

    /// How many nodes have been appended so far.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Finalizes the document.
    ///
    /// Fails if elements are still open or if there is no document element.
    pub fn finish(mut self) -> Result<Document, XmlError> {
        if self.open.len() > 1 {
            return Err(XmlError::new(
                XmlErrorKind::UnclosedElements(self.open.len() - 1),
                0,
                0,
                0,
            ));
        }
        if !self.saw_document_element {
            return Err(XmlError::new(XmlErrorKind::NoRootElement, 0, 0, 0));
        }
        let end = u32::try_from(self.kinds.len()).expect("checked at push");
        self.subtree_end[0] = end;
        self.text_off
            .push(u32::try_from(self.text_heap.len()).expect("checked at push"));

        // CSR label postings: a counting sweep, a prefix sum, and a
        // placement sweep.  No per-name allocation at all — in particular
        // none for names that label zero nodes of a family (attribute-only
        // names used to cost an empty element-postings `Vec` each).  The
        // arena is in pre-order, so each name's slice comes out sorted.
        let name_count = self.names.len();
        let (elem_off, elem_post) = csr_postings(&self.kinds, name_count, crate::node::TAG_ELEMENT);
        let (attr_off, attr_post) =
            csr_postings(&self.kinds, name_count, crate::node::TAG_ATTRIBUTE);

        // Id index: sort the (attribute, element) pairs by key bytes.  The
        // pairs are collected in document order, so a stable sort keeps
        // first occurrences first within equal keys and the dedup keeps
        // them (matching the old hash map's first-insert-wins rule).
        let heap = &self.text_heap;
        let text_off = &self.text_off;
        let key = |attr: u32| -> &str {
            &heap[text_off[attr as usize] as usize..text_off[attr as usize + 1] as usize]
        };
        self.id_pairs.sort_by(|a, b| key(a.0).cmp(key(b.0)));
        self.id_pairs
            .dedup_by(|next, first| key(next.0) == key(first.0));
        let (id_attrs, id_elems): (Vec<u32>, Vec<u32>) = self.id_pairs.iter().copied().unzip();

        let store = DocStore {
            kinds: Col::owned(self.kinds),
            parent: Col::owned(self.parent),
            first_child: Col::owned(self.first_child),
            last_child: Col::owned(self.last_child),
            next_sibling: Col::owned(self.next_sibling),
            prev_sibling: Col::owned(self.prev_sibling),
            subtree_end: Col::owned(self.subtree_end),
            text_off: Col::owned(self.text_off),
            text_heap: Col::owned(self.text_heap.into_bytes()),
            elem_off: Col::owned(elem_off),
            elem_post: Col::owned(elem_post),
            attr_off: Col::owned(attr_off),
            attr_post: Col::owned(attr_post),
            id_attrs: Col::owned(id_attrs),
            id_elems: Col::owned(id_elems),
        };
        documents_built_counter().inc();
        Ok(Document {
            names: self.names,
            store,
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed) & STAMP_COUNTER_MASK,
        })
    }
}

/// Builds one CSR postings family for the nodes whose packed kind tag is
/// `tag`: `off` has `name_count + 1` entries and `posts[off[i]..off[i+1]]`
/// are the matching nodes named `i`, in document order.
fn csr_postings(kinds: &[u32], name_count: usize, tag: u32) -> (Vec<u32>, Vec<u32>) {
    use crate::node::{KIND_TAG_BITS, KIND_TAG_MASK};
    // Counting sweep (off[i + 1] accumulates name i's count).
    let mut off = vec![0u32; name_count + 1];
    for &word in kinds {
        if word & KIND_TAG_MASK == tag {
            off[(word >> KIND_TAG_BITS) as usize + 1] += 1;
        }
    }
    // Prefix sum: off[i] = start of name i's slice.
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
    // Placement sweep with a per-name cursor.
    let mut cursor: Vec<u32> = off[..name_count].to_vec();
    let mut posts = vec![0u32; off[name_count] as usize];
    for (i, &word) in kinds.iter().enumerate() {
        if word & KIND_TAG_MASK == tag {
            let nm = (word >> KIND_TAG_BITS) as usize;
            posts[cursor[nm] as usize] = i as u32;
            cursor[nm] += 1;
        }
    }
    (off, posts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::XmlErrorKind;
    use crate::node::NodeId;

    #[test]
    fn build_simple_tree() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[]);
        b.leaf("b", &[], "x");
        b.leaf("b", &[], "y");
        b.end_element();
        let doc = b.finish().unwrap();
        let a = doc.document_element();
        assert_eq!(doc.children(a).count(), 2);
        assert_eq!(doc.string_value(a), "xy");
    }

    #[test]
    fn subtree_end_is_correct() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[]); // idx 1
        b.start_element("b", &[]); // idx 2
        b.text("t"); // idx 3
        b.end_element();
        b.leaf("c", &[], ""); // idx 4
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.subtree_end(doc.root()), 5);
        let a = doc.document_element();
        assert_eq!(doc.subtree_end(a), 5);
        let bnode = doc.first_child(a).unwrap();
        assert_eq!(doc.subtree_end(bnode), 4);
    }

    #[test]
    fn unclosed_element_is_an_error() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[]);
        let err = b.finish().unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::UnclosedElements(1));
    }

    #[test]
    fn empty_document_is_an_error() {
        let b = DocumentBuilder::new();
        let err = b.finish().unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::NoRootElement);
    }

    #[test]
    fn empty_text_nodes_are_dropped() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[]);
        b.text("");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.len(), 2); // root + a
    }

    #[test]
    fn id_index_prefers_first_occurrence() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[("id", "k")]);
        b.leaf("b", &[("id", "k")], "");
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.element_by_id("k"), Some(doc.document_element()));
    }

    #[test]
    fn custom_id_attribute() {
        let mut b = DocumentBuilder::new();
        b.id_attribute("key");
        b.start_element("a", &[("key", "z"), ("id", "ignored")]);
        b.end_element();
        let doc = b.finish().unwrap();
        assert_eq!(doc.element_by_id("z"), Some(doc.document_element()));
        assert_eq!(doc.element_by_id("ignored"), None);
    }

    #[test]
    fn comments_and_pis() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[]);
        b.comment("note");
        b.processing_instruction("target", "data");
        b.end_element();
        let doc = b.finish().unwrap();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.content(kids[0]), "note");
        assert_eq!(doc.label_str(kids[1]), Some("target"));
        // Comments do not contribute to string value.
        assert_eq!(doc.string_value(a), "");
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[("x", "1")]);
        b.leaf("b", &[], "");
        b.leaf("a", &[("x", "2")], "");
        b.leaf("b", &[], "");
        b.end_element();
        let doc = b.finish().unwrap();
        let a_name = doc.find_name("a").unwrap();
        let b_name = doc.find_name("b").unwrap();
        let x_name = doc.find_name("x").unwrap();
        let a_posts = doc.element_postings(a_name);
        let b_posts = doc.element_postings(b_name);
        assert_eq!(a_posts.len(), 2);
        assert_eq!(b_posts.len(), 2);
        assert!(a_posts.windows(2).all(|w| w[0] < w[1]));
        for &n in a_posts {
            assert_eq!(doc.label(n), Some(a_name));
        }
        let x_posts = doc.attribute_postings(x_name);
        assert_eq!(x_posts.len(), 2);
        assert!(x_posts.iter().all(|&n| doc.kind(n).is_attribute()));
        // Attribute names have no element postings and vice versa.
        assert!(doc.element_postings(x_name).is_empty());
        assert!(doc.attribute_postings(b_name).is_empty());
    }

    #[test]
    fn stamps_are_unique_but_shared_by_clones() {
        let mut b = DocumentBuilder::new();
        b.leaf("a", &[], "");
        let d1 = b.finish().unwrap();
        let mut b = DocumentBuilder::new();
        b.leaf("a", &[], "");
        let d2 = b.finish().unwrap();
        assert_ne!(d1.stamp(), d2.stamp());
        assert_eq!(d1.stamp(), d1.clone().stamp());
        // Builder stamps live in the counter namespace (high bit clear);
        // the snapshot namespace (high bit set) can never collide.
        assert_eq!(d1.stamp() >> 63, 0);
    }

    #[test]
    fn attributes_do_not_enter_sibling_chain() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[("x", "1")]);
        b.leaf("b", &[], "");
        b.end_element();
        let doc = b.finish().unwrap();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(doc.label_str(kids[0]), Some("b"));
        // But the attribute is in the subtree range right after the element.
        let attr = NodeId::from_index(a.index() + 1);
        assert!(doc.kind(attr).is_attribute());
        assert_eq!(doc.parent(attr), Some(a));
    }

    #[test]
    fn text_heap_spans_match_contents() {
        let mut b = DocumentBuilder::new();
        b.start_element("a", &[("k", "vv")]);
        b.text("first");
        b.comment("note");
        b.leaf("b", &[], "second");
        b.end_element();
        let doc = b.finish().unwrap();
        // Per-node spans reconstruct every content string; elements and
        // the root have empty spans.
        let contents: Vec<&str> = doc.all_nodes().map(|n| doc.content(n)).collect();
        assert_eq!(contents, vec!["", "", "vv", "first", "note", "", "second"]);
        assert_eq!(
            doc.text_bytes(),
            "vv".len() + "first".len() + "note".len() + "second".len()
        );
    }
}

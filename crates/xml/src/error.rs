//! Error types for XML parsing and document construction.

use std::fmt;

/// Classifies an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closed an element opened as `<a>`.
    MismatchedTag { open: String, close: String },
    /// A close tag without a matching open tag.
    UnmatchedClose(String),
    /// The document ended with unclosed elements.
    UnclosedElements(usize),
    /// More than one top-level element, or text at the top level.
    TrailingContent,
    /// No top-level element at all.
    NoRootElement,
    /// An invalid XML name (element, attribute or PI target).
    InvalidName(String),
    /// Malformed entity or character reference such as `&foo` or `&#xZZ;`.
    BadEntity(String),
    /// An attribute appeared twice on the same element.
    DuplicateAttribute(String),
    /// `--` inside a comment, `]]>` in text, and similar lexical violations.
    Malformed(String),
    /// Element nesting exceeded
    /// [`ParseOptions::max_element_depth`](crate::ParseOptions): the
    /// document is deeper than the configured limit allows (tokenizer
    /// stack slots and consumer state frames grow with depth, so
    /// adversarially deep inputs are cut off instead of exhausting
    /// memory).
    TooDeep {
        /// The configured [`ParseOptions::max_element_depth`](crate::ParseOptions).
        limit: usize,
    },
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            XmlErrorKind::UnmatchedClose(name) => {
                write!(f, "close tag </{name}> without matching open tag")
            }
            XmlErrorKind::UnclosedElements(n) => {
                write!(f, "document ended with {n} unclosed element(s)")
            }
            XmlErrorKind::TrailingContent => write!(f, "content after the document element"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::InvalidName(n) => write!(f, "invalid XML name {n:?}"),
            XmlErrorKind::BadEntity(e) => write!(f, "malformed entity reference {e:?}"),
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::Malformed(m) => write!(f, "malformed XML: {m}"),
            XmlErrorKind::TooDeep { limit } => write!(
                f,
                "element nesting exceeds the configured depth limit of {limit}"
            ),
        }
    }
}

/// An XML parse error with the byte offset and line/column where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    offset: usize,
    line: u32,
    column: u32,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, offset: usize, line: u32, column: u32) -> Self {
        XmlError {
            kind,
            offset,
            line,
            column,
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Byte offset into the input where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// 1-based line number of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based column number (in characters) of the error.
    pub fn column(&self) -> u32 {
        self.column
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.kind, self.line, self.column
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(XmlErrorKind::UnexpectedEof, 10, 2, 5);
        let s = e.to_string();
        assert!(s.contains("line 2"), "{s}");
        assert!(s.contains("column 5"), "{s}");
    }

    #[test]
    fn kind_accessors() {
        let e = XmlError::new(XmlErrorKind::TrailingContent, 3, 1, 4);
        assert_eq!(*e.kind(), XmlErrorKind::TrailingContent);
        assert_eq!(e.offset(), 3);
        assert_eq!(e.line(), 1);
        assert_eq!(e.column(), 4);
    }

    #[test]
    fn mismatched_tag_message() {
        let k = XmlErrorKind::MismatchedTag {
            open: "a".into(),
            close: "b".into(),
        };
        assert_eq!(k.to_string(), "close tag </b> does not match open tag <a>");
    }
}

//! The DOM-building XML parser: a thin fold of the shared pull
//! [`Tokenizer`](crate::token::Tokenizer) into a [`DocumentBuilder`].
//!
//! All lexing — elements, attributes, character data with entity and
//! character references, CDATA sections, comments, processing
//! instructions, the optional XML declaration and the skipped-over
//! DOCTYPE — lives in [`crate::token`]; this module only maps events to
//! builder calls, so the DOM parser and the streaming evaluator
//! (`minctx-stream`) are guaranteed to agree on what the nodes of a
//! document are.  Namespaces are treated as plain names with colons,
//! matching the paper's model which omits the namespace axis.

use crate::builder::DocumentBuilder;
use crate::document::Document;
use crate::error::XmlError;
use crate::token::{Tokenizer, XmlEvent};
use std::io::Read;

pub use crate::token::ParseOptions;

/// Parses an XML document with default options.
pub fn parse(input: &str) -> Result<Document, XmlError> {
    parse_with_options(input, &ParseOptions::default())
}

/// Parses an XML document with explicit [`ParseOptions`].
pub fn parse_with_options(input: &str, opts: &ParseOptions) -> Result<Document, XmlError> {
    build(
        Tokenizer::with_options(input, opts.clone()),
        opts,
        input.len() / 16,
    )
}

/// Parses an XML document from a reader with default options.  The
/// tokenizer's sliding window keeps peak lexing memory proportional to
/// the largest single token; the arena, of course, holds the document.
pub fn parse_reader(reader: impl Read) -> Result<Document, XmlError> {
    parse_reader_with_options(reader, &ParseOptions::default())
}

/// [`parse_reader`] with explicit [`ParseOptions`].
pub fn parse_reader_with_options(
    reader: impl Read,
    opts: &ParseOptions,
) -> Result<Document, XmlError> {
    build(Tokenizer::from_reader(reader, opts.clone()), opts, 0)
}

/// Folds the event stream into a document.
fn build(
    mut tok: Tokenizer<'_>,
    opts: &ParseOptions,
    capacity_hint: usize,
) -> Result<Document, XmlError> {
    let mut b = DocumentBuilder::with_capacity(capacity_hint);
    b.id_attribute(&opts.id_attribute);
    while let Some(ev) = tok.next_event()? {
        match ev {
            XmlEvent::StartElement { name, attrs } => {
                let borrowed: Vec<(&str, &str)> = attrs
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.as_str()))
                    .collect();
                b.start_element(name, &borrowed);
            }
            XmlEvent::EndElement { .. } => {
                b.end_element();
            }
            XmlEvent::Text(t) => {
                b.text(t);
            }
            XmlEvent::Comment(c) => {
                b.comment(c);
            }
            XmlEvent::Pi { target, data } => {
                b.processing_instruction(target, data);
            }
        }
    }
    // The tokenizer has already validated completeness; `finish` re-checks
    // the same invariants structurally.
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::XmlErrorKind;
    use crate::node::NodeKind;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.label_str(doc.document_element()), Some("a"));
    }

    #[test]
    fn xml_declaration_and_doctype() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE a SYSTEM \"x.dtd\"><a/>").unwrap();
        assert_eq!(doc.label_str(doc.document_element()), Some("a"));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let doc = parse("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>t</a>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "t");
    }

    #[test]
    fn entities_in_text_and_attributes() {
        let doc = parse(r#"<a x="&lt;&amp;&gt;">&quot;&apos;&#65;&#x42;</a>"#).unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "x"), Some("<&>"));
        assert_eq!(doc.string_value(a), "\"'AB");
    }

    #[test]
    fn cdata_sections() {
        let doc = parse("<a>x<![CDATA[<not-a-tag> & raw]]>y</a>").unwrap();
        assert_eq!(
            doc.string_value(doc.document_element()),
            "x<not-a-tag> & rawy"
        );
        // CDATA merges with adjacent text into one node.
        let a = doc.document_element();
        assert_eq!(doc.children(a).count(), 1);
    }

    #[test]
    fn comments_and_pis_in_content() {
        let doc = parse("<a><!--c--><?t d?><b/></a>").unwrap();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.kind(kids[0]), NodeKind::Comment);
        assert!(matches!(doc.kind(kids[1]), NodeKind::Pi(_)));
        assert!(doc.kind(kids[2]).is_element());
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_rejected() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::TrailingContent);
        let err = parse("<a/>text").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::TrailingContent);
    }

    #[test]
    fn empty_input_rejected() {
        let err = parse("").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::NoRootElement);
        let err = parse("   \n ").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::NoRootElement);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert_eq!(
            *err.kind(),
            XmlErrorKind::DuplicateAttribute("x".to_string())
        );
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(matches!(
            parse("<a>&nope;</a>").unwrap_err().kind(),
            XmlErrorKind::BadEntity(_)
        ));
        assert!(matches!(
            parse("<a>&#xZZ;</a>").unwrap_err().kind(),
            XmlErrorKind::BadEntity(_)
        ));
        assert!(matches!(
            parse("<a>&#1114112;</a>").unwrap_err().kind(), // > U+10FFFF
            XmlErrorKind::BadEntity(_)
        ));
    }

    #[test]
    fn cdata_end_in_text_rejected() {
        let err = parse("<a>oops ]]> here</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = parse("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        let err = parse(r#"<a x="a<b"/>"#).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn attribute_value_normalization() {
        let doc = parse("<a x=\"one\ttwo\nthree\"/>").unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "x"), Some("one two three"));
    }

    #[test]
    fn whitespace_stripping_option() {
        let input = "<a>\n  <b>x</b>\n  <c/>\n</a>";
        let noisy = parse(input).unwrap();
        let clean = parse_with_options(input, &ParseOptions::paper_model()).unwrap();
        assert!(noisy.len() > clean.len());
        assert_eq!(clean.string_value(clean.root()), "x");
        // Whitespace *inside* meaningful text survives.
        let doc = parse_with_options("<a> x </a>", &ParseOptions::paper_model()).unwrap();
        assert_eq!(doc.string_value(doc.root()), " x ");
    }

    #[test]
    fn error_positions_are_line_column() {
        let err = parse("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
    }

    #[test]
    fn unicode_names_and_content() {
        let doc = parse("<café größe=\"1\">héllo ☃</café>").unwrap();
        let e = doc.document_element();
        assert_eq!(doc.label_str(e), Some("café"));
        assert_eq!(doc.attribute_value(e, "größe"), Some("1"));
        assert_eq!(doc.string_value(e), "héllo ☃");
    }

    #[test]
    fn colonized_names_accepted_as_plain() {
        let doc = parse("<ns:a><ns:b/></ns:a>").unwrap();
        assert_eq!(doc.label_str(doc.document_element()), Some("ns:a"));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for i in 0..300 {
            s.push_str(&format!("<n{i}>"));
        }
        for i in (0..300).rev() {
            s.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&s).unwrap();
        assert_eq!(doc.element_count(), 300);
    }

    #[test]
    fn pi_outside_root_is_allowed_but_dropped() {
        // Prolog/epilog PIs and comments have no parent element; they are
        // skipped (our tree keeps only content under the root element, plus
        // the root node itself).
        let doc = parse("<?style x?><a/><!--after-->").unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn parse_reader_round_trips_parse() {
        // The same lexer backs both entry points, so the arenas must be
        // structurally identical.
        let input = r#"<?xml version="1.0"?><a id="r"><b x="1">t&amp;</b><!--c--><?p d?></a>"#;
        let from_str = parse(input).unwrap();
        let from_reader = parse_reader(input.as_bytes()).unwrap();
        assert_eq!(from_str.debug_tree(), from_reader.debug_tree());
        // Options are honored through the reader path too.
        let noisy = "<a>\n  <b>x</b>\n</a>";
        let clean =
            parse_reader_with_options(noisy.as_bytes(), &ParseOptions::paper_model()).unwrap();
        assert_eq!(
            clean.len(),
            parse_with_options(noisy, &ParseOptions::paper_model())
                .unwrap()
                .len()
        );
    }

    #[test]
    fn parse_reader_reports_errors_with_positions() {
        let err = parse_reader("<a>\n<b></c>\n</a>".as_bytes()).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.line(), 2);
    }
}

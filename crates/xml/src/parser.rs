//! A from-scratch, non-validating XML parser.
//!
//! Supports the XML subset needed by the engine and its workloads:
//! elements, attributes, character data with entity and character
//! references, CDATA sections, comments, processing instructions, an
//! optional XML declaration, and a skipped-over DOCTYPE declaration
//! (without internal-subset markup declarations).  Namespaces are treated
//! as plain names with colons, matching the paper's model which omits the
//! namespace axis.
//!
//! The parser drives a [`DocumentBuilder`], so it shares every structural
//! invariant with programmatically built documents.

use crate::builder::DocumentBuilder;
use crate::document::Document;
use crate::error::{XmlError, XmlErrorKind};

/// Options controlling document construction.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes consisting entirely of XML whitespace.  This matches
    /// the paper's examples (Figure 2 is pretty-printed; its `dom` contains
    /// no whitespace nodes).  Default: `false`.
    pub strip_whitespace_text: bool,
    /// Drop comment nodes.  Default: `false`.
    pub keep_comments: bool,
    /// Drop processing-instruction nodes.  Default: `false`.
    pub keep_processing_instructions: bool,
    /// Attribute name supplying element ids for `id()` (DTDs, the standard
    /// source of ID-typed attributes, are not interpreted).  Default: `id`.
    pub id_attribute: String,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            strip_whitespace_text: false,
            keep_comments: true,
            keep_processing_instructions: true,
            id_attribute: "id".to_string(),
        }
    }
}

impl ParseOptions {
    /// Options matching the paper's data model: whitespace-only text
    /// stripped, comments and PIs kept.
    pub fn paper_model() -> Self {
        ParseOptions {
            strip_whitespace_text: true,
            ..Default::default()
        }
    }
}

/// Parses an XML document with default options.
pub fn parse(input: &str) -> Result<Document, XmlError> {
    parse_with_options(input, &ParseOptions::default())
}

/// Parses an XML document with explicit [`ParseOptions`].
pub fn parse_with_options(input: &str, opts: &ParseOptions) -> Result<Document, XmlError> {
    let mut p = Parser::new(input, opts);
    p.parse_document()?;
    p.builder.finish()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
    builder: DocumentBuilder,
    open_names: Vec<String>,
    text_buf: String,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, opts: &'a ParseOptions) -> Self {
        let mut builder = DocumentBuilder::with_capacity(input.len() / 16);
        builder.id_attribute(&opts.id_attribute);
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            opts,
            builder,
            open_names: Vec::new(),
            text_buf: String::new(),
        }
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        self.err_at(kind, self.pos)
    }

    fn err_at(&self, kind: XmlErrorKind, offset: usize) -> XmlError {
        let mut line = 1u32;
        let mut col = 1u32;
        for c in self.input[..offset.min(self.input.len())].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError::new(kind, offset, line, col)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.pos >= self.input.len() {
            Err(self.err(XmlErrorKind::UnexpectedEof))
        } else {
            let c = self.input[self.pos..].chars().next().expect("in bounds");
            Err(self.err(XmlErrorKind::UnexpectedChar(c)))
        }
    }

    fn parse_document(&mut self) -> Result<(), XmlError> {
        // Optional XML declaration.
        if self.starts_with("<?xml") {
            let close = self.input[self.pos..]
                .find("?>")
                .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
            self.pos += close + 2;
        }
        // Misc (comments, PIs, whitespace), optional DOCTYPE, misc, element,
        // misc.
        let mut seen_element = false;
        loop {
            self.skip_whitespace();
            if self.pos >= self.input.len() {
                break;
            }
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.parse_pi()?;
            } else if self.peek() == Some(b'<') {
                if seen_element {
                    return Err(self.err(XmlErrorKind::TrailingContent));
                }
                self.parse_element()?;
                seen_element = true;
            } else {
                return Err(self.err(XmlErrorKind::TrailingContent));
            }
        }
        if !seen_element {
            return Err(self.err(XmlErrorKind::NoRootElement));
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // "<!DOCTYPE" ... '>' with possible [...] internal subset (skipped,
        // not interpreted) and quoted system/public literals.
        self.pos += "<!DOCTYPE".len();
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'[' => {
                    depth += 1;
                    self.pos += 1;
                }
                b']' => {
                    depth = depth.saturating_sub(1);
                    self.pos += 1;
                }
                b'"' | b'\'' => {
                    let quote = b;
                    self.pos += 1;
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == quote {
                            break;
                        }
                    }
                }
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => self.pos += 1,
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        let rest = &self.input[self.pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) => {}
            Some((_, c)) => return Err(self.err(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
        let mut end = rest.len();
        for (i, c) in chars {
            if !is_name_char(c) {
                end = i;
                break;
            }
        }
        self.pos = start + end;
        Ok(&rest[..end])
    }

    fn parse_element(&mut self) -> Result<(), XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut attrs: Vec<(&str, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    self.start_element(name, &attrs);
                    self.open_names.push(name.to_string());
                    self.parse_content()?;
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    self.start_element(name, &attrs);
                    self.builder.end_element();
                    return Ok(());
                }
                Some(_) => {
                    let at = self.pos;
                    let aname = self.parse_name()?;
                    if attrs.iter().any(|(n, _)| *n == aname) {
                        return Err(
                            self.err_at(XmlErrorKind::DuplicateAttribute(aname.to_string()), at)
                        );
                    }
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    attrs.push((aname, value));
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn start_element(&mut self, name: &str, attrs: &[(&str, String)]) {
        let borrowed: Vec<(&str, &str)> = attrs.iter().map(|(n, v)| (*n, v.as_str())).collect();
        self.builder.start_element(name, &borrowed);
    }

    fn parse_attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => {
                let c = self.input[self.pos..].chars().next().expect("in bounds");
                return Err(self.err(XmlErrorKind::UnexpectedChar(c)));
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'<') => {
                    return Err(self.err(XmlErrorKind::Malformed(
                        "'<' in attribute value".to_string(),
                    )))
                }
                Some(b'&') => {
                    let c = self.parse_reference()?;
                    out.push_str(&c);
                }
                Some(_) => {
                    let c = self.input[self.pos..].chars().next().expect("in bounds");
                    // Attribute-value normalization: whitespace → space.
                    out.push(if matches!(c, '\t' | '\n' | '\r') {
                        ' '
                    } else {
                        c
                    });
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    /// Parses `&...;` (named entity or character reference); returns the
    /// replacement text.
    fn parse_reference(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        self.expect("&")?;
        let semi = self.input[self.pos..]
            .find(';')
            .ok_or_else(|| self.err_at(XmlErrorKind::BadEntity("&".to_string()), start))?;
        let body = &self.input[self.pos..self.pos + semi];
        if body.len() > 32 {
            return Err(self.err_at(XmlErrorKind::BadEntity(body.to_string()), start));
        }
        let replacement = if let Some(num) = body.strip_prefix('#') {
            let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                u32::from_str_radix(hex, 16)
            } else {
                num.parse::<u32>()
            }
            .map_err(|_| self.err_at(XmlErrorKind::BadEntity(body.to_string()), start))?;
            match char::from_u32(code) {
                Some(c) => c.to_string(),
                None => return Err(self.err_at(XmlErrorKind::BadEntity(body.to_string()), start)),
            }
        } else {
            match body {
                "lt" => "<".to_string(),
                "gt" => ">".to_string(),
                "amp" => "&".to_string(),
                "apos" => "'".to_string(),
                "quot" => "\"".to_string(),
                _ => return Err(self.err_at(XmlErrorKind::BadEntity(body.to_string()), start)),
            }
        };
        self.pos += semi + 1;
        Ok(replacement)
    }

    fn flush_text(&mut self) {
        if self.text_buf.is_empty() {
            return;
        }
        let keep = !self.opts.strip_whitespace_text
            || self.text_buf.chars().any(|c| !c.is_ascii_whitespace());
        if keep {
            let text = std::mem::take(&mut self.text_buf);
            self.builder.text(&text);
        } else {
            self.text_buf.clear();
        }
    }

    fn parse_content(&mut self) -> Result<(), XmlError> {
        loop {
            match self.peek() {
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text();
                        self.pos += 2;
                        let at = self.pos;
                        let name = self.parse_name()?;
                        self.skip_whitespace();
                        self.expect(">")?;
                        let open = self.open_names.pop().ok_or_else(|| {
                            self.err_at(XmlErrorKind::UnmatchedClose(name.to_string()), at)
                        })?;
                        if open != name {
                            return Err(self.err_at(
                                XmlErrorKind::MismatchedTag {
                                    open,
                                    close: name.to_string(),
                                },
                                at,
                            ));
                        }
                        self.builder.end_element();
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.flush_text();
                        self.parse_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.parse_cdata()?;
                    } else if self.starts_with("<?") {
                        self.flush_text();
                        self.parse_pi()?;
                    } else {
                        self.flush_text();
                        self.parse_element()?;
                    }
                }
                Some(b'&') => {
                    let c = self.parse_reference()?;
                    self.text_buf.push_str(&c);
                }
                Some(_) => {
                    let rest = &self.input[self.pos..];
                    let stop = rest.find(['<', '&']).unwrap_or(rest.len());
                    let chunk = &rest[..stop];
                    if let Some(i) = chunk.find("]]>") {
                        return Err(self.err_at(
                            XmlErrorKind::Malformed("']]>' in character data".to_string()),
                            self.pos + i,
                        ));
                    }
                    self.text_buf.push_str(chunk);
                    self.pos += stop;
                }
            }
        }
    }

    fn parse_comment(&mut self) -> Result<(), XmlError> {
        self.expect("<!--")?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find("-->")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let body = &rest[..end];
        if body.contains("--") {
            return Err(self.err(XmlErrorKind::Malformed("'--' in comment".to_string())));
        }
        if self.opts.keep_comments && !self.open_names.is_empty() {
            self.builder.comment(body);
        }
        self.pos += end + 3;
        Ok(())
    }

    fn parse_cdata(&mut self) -> Result<(), XmlError> {
        self.expect("<![CDATA[")?;
        let rest = &self.input[self.pos..];
        let end = rest
            .find("]]>")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        self.text_buf.push_str(&rest[..end]);
        self.pos += end + 3;
        Ok(())
    }

    fn parse_pi(&mut self) -> Result<(), XmlError> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        if target.eq_ignore_ascii_case("xml") {
            return Err(self.err(XmlErrorKind::Malformed(
                "'<?xml' only allowed at document start".to_string(),
            )));
        }
        let rest = &self.input[self.pos..];
        let end = rest
            .find("?>")
            .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        let body = rest[..end].trim_start();
        if self.opts.keep_processing_instructions && !self.open_names.is_empty() {
            self.builder.processing_instruction(target, body);
        }
        self.pos += end + 2;
        Ok(())
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.' | '\u{b7}')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.label_str(doc.document_element()), Some("a"));
    }

    #[test]
    fn xml_declaration_and_doctype() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE a SYSTEM \"x.dtd\"><a/>").unwrap();
        assert_eq!(doc.label_str(doc.document_element()), Some("a"));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let doc = parse("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>t</a>").unwrap();
        assert_eq!(doc.string_value(doc.root()), "t");
    }

    #[test]
    fn entities_in_text_and_attributes() {
        let doc = parse(r#"<a x="&lt;&amp;&gt;">&quot;&apos;&#65;&#x42;</a>"#).unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "x"), Some("<&>"));
        assert_eq!(doc.string_value(a), "\"'AB");
    }

    #[test]
    fn cdata_sections() {
        let doc = parse("<a>x<![CDATA[<not-a-tag> & raw]]>y</a>").unwrap();
        assert_eq!(
            doc.string_value(doc.document_element()),
            "x<not-a-tag> & rawy"
        );
        // CDATA merges with adjacent text into one node.
        let a = doc.document_element();
        assert_eq!(doc.children(a).count(), 1);
    }

    #[test]
    fn comments_and_pis_in_content() {
        let doc = parse("<a><!--c--><?t d?><b/></a>").unwrap();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.kind(kids[0]), NodeKind::Comment);
        assert!(matches!(doc.kind(kids[1]), NodeKind::Pi(_)));
        assert!(doc.kind(kids[2]).is_element());
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_rejected() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::TrailingContent);
        let err = parse("<a/>text").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::TrailingContent);
    }

    #[test]
    fn empty_input_rejected() {
        let err = parse("").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::NoRootElement);
        let err = parse("   \n ").unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::NoRootElement);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert_eq!(
            *err.kind(),
            XmlErrorKind::DuplicateAttribute("x".to_string())
        );
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(matches!(
            parse("<a>&nope;</a>").unwrap_err().kind(),
            XmlErrorKind::BadEntity(_)
        ));
        assert!(matches!(
            parse("<a>&#xZZ;</a>").unwrap_err().kind(),
            XmlErrorKind::BadEntity(_)
        ));
        assert!(matches!(
            parse("<a>&#1114112;</a>").unwrap_err().kind(), // > U+10FFFF
            XmlErrorKind::BadEntity(_)
        ));
    }

    #[test]
    fn cdata_end_in_text_rejected() {
        let err = parse("<a>oops ]]> here</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = parse("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        let err = parse(r#"<a x="a<b"/>"#).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn attribute_value_normalization() {
        let doc = parse("<a x=\"one\ttwo\nthree\"/>").unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "x"), Some("one two three"));
    }

    #[test]
    fn whitespace_stripping_option() {
        let input = "<a>\n  <b>x</b>\n  <c/>\n</a>";
        let noisy = parse(input).unwrap();
        let clean = parse_with_options(input, &ParseOptions::paper_model()).unwrap();
        assert!(noisy.len() > clean.len());
        assert_eq!(clean.string_value(clean.root()), "x");
        // Whitespace *inside* meaningful text survives.
        let doc = parse_with_options("<a> x </a>", &ParseOptions::paper_model()).unwrap();
        assert_eq!(doc.string_value(doc.root()), " x ");
    }

    #[test]
    fn error_positions_are_line_column() {
        let err = parse("<a>\n<b></c>\n</a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
    }

    #[test]
    fn unicode_names_and_content() {
        let doc = parse("<café größe=\"1\">héllo ☃</café>").unwrap();
        let e = doc.document_element();
        assert_eq!(doc.label_str(e), Some("café"));
        assert_eq!(doc.attribute_value(e, "größe"), Some("1"));
        assert_eq!(doc.string_value(e), "héllo ☃");
    }

    #[test]
    fn colonized_names_accepted_as_plain() {
        let doc = parse("<ns:a><ns:b/></ns:a>").unwrap();
        assert_eq!(doc.label_str(doc.document_element()), Some("ns:a"));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for i in 0..300 {
            s.push_str(&format!("<n{i}>"));
        }
        for i in (0..300).rev() {
            s.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&s).unwrap();
        assert_eq!(doc.element_count(), 300);
    }

    #[test]
    fn pi_outside_root_is_allowed_but_dropped() {
        // Prolog/epilog PIs and comments have no parent element; they are
        // skipped (our tree keeps only content under the root element, plus
        // the root node itself).
        let doc = parse("<?style x?><a/><!--after-->").unwrap();
        assert_eq!(doc.len(), 2);
    }
}

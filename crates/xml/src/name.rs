//! Interned element/attribute names (the labeling alphabet Σ of the paper).
//!
//! Every element label and attribute name is interned into a per-document
//! [`NameTable`]; a [`Name`] is a `u32` index into it.  Node tests then
//! compare labels with a single integer comparison, which keeps the per-node
//! cost of `T(t)` constant — required for the `O(|D|)` axis-step bound of
//! Definition 1 / [11].

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An interned name: an index into the owning document's [`NameTable`].
///
/// `Name`s from different documents must not be mixed; they are plain
/// indices.  Equality of two `Name`s from the same table is equality of the
/// underlying strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(pub(crate) u32);

impl Name {
    /// The raw index of the interned name.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name#{}", self.0)
    }
}

/// An interning table for names.
///
/// Σ in the paper's data model: the set of XML tags appearing in the
/// document, plus any names interned while compiling queries against it
/// (so a query's node test `foo` resolves to a `Name` even if no `foo`
/// element exists).
#[derive(Debug, Default)]
pub struct NameTable {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, Name>,
    /// Number of [`NameTable::get`] calls ever made against this table —
    /// the per-evaluation name-resolution work the compiled-query cache is
    /// supposed to eliminate.  Observable via
    /// [`NameTable::lookup_count`]; tests assert it stays flat across
    /// repeated evaluations of a cached query.  Counted in debug builds
    /// only, so release lookups stay pure reads (no shared-cache-line
    /// atomic traffic on concurrently shared documents).
    lookups: AtomicU64,
}

impl Clone for NameTable {
    fn clone(&self) -> Self {
        NameTable {
            strings: self.strings.clone(),
            index: self.index.clone(),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
        }
    }
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing [`Name`] if already present.
    pub fn intern(&mut self, s: &str) -> Name {
        if let Some(&n) = self.index.get(s) {
            return n;
        }
        let n = Name(u32::try_from(self.strings.len()).expect("more than u32::MAX names"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, n);
        n
    }

    /// Looks up a name without interning it.
    pub fn get(&self, s: &str) -> Option<Name> {
        #[cfg(debug_assertions)]
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.index.get(s).copied()
    }

    /// How many [`NameTable::get`] lookups this table has served (see the
    /// field docs; used to verify compiled queries do zero per-evaluation
    /// name resolution).  Always zero in release builds, where the counter
    /// is compiled out.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Returns the string for an interned name.
    ///
    /// # Panics
    /// Panics if `n` was not produced by this table.
    pub fn resolve(&self, n: Name) -> &str {
        &self.strings[n.index()]
    }

    /// Iterates the interned strings in [`Name`] index order (the order
    /// the snapshot writer serializes and the reader re-interns, so
    /// indices — and therefore the packed kind words and postings
    /// offsets — survive a round trip unchanged).
    pub fn strings(&self) -> impl ExactSizeIterator<Item = &str> {
        self.strings.iter().map(|s| &**s)
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a1 = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NameTable::new();
        let n = t.intern("chapter");
        assert_eq!(t.resolve(n), "chapter");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = NameTable::new();
        assert!(t.get("x").is_none());
        let n = t.intern("x");
        assert_eq!(t.get("x"), Some(n));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = NameTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn many_names_distinct() {
        let mut t = NameTable::new();
        let names: Vec<Name> = (0..1000).map(|i| t.intern(&format!("n{i}"))).collect();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(t.resolve(*n), format!("n{i}"));
        }
    }
}

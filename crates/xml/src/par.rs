//! A small zero-dependency scoped work-splitting pool — the substrate of
//! the parallel axis kernels and MINCONTEXT's per-context fan-out (see
//! DESIGN.md "Parallel evaluation").
//!
//! A [`WorkerPool`] owns `threads − 1` parked OS threads; the caller of
//! [`WorkerPool::run`] is the remaining worker.  A parallel *region*
//! publishes one task — a `Fn(usize)` run once per chunk index — and
//! every participant claims chunk indices off a shared counter until the
//! region drains.  `run` returns only after **all** chunks completed, so
//! borrowed task state (documents, mark bitmaps, output slots) stays
//! valid for exactly the region's duration; that blocking discipline is
//! what makes the one lifetime-erasing `unsafe` below sound.
//!
//! Determinism contract: chunks are *index-range* shaped by construction
//! (see [`chunk_bounds`]) and callers merge per-chunk outputs in chunk
//! order, so results are bit-identical to a sequential run regardless of
//! which thread claims which chunk — the differential suites run the
//! whole corpus both ways to enforce this.
//!
//! A panic inside a chunk is caught on the worker, the region still
//! drains (remaining chunks run), and the first payload is re-raised on
//! the calling thread — mirroring sequential panic behavior.
//!
//! Observability: the process-global registry gains `par/regions`,
//! `par/chunks`, `par/steals` (chunks executed by pool workers rather
//! than the caller) and `par/bypass` (would-be parallel calls that ran
//! sequentially below the size threshold).

use crate::axes::Scratch;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

fn regions_counter() -> &'static minctx_obs::Counter {
    static C: OnceLock<minctx_obs::Counter> = OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("par/regions"))
}

fn chunks_counter() -> &'static minctx_obs::Counter {
    static C: OnceLock<minctx_obs::Counter> = OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("par/chunks"))
}

fn steals_counter() -> &'static minctx_obs::Counter {
    static C: OnceLock<minctx_obs::Counter> = OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("par/steals"))
}

fn bypass_counter() -> &'static minctx_obs::Counter {
    static C: OnceLock<minctx_obs::Counter> = OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("par/bypass"))
}

/// Chunks a parallel region dispatched (counter accessor for tests).
pub fn par_chunks_dispatched() -> u64 {
    chunks_counter().get()
}

/// Parallel regions executed so far (counter accessor for tests).
pub fn par_regions_run() -> u64 {
    regions_counter().get()
}

/// Threshold bypasses recorded so far (counter accessor for tests).
pub fn par_bypasses() -> u64 {
    bypass_counter().get()
}

/// Records that a parallel-capable call stayed sequential (input below
/// the size threshold, or a single chunk's worth of work).
pub fn note_bypass() {
    bypass_counter().inc();
}

/// Size gating for the parallel kernels: how much scanned work justifies
/// a region, and how small chunks may get.  Defaults keep small queries
/// on the sequential path so they never pay coordination cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Minimum number of scanned items (postings, arena nodes, context
    /// origins) before the chunked variant engages.
    pub threshold: usize,
    /// Minimum items per chunk; more chunks than `threads` (up to
    /// [`CHUNKS_PER_THREAD`] each) keep uneven chunks load-balanced.
    pub min_chunk: usize,
}

/// Default engagement threshold: below ~4k scanned items a region's
/// wake/claim/merge overhead rivals the scan itself.
pub const DEFAULT_PAR_THRESHOLD: usize = 4096;

/// Default minimum chunk size.
pub const DEFAULT_MIN_CHUNK: usize = 1024;

/// Chunk-count cap per worker: enough slack that one slow chunk does not
/// serialize the region, not so many that claiming dominates.
pub const CHUNKS_PER_THREAD: usize = 4;

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig {
            threshold: DEFAULT_PAR_THRESHOLD,
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }
}

impl ParConfig {
    /// How many chunks to split `items` into for `pool`, honoring
    /// `min_chunk`; `0` means "stay sequential" (below threshold or not
    /// enough work for two chunks).
    pub fn chunks_for(&self, pool: &WorkerPool, items: usize) -> usize {
        if items < self.threshold.max(2) {
            return 0;
        }
        let by_size = items / self.min_chunk.max(1);
        let cap = pool.threads() * CHUNKS_PER_THREAD;
        let chunks = by_size.min(cap);
        if chunks < 2 {
            0
        } else {
            chunks
        }
    }
}

/// The contiguous index range `[start, end)` of chunk `i` out of
/// `chunks` over `len` items.  Ranges are ascending and disjoint and
/// cover `0..len`, so per-chunk outputs produced in index order
/// concatenate (in chunk order) to exactly the sequential output.
pub fn chunk_bounds(len: usize, chunks: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < chunks);
    (i * len / chunks, (i + 1) * len / chunks)
}

/// The task pointer published to the workers for one region: a
/// lifetime-erased borrow of the caller's closure.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine),
// and the pointer is only dereferenced between a region's publication and
// its completion — `WorkerPool::run` blocks until `completed == total`
// before the erased borrow ends, so no worker can observe a dangling task.
unsafe impl Send for TaskRef {}

struct State {
    /// The active region's task; `None` between regions.
    task: Option<TaskRef>,
    /// Chunk count of the active region.
    total: usize,
    /// Next unclaimed chunk index (the claim counter).
    next: usize,
    /// Chunks whose closure call has returned.
    completed: usize,
    /// First panic payload caught in a chunk, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between regions.
    work: Condvar,
    /// The caller parks here once its own claims dry up.
    done: Condvar,
}

impl Shared {
    /// Lock recovering from poisoning: the protocol state is consistent
    /// at every unlock (panicking closures run *outside* the lock and
    /// are caught), so a poisoned mutex only means some unrelated thread
    /// died mid-claim bookkeeping — the counters themselves are valid.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs chunk `i` of the published task and does the completion
    /// bookkeeping.  `task` must be the region's published closure.
    fn run_chunk(&self, task: &(dyn Fn(usize) + Sync), i: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| task(i)));
        let mut st = self.lock();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.completed += 1;
        if st.completed == st.total {
            self.done.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return;
        }
        let claim = match &st.task {
            Some(t) if st.next < st.total => Some((t.0, st.next)),
            _ => None,
        };
        if claim.is_some() {
            st.next += 1;
        }
        match claim {
            Some((ptr, i)) => {
                drop(st);
                steals_counter().inc();
                // SAFETY: `ptr` was published by the `run` currently
                // blocked in this region; `run` cannot return (ending the
                // erased borrow) before `completed == total`, and this
                // chunk counts toward `completed` only after the call
                // returns inside `run_chunk`.
                let task: &(dyn Fn(usize) + Sync) = unsafe { &*ptr };
                shared.run_chunk(task, i);
                st = shared.lock();
            }
            None => {
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// A fixed set of parked worker threads executing chunked index-range
/// tasks — see the module docs for the protocol and its invariants.
///
/// Engines attach one via `Engine::with_threads(n)`; a pool with
/// `threads == 1` spawns nothing and runs every region inline.  One pool
/// runs one region at a time (concurrent `run` calls from clones of an
/// engine serialize on an internal region lock).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes regions: `run` publishes exactly one task at a time.
    region: Mutex<()>,
    /// Per-thread [`Scratch`] arenas for fan-out evaluation workers.
    scratch: Mutex<Vec<Scratch>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers total (the caller of [`run`] counts as
    /// one, so `threads − 1` OS threads are spawned and parked).
    ///
    /// [`run`]: WorkerPool::run
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                task: None,
                total: 0,
                next: 0,
                completed: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("minctx-par-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            region: Mutex::new(()),
            scratch: Mutex::new(Vec::new()),
            threads,
        }
    }

    /// Total worker count, caller included.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` once for every `i in 0..chunks`, distributing
    /// chunks across the pool, and returns once all chunks completed.
    /// The caller participates, so a single-threaded pool (or a
    /// single-chunk region) degenerates to a plain sequential loop.
    ///
    /// If any chunk panics, the remaining chunks still run and the first
    /// payload is re-raised here.
    pub fn run(&self, chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 || self.threads == 1 || self.handles.is_empty() {
            for i in 0..chunks {
                task(i);
            }
            return;
        }
        regions_counter().inc();
        chunks_counter().add(chunks as u64);
        let _region = self.region.lock().unwrap_or_else(PoisonError::into_inner);
        let raw: *const (dyn Fn(usize) + Sync) = task;
        // SAFETY: only the trait object's implicit lifetime is erased;
        // the pointee is untouched.  The pointer is cleared from the
        // shared state and all uses have completed before this function
        // returns (the wait below), so the erased borrow never outlives
        // the real one.  (A plain `as` cast cannot widen a trait
        // object's lifetime — rust-lang/rust#141402 — so the clippy
        // suggestion does not compile and the transmute stays.)
        #[allow(clippy::transmute_ptr_to_ptr)]
        let raw: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(raw) };
        {
            let mut st = self.shared.lock();
            debug_assert!(st.task.is_none(), "regions are serialized");
            st.task = Some(TaskRef(raw));
            st.total = chunks;
            st.next = 0;
            st.completed = 0;
            self.shared.work.notify_all();
        }
        // The caller claims chunks like any worker…
        loop {
            let i = {
                let mut st = self.shared.lock();
                if st.next >= st.total {
                    break;
                }
                let i = st.next;
                st.next += 1;
                i
            };
            self.shared.run_chunk(task, i);
        }
        // …then waits for the stragglers and retires the region.
        let panic = {
            let mut st = self.shared.lock();
            while st.completed < st.total {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.task = None;
            st.panic.take()
        };
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Pops a per-thread [`Scratch`] arena for a fan-out evaluation
    /// worker (fresh if the stash is empty; buffers size on first use).
    pub fn take_scratch(&self) -> Scratch {
        self.scratch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch to the stash (bounded at one per thread).
    pub fn put_scratch(&self, s: Scratch) {
        let mut stash = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        if stash.len() < self.threads {
            stash.push(s);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for chunks in [1, 2, 3, 7, 64, 257] {
            let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(chunks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "chunks={chunks}"
            );
        }
    }

    #[test]
    fn chunked_sum_matches_sequential() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..100_000).collect();
        let total = AtomicU64::new(0);
        let chunks = 16;
        pool.run(chunks, &|i| {
            let (s, e) = chunk_bounds(items.len(), chunks, i);
            let part: u64 = items[s..e].iter().sum();
            total.fetch_add(part, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), items.iter().sum::<u64>());
    }

    #[test]
    fn chunk_bounds_cover_and_are_disjoint() {
        for len in [0usize, 1, 5, 64, 1000, 1001] {
            for chunks in [1usize, 2, 3, 7, 16] {
                let mut expected_start = 0;
                for i in 0..chunks {
                    let (s, e) = chunk_bounds(len, chunks, i);
                    assert_eq!(s, expected_start, "len={len} chunks={chunks} i={i}");
                    assert!(e >= s);
                    expected_start = e;
                }
                assert_eq!(expected_start, len);
            }
        }
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn panics_propagate_to_the_caller_and_the_pool_survives() {
        let pool = WorkerPool::new(4);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("chunk 3 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // The region drained fully despite the panic…
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        // …and the pool keeps working afterwards.
        let count = AtomicUsize::new(0);
        pool.run(4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn consecutive_regions_reuse_the_pool() {
        let pool = WorkerPool::new(2);
        for round in 1..=20 {
            let count = AtomicUsize::new(0);
            pool.run(round, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), round);
        }
    }

    #[test]
    fn scratch_stash_round_trips() {
        let pool = WorkerPool::new(2);
        let s = pool.take_scratch();
        pool.put_scratch(s);
        let _ = pool.take_scratch();
    }

    #[test]
    fn chunks_for_gates_on_threshold_and_min_chunk() {
        let pool = WorkerPool::new(4);
        let cfg = ParConfig {
            threshold: 100,
            min_chunk: 10,
        };
        assert_eq!(cfg.chunks_for(&pool, 0), 0);
        assert_eq!(cfg.chunks_for(&pool, 99), 0, "below threshold");
        let c = cfg.chunks_for(&pool, 100);
        assert!(c >= 2, "at threshold the region engages");
        assert!(cfg.chunks_for(&pool, 1_000_000) <= pool.threads() * CHUNKS_PER_THREAD);
        // min_chunk dominates for barely-eligible sizes.
        let tight = ParConfig {
            threshold: 2,
            min_chunk: 1000,
        };
        assert_eq!(tight.chunks_for(&pool, 1999), 0, "one chunk's worth");
        assert_eq!(tight.chunks_for(&pool, 2000), 2);
    }
}

//! XML document model, parser and axis algebra for the `minctx` XPath engine.
//!
//! This crate is the *data substrate* of the reproduction of
//! Gottlob/Koch/Pichler, "XPath Query Evaluation: Improving Time and Space
//! Efficiency" (ICDE 2003).  It provides everything Section 2.1 of the paper
//! assumes about the data:
//!
//! * the node domain `dom` — an unranked, ordered, labeled tree
//!   ([`Document`], [`NodeId`]),
//! * the node-test function `T : (Σ ∪ {*}) → 2^dom` ([`Document::label`],
//!   [`axes::NodeTest`]),
//! * the binary axis relations `χ ⊆ dom × dom` and the axis functions
//!   `χ(X)` / `χ⁻¹(X)`, computable in time `O(|D|)`
//!   ([`axes::axis_image`], [`axes::axis_preimage`]),
//! * document order `<doc` and the axis-relative order `<doc,χ`
//!   ([`NodeId`] ordering, [`axes::Axis::is_reverse`]),
//! * string values `strval : dom → string` ([`Document::string_value`]) and
//!   the id dereferencing function `deref_ids` ([`Document::deref_ids`]).
//!
//! The XML parser ([`parse`], [`parse_with_options`]) and serializer
//! ([`serialize::to_xml_string`]) are written from scratch — no third-party
//! XML crate is used anywhere in the workspace.
//!
//! # Example
//!
//! ```
//! use minctx_xml::{parse, axes::{Axis, NodeTest}};
//!
//! let doc = parse("<a><b/><c><b/></c></a>").unwrap();
//! let root = doc.root();
//! let bs = doc.axis_nodes(Axis::Descendant, root, &NodeTest::name("b"));
//! assert_eq!(bs.len(), 2);
//! ```

pub mod axes;
pub mod builder;
pub mod document;
pub mod error;
pub mod name;
pub mod node;
pub mod nodeset;
pub mod par;
pub mod parser;
pub mod serialize;
pub mod store;
pub mod token;

pub use axes::{Axis, AxisRoute, NodeTest, ResolvedTest, Scratch};
pub use builder::DocumentBuilder;
pub use document::Document;
pub use error::{XmlError, XmlErrorKind};
pub use name::{Name, NameTable};
pub use node::{NodeId, NodeKind};
pub use nodeset::{DenseSet, NodeSet};
pub use par::{ParConfig, WorkerPool};
pub use parser::{
    parse, parse_reader, parse_reader_with_options, parse_with_options, ParseOptions,
};
pub use store::{ColumnError, RawColumns, StableBytes};
pub use token::{tokenizers_created, Tokenizer, XmlEvent, DEFAULT_MAX_ELEMENT_DEPTH};

//! Serialization of [`Document`]s back to XML text.
//!
//! Used by the examples, by debugging output, and by the parse →
//! serialize → parse round-trip property tests.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};
use std::fmt::Write;

/// Serializes the whole document.
pub fn to_xml_string(doc: &Document) -> String {
    let mut out = String::new();
    for child in doc.children(doc.root()) {
        write_node(doc, child, &mut out);
    }
    out
}

/// Serializes the subtree rooted at `n` (which may be any node kind).
pub fn node_to_xml_string(doc: &Document, n: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, n, &mut out);
    out
}

fn write_node(doc: &Document, n: NodeId, out: &mut String) {
    match doc.kind(n) {
        NodeKind::Root => {
            for child in doc.children(n) {
                write_node(doc, child, out);
            }
        }
        NodeKind::Element(name) => {
            let tag = doc.names().resolve(name);
            out.push('<');
            out.push_str(tag);
            for attr in doc.attributes(n) {
                let aname = doc
                    .label_str(attr)
                    .expect("attribute nodes always carry a name");
                let _ = write!(out, " {}=\"", aname);
                escape_into(doc.content(attr), true, out);
                out.push('"');
            }
            if doc.first_child(n).is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                for child in doc.children(n) {
                    write_node(doc, child, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
        NodeKind::Text => escape_into(doc.content(n), false, out),
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(doc.content(n));
            out.push_str("-->");
        }
        NodeKind::Pi(target) => {
            let _ = write!(out, "<?{}", doc.names().resolve(target));
            if !doc.content(n).is_empty() {
                out.push(' ');
                out.push_str(doc.content(n));
            }
            out.push_str("?>");
        }
        NodeKind::Attribute(name) => {
            // Standalone attribute rendering (debugging convenience).
            let _ = write!(out, "{}=\"", doc.names().resolve(name));
            escape_into(doc.content(n), true, out);
            out.push('"');
        }
    }
}

/// Escapes character data; `in_attribute` additionally escapes quotes.
fn escape_into(s: &str, in_attribute: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            '\t' | '\n' | '\r' if in_attribute => {
                let _ = write!(out, "&#{};", c as u32);
            }
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_simple() {
        let src = r#"<a id="1"><b>x &amp; y</b><c/></a>"#;
        let doc = parse(src).unwrap();
        assert_eq!(to_xml_string(&doc), src);
    }

    #[test]
    fn escapes_special_characters() {
        let doc = parse("<a x=\"&quot;q&quot;\">&lt;&amp;&gt;</a>").unwrap();
        let s = to_xml_string(&doc);
        assert_eq!(s, "<a x=\"&quot;q&quot;\">&lt;&amp;&gt;</a>");
        // And it re-parses to the same content.
        let doc2 = parse(&s).unwrap();
        assert_eq!(doc2.string_value(doc2.root()), "<&>");
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let src = "<a><!--hello--><?pi data?></a>";
        let doc = parse(src).unwrap();
        assert_eq!(to_xml_string(&doc), src);
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse("<a><b><c>t</c></b><d/></a>").unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        assert_eq!(node_to_xml_string(&doc, b), "<b><c>t</c></b>");
    }

    #[test]
    fn reparse_equals_original_structure() {
        let src = r#"<root a="1" b="two"><x/>mid<y><z/></y>end</root>"#;
        let doc = parse(src).unwrap();
        let doc2 = parse(&to_xml_string(&doc)).unwrap();
        assert_eq!(doc.len(), doc2.len());
        for (n1, n2) in doc.all_nodes().zip(doc2.all_nodes()) {
            assert_eq!(doc.label_str(n1), doc2.label_str(n2));
            assert_eq!(doc.content(n1), doc2.content(n2));
        }
    }
}

//! XPath axes: the binary relations `χ ⊆ dom × dom` of Definition 1 and
//! their set functions.
//!
//! Three entry points:
//!
//! * [`axis_image`] — `χ(X) = {y | ∃x ∈ X : x χ y}`, in `O(|D|)`;
//! * [`axis_preimage`] — `χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}`, in `O(|D|)`;
//! * [`Document::axis_nodes`] — the nodes reachable from a *single* node in
//!   axis order `<doc,χ` (forward document order for forward axes, reverse
//!   for `ancestor(-or-self)`, `preceding(-sibling)` and `parent`), which is
//!   what positional predicates (`position()`, `last()`) are defined over.
//!
//! The `O(|D|)` bounds (shown in [11] and relied upon by every theorem in
//! the paper) are achieved with single sweeps over the pre-order arena:
//! e.g. `descendant(X)` propagates an "ancestor in X" flag down the parent
//! pointers, and `following(X)` is `{y | pre(y) ≥ min_{x∈X} subtree_end(x)}`.
//!
//! Two layers of machinery keep the constant factors down (see DESIGN.md):
//!
//! * **Label postings** ([`Document::element_postings`]): name tests route
//!   through per-label sorted node lists instead of sweeping `dom`, making
//!   the common `descendant::a` / `child::a` / `attribute::a` steps
//!   sublinear in practice ([`name_image_fast`]).
//! * **[`Scratch`]**: every kernel threads reusable mark/flag bitmaps and
//!   candidate buffers, so steady-state evaluation performs no per-call
//!   `O(|D|)` allocations.  The `*_into` variants also reuse the output
//!   set's allocation.
//!
//! The paper's formal model has no attribute nodes; we support them as an
//! extension.  Per the XPath 1.0 data model, attribute nodes are *excluded*
//! from the results of all tree axes and reachable only via `attribute`.
//! The `id` pseudo-axis of Section 4 (`id(id(π))` rewritten to `π/id/id`)
//! is also implemented here so location-path machinery can treat it
//! uniformly.

use crate::document::{Document, NONE};
use crate::name::Name;
use crate::node::{NodeId, NodeKind};
use crate::nodeset::{DenseSet, NodeSet};
use crate::par::{chunk_bounds, note_bypass, ParConfig, WorkerPool};
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// The XPath axes of the paper (Section 2.1) plus the `attribute` extension
/// and the `id` pseudo-axis of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    SelfAxis,
    Child,
    Parent,
    Descendant,
    Ancestor,
    DescendantOrSelf,
    AncestorOrSelf,
    Following,
    Preceding,
    FollowingSibling,
    PrecedingSibling,
    /// Extension: the XPath 1.0 `attribute` axis (outside the paper's
    /// formal fragments).
    Attribute,
    /// The id-"axis" of Section 4: `x χ_id y` iff
    /// `y ∈ deref_ids(strval(x))`.
    Id,
}

impl Axis {
    /// All axes, in a stable order (useful for exhaustive tests).
    pub const ALL: [Axis; 13] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Parent,
        Axis::Descendant,
        Axis::Ancestor,
        Axis::DescendantOrSelf,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Attribute,
        Axis::Id,
    ];

    /// Whether `<doc,χ` is *reverse* document order for this axis
    /// (Section 2.1: ancestor, ancestor-or-self, parent, preceding,
    /// preceding-sibling).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The axis whose relation is the inverse of this one
    /// (`x χ y ⇔ y χ⁻¹ x`), where one exists as a plain axis.
    pub fn inverse(self) -> Option<Axis> {
        Some(match self {
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::Attribute | Axis::Id => return None,
        })
    }

    /// The unabbreviated XPath spelling of the axis.
    pub fn as_str(self) -> &'static str {
        match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::Ancestor => "ancestor",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
            Axis::Id => "id",
        }
    }

    /// Parses an axis name.
    pub fn from_str_opt(s: &str) -> Option<Axis> {
        Some(match s {
            "self" => Axis::SelfAxis,
            "child" => Axis::Child,
            "parent" => Axis::Parent,
            "descendant" => Axis::Descendant,
            "ancestor" => Axis::Ancestor,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "attribute" => Axis::Attribute,
            "id" => Axis::Id,
            _ => return None,
        })
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node test `t`: the paper's `T : (Σ ∪ {*}) → 2^dom` extended with the
/// XPath 1.0 kind tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `*` — any node of the axis's *principal type* (element for every
    /// tree axis, attribute for the attribute axis).
    Wildcard,
    /// A name test — principal-type node with this label.
    Name(Box<str>),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / `processing-instruction('target')`
    Pi(Option<Box<str>>),
    /// `node()` — any node.
    AnyNode,
}

impl NodeTest {
    /// Convenience constructor for a name test.
    pub fn name(s: &str) -> NodeTest {
        NodeTest::Name(s.into())
    }

    /// Resolves the test against a document, turning string comparisons
    /// into integer comparisons for the per-node hot path.
    pub fn resolve(&self, doc: &Document) -> ResolvedTest {
        match self {
            NodeTest::Wildcard => ResolvedTest::Wildcard,
            NodeTest::Name(s) => match doc.find_name(s) {
                Some(n) => ResolvedTest::Name(n),
                None => ResolvedTest::NeverMatches,
            },
            NodeTest::Text => ResolvedTest::Text,
            NodeTest::Comment => ResolvedTest::Comment,
            NodeTest::Pi(None) => ResolvedTest::PiAny,
            NodeTest::Pi(Some(t)) => match doc.find_name(t) {
                Some(n) => ResolvedTest::Pi(n),
                None => ResolvedTest::NeverMatches,
            },
            NodeTest::AnyNode => ResolvedTest::AnyNode,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Name(s) => f.write_str(s),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Comment => f.write_str("comment()"),
            NodeTest::Pi(None) => f.write_str("processing-instruction()"),
            NodeTest::Pi(Some(t)) => write!(f, "processing-instruction('{t}')"),
            NodeTest::AnyNode => f.write_str("node()"),
        }
    }
}

/// A [`NodeTest`] resolved against a specific document (name lookups done).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedTest {
    Wildcard,
    Name(Name),
    Text,
    Comment,
    PiAny,
    Pi(Name),
    AnyNode,
    /// A name test whose name does not occur in the document at all.
    NeverMatches,
}

impl ResolvedTest {
    /// Whether node `n` passes this test when reached via `axis`.
    #[inline]
    pub fn matches(self, doc: &Document, axis: Axis, n: NodeId) -> bool {
        let kind = doc.kind(n);
        match self {
            ResolvedTest::AnyNode => true,
            ResolvedTest::NeverMatches => false,
            ResolvedTest::Wildcard => match axis {
                Axis::Attribute => kind.is_attribute(),
                _ => kind.is_element(),
            },
            ResolvedTest::Name(nm) => match axis {
                Axis::Attribute => matches!(kind, NodeKind::Attribute(k) if k == nm),
                _ => matches!(kind, NodeKind::Element(k) if k == nm),
            },
            ResolvedTest::Text => kind.is_text(),
            ResolvedTest::Comment => kind == NodeKind::Comment,
            ResolvedTest::PiAny => matches!(kind, NodeKind::Pi(_)),
            ResolvedTest::Pi(nm) => matches!(kind, NodeKind::Pi(k) if k == nm),
        }
    }
}

/// Reusable working memory for the axis kernels.
///
/// The set-at-a-time sweeps need `O(|D|)` mark/flag bitmaps and assorted
/// candidate buffers; allocating them per call dominated evaluation time
/// on large documents.  A `Scratch` owns them all — callers (the engine's
/// evaluators, chiefly) create one and thread it through every kernel
/// call, so steady-state evaluation performs no per-call `O(|D|)`
/// allocations.  Buffers grow monotonically to the largest document seen.
#[derive(Debug, Default)]
pub struct Scratch {
    marked: DenseSet,
    flag: DenseSet,
    /// Internal candidate buffer used by the image kernels (`parent` /
    /// `ancestor` fast paths, the `id` axis).
    tmp: Vec<NodeId>,
    /// Buffer the preimage kernels use for attribute-filtered copies of
    /// `Y` (must be distinct from `tmp`, which the inner image call uses).
    tmp2: Vec<NodeId>,
    /// Merged subtree intervals for the descendant postings walk.
    ranges: Vec<(u32, u32)>,
}

impl Scratch {
    /// A scratch with empty buffers; they size themselves on first use.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    fn grow(&mut self, n: usize) {
        self.marked.ensure_capacity(n);
        self.flag.ensure_capacity(n);
    }
}

#[inline]
fn mark(set: &mut DenseSet, x: &[NodeId]) {
    set.clear();
    for &v in x {
        set.insert(v);
    }
}

/// `χ(X)` filtered by a node test, in `O(|D|)` worst case (Definition 1;
/// the filter does not change the bound) and sublinear for name tests via
/// the label postings index.  The result is in document order.
///
/// Convenience wrapper over [`axis_image_into`] that resolves the test and
/// allocates fresh scratch; hot paths should resolve once and reuse a
/// [`Scratch`] instead.
pub fn axis_image(doc: &Document, axis: Axis, x: &NodeSet, test: &NodeTest) -> NodeSet {
    let mut scratch = Scratch::new();
    axis_image_resolved(doc, axis, x, test.resolve(doc), &mut scratch)
}

/// [`axis_image`] with a pre-resolved test and caller-provided scratch,
/// returning an owned set.
pub fn axis_image_resolved(
    doc: &Document,
    axis: Axis,
    x: &NodeSet,
    t: ResolvedTest,
    scratch: &mut Scratch,
) -> NodeSet {
    let mut out = NodeSet::new();
    axis_image_into(doc, axis, x, t, scratch, &mut out);
    out
}

/// The allocation-free core of [`axis_image`]: clears `out` and fills it
/// with `χ(X)` filtered by `t`, in document order.
pub fn axis_image_into(
    doc: &Document,
    axis: Axis,
    x: &NodeSet,
    t: ResolvedTest,
    scratch: &mut Scratch,
    out: &mut NodeSet,
) {
    image_into(doc, axis, x.as_slice(), t, scratch, out);
}

// The sweeps below are index-driven by design: the loop index *is* the
// pre-order NodeId, and each iteration reads several parallel columns.
#[allow(clippy::needless_range_loop)]
fn image_into(
    doc: &Document,
    axis: Axis,
    x: &[NodeId],
    t: ResolvedTest,
    scratch: &mut Scratch,
    out: &mut NodeSet,
) {
    out.clear();
    if x.is_empty() || t == ResolvedTest::NeverMatches {
        return;
    }
    // Singleton origin: the ordered single-node walk is local (subtree /
    // chain / sibling cost) where the set sweeps are O(|D|) — and the
    // per-candidate predicate paths the evaluators memoize are exactly
    // this shape.  Excluded: the id axis, whose single-node walk
    // tokenizes the *concatenated* string value while the set kernel
    // tokenizes per text node (see DESIGN.md); and name-tested
    // `following`/`preceding`, where the sliced postings kernel is
    // sublinear while the single-node walk scans the whole tail.
    if let [single] = x {
        let sliced_name_test =
            matches!(axis, Axis::Following | Axis::Preceding) && matches!(t, ResolvedTest::Name(_));
        if axis != Axis::Id && !sliced_name_test {
            let tmp = &mut scratch.tmp;
            doc.axis_nodes_into(axis, *single, t, tmp);
            if axis.is_reverse() {
                tmp.reverse();
            }
            out.vec_mut().extend_from_slice(tmp);
            return;
        }
    }
    let n = doc.len();
    scratch.grow(n);
    if let ResolvedTest::Name(nm) = t {
        if name_image_fast(doc, axis, x, nm, scratch, out) {
            debug_assert!(out.as_slice().windows(2).all(|w| w[0] < w[1]));
            return;
        }
    }
    let keep = |node: NodeId| t.matches(doc, axis, node);
    let Scratch {
        marked, flag, tmp, ..
    } = scratch;
    match axis {
        Axis::SelfAxis => out.vec_mut().extend(x.iter().copied().filter(|&m| keep(m))),
        Axis::Child => {
            mark(marked, x);
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for i in 0..n {
                let y = NodeId::from_index(i);
                let p = parent[i];
                if p != NONE && marked.contains(NodeId(p)) && !doc.kind(y).is_attribute() && keep(y)
                {
                    o.push(y);
                }
            }
        }
        Axis::Parent => {
            flag.clear();
            let parent = doc.parent_raw();
            for &m in x {
                let p = parent[m.index()];
                if p != NONE {
                    flag.insert(NodeId(p));
                }
            }
            let o = out.vec_mut();
            for i in 0..n {
                let y = NodeId::from_index(i);
                if flag.contains(y) && keep(y) {
                    o.push(y);
                }
            }
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            mark(marked, x);
            // flag: some proper ancestor is in X.  Parents precede children
            // in pre-order, so a single forward sweep suffices.
            flag.clear();
            let parent = doc.parent_raw();
            for i in 1..n {
                let p = NodeId(parent[i]);
                if marked.contains(p) || flag.contains(p) {
                    flag.insert(NodeId::from_index(i));
                }
            }
            let or_self = axis == Axis::DescendantOrSelf;
            let o = out.vec_mut();
            for i in 0..n {
                let y = NodeId::from_index(i);
                // Attributes never appear as *descendants*, but an
                // attribute member of X is its own descendant-or-self.
                if ((flag.contains(y) && !doc.kind(y).is_attribute())
                    || (or_self && marked.contains(y)))
                    && keep(y)
                {
                    o.push(y);
                }
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            mark(marked, x);
            // flag: some proper descendant is in X.  Children follow
            // parents in pre-order, so a single backward sweep suffices.
            flag.clear();
            let parent = doc.parent_raw();
            for i in (1..n).rev() {
                let y = NodeId::from_index(i);
                if marked.contains(y) || flag.contains(y) {
                    flag.insert(NodeId(parent[i]));
                }
            }
            let or_self = axis == Axis::AncestorOrSelf;
            let o = out.vec_mut();
            for i in 0..n {
                let y = NodeId::from_index(i);
                if (flag.contains(y) || (or_self && marked.contains(y))) && keep(y) {
                    o.push(y);
                }
            }
        }
        Axis::Following => {
            // y ∈ following(X)  ⇔  pre(y) ≥ min_{x∈X} subtree_end(x).
            let m = x
                .iter()
                .map(|&v| doc.subtree_end(v))
                .min()
                .expect("x non-empty");
            out.vec_mut().extend(
                (m..n)
                    .map(NodeId::from_index)
                    .filter(|&y| !doc.kind(y).is_attribute() && keep(y)),
            );
        }
        Axis::Preceding => {
            // y ∈ preceding(X)  ⇔  subtree_end(y) ≤ max_{x∈X} pre(x).
            let m = x.iter().map(|v| v.index()).max().expect("x non-empty");
            out.vec_mut().extend(
                (0..n)
                    .map(NodeId::from_index)
                    .filter(|&y| doc.subtree_end(y) <= m && !doc.kind(y).is_attribute() && keep(y)),
            );
        }
        Axis::FollowingSibling => {
            mark(marked, x);
            // flag[p]: a marked child of p has already occurred in the
            // pre-order sweep (siblings occur in document order).
            flag.clear();
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for i in 1..n {
                let y = NodeId::from_index(i);
                if doc.kind(y).is_attribute() {
                    continue;
                }
                let p = NodeId(parent[i]);
                if flag.contains(p) && keep(y) {
                    o.push(y);
                }
                if marked.contains(y) {
                    flag.insert(p);
                }
            }
        }
        Axis::PrecedingSibling => {
            mark(marked, x);
            flag.clear();
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for i in (1..n).rev() {
                let y = NodeId::from_index(i);
                if doc.kind(y).is_attribute() {
                    continue;
                }
                let p = NodeId(parent[i]);
                if flag.contains(p) && keep(y) {
                    o.push(y);
                }
                if marked.contains(y) {
                    flag.insert(p);
                }
            }
            o.reverse();
        }
        Axis::Attribute => {
            mark(marked, x);
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for i in 0..n {
                let y = NodeId::from_index(i);
                let p = parent[i];
                if doc.kind(y).is_attribute() && p != NONE && marked.contains(NodeId(p)) && keep(y)
                {
                    o.push(y);
                }
            }
        }
        Axis::Id => {
            // Tokens of text content reachable from X (descendant-or-self
            // for element/root members; own content for the rest),
            // dereferenced through the id index.  O(|D| + text).
            mark(marked, x);
            flag.clear(); // flag: under an element/root member of X
            let parent = doc.parent_raw();
            for i in 0..n {
                let p = parent[i];
                let from_parent = p != NONE && {
                    let pid = NodeId(p);
                    (flag.contains(pid) || marked.contains(pid))
                        && matches!(doc.kind(pid), NodeKind::Root | NodeKind::Element(_))
                };
                if from_parent {
                    flag.insert(NodeId::from_index(i));
                }
            }
            tmp.clear();
            for i in 0..n {
                let y = NodeId::from_index(i);
                let content_counts = match doc.kind(y) {
                    NodeKind::Text => flag.contains(y) || marked.contains(y),
                    NodeKind::Attribute(_) | NodeKind::Comment | NodeKind::Pi(_) => {
                        marked.contains(y)
                    }
                    _ => false,
                };
                if content_counts {
                    tmp.extend(doc.deref_ids(doc.content(y)).iter());
                }
            }
            tmp.retain(|&m| keep(m));
            tmp.sort_unstable();
            tmp.dedup();
            out.vec_mut().extend_from_slice(tmp);
        }
    }
}

/// Postings-backed name-test kernels: `descendant::a` merges the `a`
/// postings against the subtree intervals of `X`, `child::a` /
/// `attribute::a` parent-check the postings, `following`/`preceding` slice
/// them, and `parent`/`ancestor` walk chains with a visited set — all
/// sublinear in `|D|` when the label is rare.  Returns `false` for the
/// axes that fall through to the generic sweeps.
fn name_image_fast(
    doc: &Document,
    axis: Axis,
    x: &[NodeId],
    nm: Name,
    scratch: &mut Scratch,
    out: &mut NodeSet,
) -> bool {
    let Scratch {
        marked,
        flag,
        tmp,
        ranges,
        ..
    } = scratch;
    match axis {
        Axis::Child => {
            mark(marked, x);
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for &p in doc.element_postings(nm) {
                let par = parent[p.index()];
                if par != NONE && marked.contains(NodeId(par)) {
                    o.push(p);
                }
            }
            true
        }
        Axis::Attribute => {
            mark(marked, x);
            let parent = doc.parent_raw();
            let o = out.vec_mut();
            for &a in doc.attribute_postings(nm) {
                let par = parent[a.index()];
                if par != NONE && marked.contains(NodeId(par)) {
                    o.push(a);
                }
            }
            true
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Merge the subtree intervals of X (sorted starts ⇒ one pass),
            // then merge the postings against them.
            let or_self = axis == Axis::DescendantOrSelf;
            ranges.clear();
            for &m in x {
                let s = (m.index() + usize::from(!or_self)) as u32;
                let e = doc.subtree_end(m) as u32;
                if s >= e {
                    continue;
                }
                match ranges.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => ranges.push((s, e)),
                }
            }
            let posts = doc.element_postings(nm);
            let mut pi = 0usize;
            let o = out.vec_mut();
            for &(s, e) in ranges.iter() {
                pi += posts[pi..].partition_point(|p| (p.index() as u32) < s);
                while pi < posts.len() && (posts[pi].index() as u32) < e {
                    o.push(posts[pi]);
                    pi += 1;
                }
            }
            true
        }
        Axis::Following => {
            let m = x
                .iter()
                .map(|&v| doc.subtree_end(v))
                .min()
                .expect("x non-empty");
            let posts = doc.element_postings(nm);
            let start = posts.partition_point(|p| p.index() < m);
            out.vec_mut().extend_from_slice(&posts[start..]);
            true
        }
        Axis::Preceding => {
            let m = x.iter().map(|v| v.index()).max().expect("x non-empty");
            let o = out.vec_mut();
            for &p in doc.element_postings(nm) {
                if p.index() >= m {
                    break;
                }
                if doc.subtree_end(p) <= m {
                    o.push(p);
                }
            }
            true
        }
        Axis::Parent => {
            tmp.clear();
            let parent = doc.parent_raw();
            for &m in x {
                let p = parent[m.index()];
                if p != NONE && doc.kind(NodeId(p)) == NodeKind::Element(nm) {
                    tmp.push(NodeId(p));
                }
            }
            tmp.sort_unstable();
            tmp.dedup();
            out.vec_mut().extend_from_slice(tmp);
            true
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            // Union of ancestor chains with a visited set: O(|X| + output
            // + total fresh chain length), not O(|D|).
            flag.ensure_capacity(doc.len());
            flag.clear();
            tmp.clear();
            let or_self = axis == Axis::AncestorOrSelf;
            for &m in x {
                let mut cur = if or_self { Some(m) } else { doc.parent(m) };
                while let Some(p) = cur {
                    if !flag.insert(p) {
                        break; // chain already walked from here up
                    }
                    if doc.kind(p) == NodeKind::Element(nm) {
                        tmp.push(p);
                    }
                    cur = doc.parent(p);
                }
            }
            tmp.sort_unstable();
            out.vec_mut().extend_from_slice(tmp);
            true
        }
        // Sibling walks and the remaining axes use the generic sweeps.
        Axis::SelfAxis | Axis::FollowingSibling | Axis::PrecedingSibling | Axis::Id => false,
    }
}

// ---------------------------------------------------------------------------
// Parallel chunk-and-merge kernels.
//
// The dominant cost of every eligible kernel above is a single ascending
// scan — over the arena (`0..n`) or over a sorted postings slice.  Chunking
// that scan at index boundaries yields per-chunk outputs that are sorted and
// disjoint, and concatenating them in chunk order reproduces the sequential
// output *bit for bit* (the differential suites enforce this).  Any shared
// mark/flag bitmaps are built sequentially before the region starts and read
// immutably inside it.
//
// Kernels whose scans are interleaved with state updates (sibling sweeps),
// bounded by the origin chain (parent/ancestor walks), or already memcpys
// (name-tested `following`) stay sequential; the `*_par` entry points
// delegate and return 0 chunks.  Size gating (`ParConfig`) keeps small
// calls off the pool entirely.

/// Runs `fill(start, end, buf)` for each chunk of `0..len` on the pool and
/// returns the per-chunk buffers in chunk order.
fn fill_chunks<F>(pool: &WorkerPool, len: usize, chunks: usize, fill: F) -> Vec<Vec<NodeId>>
where
    F: Fn(usize, usize, &mut Vec<NodeId>) + Sync,
{
    let slots: Vec<Mutex<Vec<NodeId>>> = (0..chunks).map(|_| Mutex::new(Vec::new())).collect();
    pool.run(chunks, &|i| {
        let (s, e) = chunk_bounds(len, chunks, i);
        // Uncontended: each chunk index is claimed exactly once, so the
        // lock only fences the buffer hand-off back to the merge loop.
        let mut buf = slots[i].lock().unwrap_or_else(PoisonError::into_inner);
        fill(s, e, &mut buf);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect()
}

/// Chunk-and-merge driver: per-chunk outputs (ascending within each chunk)
/// are concatenated in chunk order into `out` — exactly the sequential
/// scan's output, since the chunks partition `0..len` in ascending order.
fn run_chunked<F>(pool: &WorkerPool, len: usize, chunks: usize, out: &mut NodeSet, fill: F)
where
    F: Fn(usize, usize, &mut Vec<NodeId>) + Sync,
{
    let o = out.vec_mut();
    for buf in fill_chunks(pool, len, chunks, fill) {
        o.extend_from_slice(&buf);
    }
}

/// Parallel variant of [`axis_image_into`]: identical output, but the
/// dominant scan of eligible kernels is split into index-range chunks
/// executed on `pool` and merged by pre-order ordinal.  Returns the number
/// of chunks used; `0` means the call ran on the sequential kernels
/// (ineligible shape, or below `cfg.threshold`).
#[allow(clippy::too_many_arguments)]
pub fn axis_image_into_par(
    doc: &Document,
    axis: Axis,
    x: &NodeSet,
    t: ResolvedTest,
    scratch: &mut Scratch,
    out: &mut NodeSet,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    image_into_par(doc, axis, x.as_slice(), t, scratch, out, pool, cfg)
}

#[allow(clippy::too_many_arguments)]
fn image_into_par(
    doc: &Document,
    axis: Axis,
    x: &[NodeId],
    t: ResolvedTest,
    scratch: &mut Scratch,
    out: &mut NodeSet,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    out.clear();
    if x.is_empty() || t == ResolvedTest::NeverMatches {
        return 0;
    }
    // Same singleton shortcut as the sequential kernel: the local walk is
    // cheaper than any region could be.
    if x.len() == 1 {
        let sliced_name_test =
            matches!(axis, Axis::Following | Axis::Preceding) && matches!(t, ResolvedTest::Name(_));
        if axis != Axis::Id && !sliced_name_test {
            image_into(doc, axis, x, t, scratch, out);
            return 0;
        }
    }
    scratch.grow(doc.len());
    if let ResolvedTest::Name(nm) = t {
        name_image_par(doc, axis, x, nm, scratch, out, pool, cfg)
    } else {
        generic_image_par(doc, axis, x, t, scratch, out, pool, cfg)
    }
}

/// Postings-backed name-test kernels, chunked over the (sliced) postings.
#[allow(clippy::too_many_arguments)]
fn name_image_par(
    doc: &Document,
    axis: Axis,
    x: &[NodeId],
    nm: Name,
    scratch: &mut Scratch,
    out: &mut NodeSet,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    let t = ResolvedTest::Name(nm);
    match axis {
        Axis::Child | Axis::Attribute => {
            let posts = if axis == Axis::Child {
                doc.element_postings(nm)
            } else {
                doc.attribute_postings(nm)
            };
            let chunks = cfg.chunks_for(pool, posts.len());
            if chunks == 0 {
                note_bypass();
                image_into(doc, axis, x, t, scratch, out);
                return 0;
            }
            let marked = &mut scratch.marked;
            mark(marked, x);
            let marked = &*marked;
            let parent = doc.parent_raw();
            run_chunked(pool, posts.len(), chunks, out, |s, e, buf| {
                for &p in &posts[s..e] {
                    let par = parent[p.index()];
                    if par != NONE && marked.contains(NodeId(par)) {
                        buf.push(p);
                    }
                }
            });
            chunks
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Merge the subtree intervals of X exactly as the sequential
            // kernel does, then test each posting against the merged
            // ranges by binary search instead of merging linearly.
            let or_self = axis == Axis::DescendantOrSelf;
            scratch.ranges.clear();
            for &m in x {
                let s = (m.index() + usize::from(!or_self)) as u32;
                let e = doc.subtree_end(m) as u32;
                if s >= e {
                    continue;
                }
                match scratch.ranges.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => scratch.ranges.push((s, e)),
                }
            }
            let (first, last) = match (scratch.ranges.first(), scratch.ranges.last()) {
                (Some(&f), Some(&l)) => (f, l),
                _ => return 0, // no ranges ⇒ empty output
            };
            let all = doc.element_postings(nm);
            let lo = all.partition_point(|p| (p.index() as u32) < first.0);
            let hi = lo + all[lo..].partition_point(|p| (p.index() as u32) < last.1);
            let posts = &all[lo..hi];
            let chunks = cfg.chunks_for(pool, posts.len());
            if chunks == 0 {
                note_bypass();
                image_into(doc, axis, x, t, scratch, out);
                return 0;
            }
            let ranges = &scratch.ranges;
            run_chunked(pool, posts.len(), chunks, out, |s, e, buf| {
                for &p in &posts[s..e] {
                    let pi = p.index() as u32;
                    // Ranges are sorted and disjoint: the only candidate
                    // is the last one starting at or before `pi`.
                    let idx = ranges.partition_point(|&(rs, _)| rs <= pi);
                    if idx > 0 && pi < ranges[idx - 1].1 {
                        buf.push(p);
                    }
                }
            });
            chunks
        }
        Axis::Preceding => {
            let m = x.iter().map(|v| v.index()).max().expect("x non-empty");
            let all = doc.element_postings(nm);
            let posts = &all[..all.partition_point(|p| p.index() < m)];
            let chunks = cfg.chunks_for(pool, posts.len());
            if chunks == 0 {
                note_bypass();
                image_into(doc, axis, x, t, scratch, out);
                return 0;
            }
            run_chunked(pool, posts.len(), chunks, out, |s, e, buf| {
                for &p in &posts[s..e] {
                    if doc.subtree_end(p) <= m {
                        buf.push(p);
                    }
                }
            });
            chunks
        }
        // Name-tested `following` is a postings memcpy, `parent`/`ancestor`
        // are chain walks, and the rest fall through to sweeps the
        // sequential kernel handles — none benefit from chunking.
        _ => {
            image_into(doc, axis, x, t, scratch, out);
            0
        }
    }
}

/// Generic arena sweeps with the output scan chunked; mark/flag bitmaps
/// are built sequentially first (identically to [`image_into`]) and read
/// immutably inside the region.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // index-driven pre-order sweeps; the index is the NodeId
fn generic_image_par(
    doc: &Document,
    axis: Axis,
    x: &[NodeId],
    t: ResolvedTest,
    scratch: &mut Scratch,
    out: &mut NodeSet,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    let n = doc.len();
    let keep = move |node: NodeId| t.matches(doc, axis, node);
    let parallel = matches!(
        axis,
        Axis::Child
            | Axis::Parent
            | Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::Following
            | Axis::Preceding
            | Axis::Attribute
    );
    if !parallel {
        // Sibling sweeps interleave flag updates with output, `self` is
        // O(|X|), and `id` re-sorts anyway: sequential.
        image_into(doc, axis, x, t, scratch, out);
        return 0;
    }
    let chunks = cfg.chunks_for(pool, n);
    if chunks == 0 {
        note_bypass();
        image_into(doc, axis, x, t, scratch, out);
        return 0;
    }
    let Scratch { marked, flag, .. } = scratch;
    match axis {
        Axis::Child => {
            mark(marked, x);
            let marked = &*marked;
            let parent = doc.parent_raw();
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    let p = parent[i];
                    if p != NONE
                        && marked.contains(NodeId(p))
                        && !doc.kind(y).is_attribute()
                        && keep(y)
                    {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Parent => {
            flag.clear();
            let parent = doc.parent_raw();
            for &m in x {
                let p = parent[m.index()];
                if p != NONE {
                    flag.insert(NodeId(p));
                }
            }
            let flag = &*flag;
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    if flag.contains(y) && keep(y) {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            mark(marked, x);
            flag.clear();
            let parent = doc.parent_raw();
            for i in 1..n {
                let p = NodeId(parent[i]);
                if marked.contains(p) || flag.contains(p) {
                    flag.insert(NodeId::from_index(i));
                }
            }
            let or_self = axis == Axis::DescendantOrSelf;
            let (marked, flag) = (&*marked, &*flag);
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    if ((flag.contains(y) && !doc.kind(y).is_attribute())
                        || (or_self && marked.contains(y)))
                        && keep(y)
                    {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            mark(marked, x);
            flag.clear();
            let parent = doc.parent_raw();
            for i in (1..n).rev() {
                let y = NodeId::from_index(i);
                if marked.contains(y) || flag.contains(y) {
                    flag.insert(NodeId(parent[i]));
                }
            }
            let or_self = axis == Axis::AncestorOrSelf;
            let (marked, flag) = (&*marked, &*flag);
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    if (flag.contains(y) || (or_self && marked.contains(y))) && keep(y) {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Following => {
            let m = x
                .iter()
                .map(|&v| doc.subtree_end(v))
                .min()
                .expect("x non-empty");
            run_chunked(pool, n - m, chunks, out, |s, e, buf| {
                for i in m + s..m + e {
                    let y = NodeId::from_index(i);
                    if !doc.kind(y).is_attribute() && keep(y) {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Preceding => {
            let m = x.iter().map(|v| v.index()).max().expect("x non-empty");
            // subtree_end(y) > pre(y), so only indices below m qualify.
            run_chunked(pool, m, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    if doc.subtree_end(y) <= m && !doc.kind(y).is_attribute() && keep(y) {
                        buf.push(y);
                    }
                }
            });
        }
        Axis::Attribute => {
            mark(marked, x);
            let marked = &*marked;
            let parent = doc.parent_raw();
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    let p = parent[i];
                    if doc.kind(y).is_attribute()
                        && p != NONE
                        && marked.contains(NodeId(p))
                        && keep(y)
                    {
                        buf.push(y);
                    }
                }
            });
        }
        _ => unreachable!("gated by `parallel` above"),
    }
    chunks
}

/// Parallel variant of [`axis_preimage_into`]: identical output, with the
/// mirror-image cases routed through [`axis_image_into_par`] and the
/// direct `ancestor`/`following` arena scans chunked.  Returns the number
/// of chunks used (`0` = sequential).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // index-driven pre-order sweeps; the index is the NodeId
pub fn axis_preimage_into_par(
    doc: &Document,
    axis: Axis,
    y: &NodeSet,
    scratch: &mut Scratch,
    out: &mut NodeSet,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    out.clear();
    if y.is_empty() {
        return 0;
    }
    let n = doc.len();
    scratch.grow(n);
    match axis {
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf => {
            // Mirror through the parallel image, with the same attribute
            // filtering as the sequential kernel.
            let mut filt = std::mem::take(&mut scratch.tmp2);
            filt.clear();
            filt.extend(y.iter().filter(|&m| !doc.kind(m).is_attribute()));
            let mirror = match axis {
                Axis::Child => Axis::Parent,
                Axis::Descendant => Axis::Ancestor,
                _ => Axis::AncestorOrSelf,
            };
            let chunks = image_into_par(
                doc,
                mirror,
                &filt,
                ResolvedTest::AnyNode,
                scratch,
                out,
                pool,
                cfg,
            );
            scratch.tmp2 = filt;
            if axis == Axis::DescendantOrSelf {
                let o = out.vec_mut();
                o.extend(y.iter().filter(|&m| doc.kind(m).is_attribute()));
                o.sort_unstable();
                o.dedup();
            }
            chunks
        }
        Axis::Parent => {
            let chunks = image_into_par(
                doc,
                Axis::Child,
                y.as_slice(),
                ResolvedTest::AnyNode,
                scratch,
                out,
                pool,
                cfg,
            );
            let o = out.vec_mut();
            for m in y.iter() {
                if doc.kind(m).is_element() {
                    o.extend(doc.attributes(m));
                }
            }
            o.sort_unstable();
            o.dedup();
            chunks
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let chunks = cfg.chunks_for(pool, n);
            if chunks == 0 {
                note_bypass();
                axis_preimage_into(doc, axis, y, scratch, out);
                return 0;
            }
            let or_self = axis == Axis::AncestorOrSelf;
            let Scratch { marked, flag, .. } = scratch;
            mark(marked, y.as_slice());
            flag.clear();
            let parent = doc.parent_raw();
            for i in 1..n {
                let p = NodeId(parent[i]);
                if marked.contains(p) || flag.contains(p) {
                    flag.insert(NodeId::from_index(i));
                }
            }
            let (marked, flag) = (&*marked, &*flag);
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let id = NodeId::from_index(i);
                    if flag.contains(id) || (or_self && marked.contains(id)) {
                        buf.push(id);
                    }
                }
            });
            chunks
        }
        Axis::Following => {
            let Some(m) = y
                .iter()
                .filter(|&v| !doc.kind(v).is_attribute())
                .map(|v| v.index())
                .max()
            else {
                return 0;
            };
            let chunks = cfg.chunks_for(pool, n);
            if chunks == 0 {
                note_bypass();
                axis_preimage_into(doc, axis, y, scratch, out);
                return 0;
            }
            run_chunked(pool, n, chunks, out, |s, e, buf| {
                for i in s..e {
                    let v = NodeId::from_index(i);
                    if doc.subtree_end(v) <= m {
                        buf.push(v);
                    }
                }
            });
            chunks
        }
        // `preceding` is a pure index-range push (memcpy-shaped), and the
        // remaining axes are small or sibling-shaped: sequential.
        _ => {
            axis_preimage_into(doc, axis, y, scratch, out);
            0
        }
    }
}

/// Parallel variant of [`Document::axis_nodes_into`] for the single-origin
/// axes whose cost is an arena scan — `following` and `preceding` under
/// non-name tests.  Everything else (local walks, postings binary
/// searches) delegates.  Output order is the axis order `<doc,χ`, exactly
/// as the sequential walk produces it.  Returns chunks used (`0` =
/// sequential).
pub fn axis_nodes_into_par(
    doc: &Document,
    axis: Axis,
    from: NodeId,
    t: ResolvedTest,
    out: &mut Vec<NodeId>,
    pool: &WorkerPool,
    cfg: ParConfig,
) -> usize {
    let name_test = matches!(t, ResolvedTest::Name(_));
    match axis {
        Axis::Following if !name_test && t != ResolvedTest::NeverMatches => {
            let start = doc.subtree_end(from);
            let n = doc.len();
            let chunks = cfg.chunks_for(pool, n - start);
            if chunks == 0 {
                note_bypass();
                doc.axis_nodes_into(axis, from, t, out);
                return 0;
            }
            out.clear();
            let bufs = fill_chunks(pool, n - start, chunks, |s, e, buf| {
                for i in start + s..start + e {
                    let y = NodeId::from_index(i);
                    if !doc.kind(y).is_attribute() && t.matches(doc, axis, y) {
                        buf.push(y);
                    }
                }
            });
            for buf in bufs {
                out.extend_from_slice(&buf);
            }
            chunks
        }
        Axis::Preceding if !name_test && t != ResolvedTest::NeverMatches => {
            let m = from.index();
            let chunks = cfg.chunks_for(pool, m);
            if chunks == 0 {
                note_bypass();
                doc.axis_nodes_into(axis, from, t, out);
                return 0;
            }
            out.clear();
            let bufs = fill_chunks(pool, m, chunks, |s, e, buf| {
                for i in s..e {
                    let y = NodeId::from_index(i);
                    if doc.subtree_end(y) <= m
                        && !doc.kind(y).is_attribute()
                        && t.matches(doc, axis, y)
                    {
                        buf.push(y);
                    }
                }
            });
            // Reverse document order: reverse both the chunk order and
            // each chunk's ascending contents.
            for buf in bufs.iter().rev() {
                out.extend(buf.iter().rev());
            }
            chunks
        }
        _ => {
            doc.axis_nodes_into(axis, from, t, out);
            0
        }
    }
}

/// Which kernel family an axis call dispatches to — the EXPLAIN/profile
/// surface reports this without re-running the sweep, so the classifiers
/// below must mirror the real dispatch in [`axis_image_into`] and
/// [`Document::axis_nodes_into`] exactly (a test pins the agreement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisRoute {
    /// Sorted label-postings kernel (binary search / interval merge /
    /// parent check): sublinear in `|D|` when the label is rare.
    Postings,
    /// Local traversal — the ordered single-node walk from a singleton
    /// origin, or the `parent`/`ancestor` chain kernels — whose cost is
    /// the touched chain/subtree, not the document.
    Walk,
    /// Generic document-order sweep over the arena: `O(|D|)`.
    Sweep,
}

impl AxisRoute {
    /// A short stable name (used in EXPLAIN plan text).
    pub fn as_str(self) -> &'static str {
        match self {
            AxisRoute::Postings => "postings",
            AxisRoute::Walk => "walk",
            AxisRoute::Sweep => "sweep",
        }
    }
}

impl fmt::Display for AxisRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The route [`axis_image_into`] takes for an origin set of `origins`
/// nodes under test `t`.  Mirrors `image_into`'s dispatch: singleton
/// origins take the single-node walk (except the id axis and name-tested
/// `following`/`preceding`, which prefer the set kernels), name tests
/// route through [`name_image_fast`], everything else sweeps.
pub fn classify_image_route(axis: Axis, t: ResolvedTest, origins: usize) -> AxisRoute {
    if origins == 0 || t == ResolvedTest::NeverMatches {
        // Constant-time empty short-circuit; no kernel runs at all.
        return AxisRoute::Walk;
    }
    let name_test = matches!(t, ResolvedTest::Name(_));
    if origins == 1 {
        let sliced_name_test = matches!(axis, Axis::Following | Axis::Preceding) && name_test;
        if axis != Axis::Id && !sliced_name_test {
            return classify_single_route(axis, t);
        }
    }
    if name_test {
        return match axis {
            Axis::Child
            | Axis::Attribute
            | Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::Following
            | Axis::Preceding => AxisRoute::Postings,
            // Chain kernels with a visited set: local, not postings.
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf => AxisRoute::Walk,
            Axis::SelfAxis | Axis::FollowingSibling | Axis::PrecedingSibling | Axis::Id => {
                AxisRoute::Sweep
            }
        };
    }
    AxisRoute::Sweep
}

/// The route [`Document::axis_nodes_into`] takes from one origin node —
/// what each origin of a predicated step pays.  Name-tested
/// `descendant(-or-self)` and `following` binary-search the postings;
/// every other shape is the ordered local walk.
pub fn classify_single_route(axis: Axis, t: ResolvedTest) -> AxisRoute {
    if matches!(t, ResolvedTest::Name(_))
        && matches!(
            axis,
            Axis::Descendant | Axis::DescendantOrSelf | Axis::Following
        )
    {
        AxisRoute::Postings
    } else {
        AxisRoute::Walk
    }
}

/// `χ⁻¹(Y) = {x ∈ dom | χ({x}) ∩ Y ≠ ∅}` (Definition 1), in `O(|D|)`.
///
/// Exact for attribute nodes on *both* sides of the relation: attribute
/// members of `Y` only contribute where the forward axis can actually
/// reach an attribute (`self`, `attribute`, the or-self part of
/// `descendant-or-self`/`ancestor-or-self`, `parent`), and attribute
/// *origins* are reported for the axes whose forward image from an
/// attribute node is non-empty (`parent`, `ancestor(-or-self)`,
/// `following`, `preceding`, the or-self axes) — the divergence-from-`χ⁻¹`
/// cases the pure mirror-axis implementation used to get wrong (see
/// DESIGN.md).
pub fn axis_preimage(doc: &Document, axis: Axis, y: &NodeSet) -> NodeSet {
    let mut scratch = Scratch::new();
    let mut out = NodeSet::new();
    axis_preimage_into(doc, axis, y, &mut scratch, &mut out);
    out
}

/// The allocation-free core of [`axis_preimage`]: clears `out` and fills
/// it with `χ⁻¹(Y)` in document order.
#[allow(clippy::needless_range_loop)] // index-driven pre-order sweeps; the index is the NodeId
pub fn axis_preimage_into(
    doc: &Document,
    axis: Axis,
    y: &NodeSet,
    scratch: &mut Scratch,
    out: &mut NodeSet,
) {
    out.clear();
    if y.is_empty() {
        return;
    }
    let n = doc.len();
    scratch.grow(n);
    // Filters Y down to the members the forward axis can produce before
    // mirroring; the buffer must survive the inner image call, so it is
    // taken out of the scratch for the duration.
    macro_rules! with_non_attr {
        ($body:expr) => {{
            let mut filt = std::mem::take(&mut scratch.tmp2);
            filt.clear();
            filt.extend(y.iter().filter(|&m| !doc.kind(m).is_attribute()));
            let filt_ref: &[NodeId] = &filt;
            #[allow(clippy::redundant_closure_call)]
            ($body)(filt_ref);
            scratch.tmp2 = filt;
        }};
    }
    match axis {
        Axis::SelfAxis => out.vec_mut().extend_from_slice(y.as_slice()),
        Axis::Attribute => {
            // x has an attribute in Y  ⇔  x owns an attribute node in Y.
            let tmp = &mut scratch.tmp;
            tmp.clear();
            tmp.extend(
                y.iter()
                    .filter(|&a| doc.kind(a).is_attribute())
                    .filter_map(|a| doc.parent(a)),
            );
            tmp.sort_unstable();
            tmp.dedup();
            out.vec_mut().extend_from_slice(tmp);
        }
        Axis::Id => *out = doc.id_preimage(y),
        Axis::Child => {
            // child(x) never contains attributes: drop them from Y, then
            // mirror.
            with_non_attr!(|filt| image_into(
                doc,
                Axis::Parent,
                filt,
                ResolvedTest::AnyNode,
                scratch,
                out
            ));
        }
        Axis::Parent => {
            // parent(x) is defined for attributes too: the preimage is the
            // non-attribute children of Y plus the attributes owned by Y.
            image_into(
                doc,
                Axis::Child,
                y.as_slice(),
                ResolvedTest::AnyNode,
                scratch,
                out,
            );
            let o = out.vec_mut();
            for m in y.iter() {
                if doc.kind(m).is_element() {
                    o.extend(doc.attributes(m));
                }
            }
            o.sort_unstable();
            o.dedup();
        }
        Axis::Descendant => {
            with_non_attr!(|filt| image_into(
                doc,
                Axis::Ancestor,
                filt,
                ResolvedTest::AnyNode,
                scratch,
                out
            ));
        }
        Axis::DescendantOrSelf => {
            // Ancestors-or-self of the non-attribute members, plus the
            // attribute members themselves (an attribute is its own
            // descendant-or-self and has no other preimage).
            with_non_attr!(|filt| image_into(
                doc,
                Axis::AncestorOrSelf,
                filt,
                ResolvedTest::AnyNode,
                scratch,
                out
            ));
            let o = out.vec_mut();
            o.extend(y.iter().filter(|&m| doc.kind(m).is_attribute()));
            o.sort_unstable();
            o.dedup();
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            // ancestor(x) reaches Y  ⇔  x is a proper descendant of Y —
            // *including* attribute descendants, which the mirror
            // descendant image would drop.
            let or_self = axis == Axis::AncestorOrSelf;
            let Scratch { marked, flag, .. } = scratch;
            mark(marked, y.as_slice());
            flag.clear();
            let parent = doc.parent_raw();
            for i in 1..n {
                let p = NodeId(parent[i]);
                if marked.contains(p) || flag.contains(p) {
                    flag.insert(NodeId::from_index(i));
                }
            }
            let o = out.vec_mut();
            for i in 0..n {
                let id = NodeId::from_index(i);
                if flag.contains(id) || (or_self && marked.contains(id)) {
                    o.push(id);
                }
            }
        }
        Axis::Following => {
            // following(x) ∩ Y ≠ ∅  ⇔  subtree_end(x) ≤ max non-attribute
            // member of Y; attribute origins qualify.
            let Some(m) = y
                .iter()
                .filter(|&v| !doc.kind(v).is_attribute())
                .map(|v| v.index())
                .max()
            else {
                return;
            };
            out.vec_mut().extend(
                (0..n)
                    .map(NodeId::from_index)
                    .filter(|&v| doc.subtree_end(v) <= m),
            );
        }
        Axis::Preceding => {
            // preceding(x) ∩ Y ≠ ∅  ⇔  pre(x) ≥ min subtree_end over
            // non-attribute members of Y; attribute origins qualify.
            let Some(m) = y
                .iter()
                .filter(|&v| !doc.kind(v).is_attribute())
                .map(|v| doc.subtree_end(v))
                .min()
            else {
                return;
            };
            out.vec_mut().extend((m..n).map(NodeId::from_index));
        }
        Axis::FollowingSibling => {
            // Sibling relations exclude attributes on both sides, and the
            // sibling sweeps already enforce that: plain mirror.
            image_into(
                doc,
                Axis::PrecedingSibling,
                y.as_slice(),
                ResolvedTest::AnyNode,
                scratch,
                out,
            );
        }
        Axis::PrecedingSibling => {
            image_into(
                doc,
                Axis::FollowingSibling,
                y.as_slice(),
                ResolvedTest::AnyNode,
                scratch,
                out,
            );
        }
    }
}

impl Document {
    /// The nodes reachable from the single node `from` via `axis`,
    /// filtered by `test`, **in axis order** `<doc,χ` (Section 2.1):
    /// document order for forward axes, reverse document order for reverse
    /// axes.  This ordering is what `position()` and `last()` are defined
    /// over, so the evaluators build their candidate lists with it.
    pub fn axis_nodes(&self, axis: Axis, from: NodeId, test: &NodeTest) -> Vec<NodeId> {
        let t = test.resolve(self);
        let mut out = Vec::new();
        self.axis_nodes_into(axis, from, t, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Document::axis_nodes`].
    pub fn axis_nodes_into(
        &self,
        axis: Axis,
        from: NodeId,
        t: ResolvedTest,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if t == ResolvedTest::NeverMatches {
            return;
        }
        // Postings fast paths: a name test over a subtree range is a
        // binary search into the label postings instead of an arena scan.
        if let ResolvedTest::Name(nm) = t {
            match axis {
                Axis::Descendant | Axis::DescendantOrSelf => {
                    let posts = self.element_postings(nm);
                    let lo = from.index() + usize::from(axis == Axis::Descendant);
                    let hi = self.subtree_end(from);
                    let start = posts.partition_point(|p| p.index() < lo);
                    for &p in &posts[start..] {
                        if p.index() >= hi {
                            break;
                        }
                        out.push(p);
                    }
                    return;
                }
                Axis::Following => {
                    let posts = self.element_postings(nm);
                    let start = posts.partition_point(|p| p.index() < self.subtree_end(from));
                    out.extend_from_slice(&posts[start..]);
                    return;
                }
                _ => {}
            }
        }
        let keep = |n: NodeId| t.matches(self, axis, n);
        match axis {
            Axis::SelfAxis => {
                if keep(from) {
                    out.push(from);
                }
            }
            Axis::Child => out.extend(self.children(from).filter(|&c| keep(c))),
            Axis::Parent => {
                if let Some(p) = self.parent(from) {
                    if keep(p) {
                        out.push(p);
                    }
                }
            }
            Axis::Descendant => {
                out.extend(self.descendants(from).filter(|&d| keep(d)));
            }
            Axis::DescendantOrSelf => {
                if keep(from) {
                    out.push(from);
                }
                out.extend(self.descendants(from).filter(|&d| keep(d)));
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                if axis == Axis::AncestorOrSelf && keep(from) {
                    out.push(from);
                }
                let mut cur = self.parent(from);
                while let Some(p) = cur {
                    if keep(p) {
                        out.push(p);
                    }
                    cur = self.parent(p);
                }
            }
            Axis::Following => {
                let start = self.subtree_end(from);
                out.extend(
                    (start..self.len())
                        .map(NodeId::from_index)
                        .filter(|&y| !self.kind(y).is_attribute() && keep(y)),
                );
            }
            Axis::Preceding => {
                // Reverse document order, skipping ancestors of `from`.
                for i in (0..from.index()).rev() {
                    let y = NodeId::from_index(i);
                    if self.subtree_end(y) <= from.index()
                        && !self.kind(y).is_attribute()
                        && keep(y)
                    {
                        out.push(y);
                    }
                }
            }
            Axis::FollowingSibling => {
                let mut cur = self.next_sibling(from);
                while let Some(s) = cur {
                    if keep(s) {
                        out.push(s);
                    }
                    cur = self.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = self.prev_sibling(from);
                while let Some(s) = cur {
                    if keep(s) {
                        out.push(s);
                    }
                    cur = self.prev_sibling(s);
                }
            }
            Axis::Attribute => out.extend(self.attributes(from).filter(|&a| keep(a))),
            Axis::Id => {
                let set = self.deref_ids(&self.string_value(from));
                out.extend(set.iter().filter(|&m| keep(m)));
            }
        }
    }

    /// Whether the pair `(x, y)` is in the axis relation `χ` — the
    /// membership test `x χ y` used by the predicate loops of MINCONTEXT.
    pub fn axis_relates(&self, axis: Axis, x: NodeId, y: NodeId) -> bool {
        match axis {
            Axis::SelfAxis => x == y,
            Axis::Child => self.parent(y) == Some(x) && !self.kind(y).is_attribute(),
            Axis::Parent => self.parent(x) == Some(y),
            Axis::Descendant => self.is_ancestor_of(x, y) && !self.kind(y).is_attribute(),
            Axis::Ancestor => self.is_ancestor_of(y, x),
            Axis::DescendantOrSelf => {
                x == y || (self.is_ancestor_of(x, y) && !self.kind(y).is_attribute())
            }
            Axis::AncestorOrSelf => x == y || self.is_ancestor_of(y, x),
            Axis::Following => y.index() >= self.subtree_end(x) && !self.kind(y).is_attribute(),
            Axis::Preceding => self.subtree_end(y) <= x.index() && !self.kind(y).is_attribute(),
            Axis::FollowingSibling => {
                self.parent(x) == self.parent(y)
                    && x < y
                    && !self.kind(y).is_attribute()
                    && !self.kind(x).is_attribute()
            }
            Axis::PrecedingSibling => {
                self.parent(x) == self.parent(y)
                    && y < x
                    && !self.kind(y).is_attribute()
                    && !self.kind(x).is_attribute()
            }
            Axis::Attribute => self.kind(y).is_attribute() && self.parent(y) == Some(x),
            Axis::Id => self.deref_ids(&self.string_value(x)).contains(y),
        }
    }
}

/// `idxχ(x, S)`: the 1-based index of `x` in `S` with respect to `<doc,χ`
/// (Section 2.1).  `S` must be sorted in document order.
pub fn idx_in_axis_order(axis: Axis, x: NodeId, s: &NodeSet) -> Option<usize> {
    let pos = s.position_of(x)?;
    Some(if axis.is_reverse() {
        s.len() - pos
    } else {
        pos + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Brute-force reference: enumerate all pairs via `axis_relates`.
    fn brute_image(doc: &Document, axis: Axis, x: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        for y in doc.all_nodes() {
            if x.iter().any(|m| doc.axis_relates(axis, m, y)) {
                out.push(y);
            }
        }
        NodeSet::from_sorted_vec(out)
    }

    fn brute_preimage(doc: &Document, axis: Axis, y: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        for x in doc.all_nodes() {
            if y.iter().any(|m| doc.axis_relates(axis, x, m)) {
                out.push(x);
            }
        }
        NodeSet::from_sorted_vec(out)
    }

    fn doc1() -> Document {
        parse("<a><b><c/><d/></b><e>text</e><f><g/></f></a>").unwrap()
    }

    /// An attributed document: attribute nodes on several elements, mixed
    /// with text and nested structure, to exercise the attribute edge
    /// cases of both image and preimage (see DESIGN.md).
    fn doc2() -> Document {
        parse(r#"<a p="1"><b q="2"><c/><c r="3"/></b><e>t</e><f s="4" u="5"><g/></f></a>"#).unwrap()
    }

    fn all_elements(doc: &Document) -> NodeSet {
        doc.all_nodes()
            .filter(|&n| doc.kind(n).is_element())
            .collect()
    }

    #[test]
    fn image_matches_brute_force_on_all_axes() {
        for doc in [doc1(), doc2()] {
            let elems = all_elements(&doc);
            let everything: NodeSet = doc.all_nodes().collect();
            // Try every singleton (attributes and text included) and the
            // element / full sets.
            for axis in Axis::ALL {
                if axis == Axis::Id {
                    continue; // no ids in these docs; covered separately
                }
                for x in everything.iter() {
                    let xs = NodeSet::singleton(x);
                    let fast = axis_image(&doc, axis, &xs, &NodeTest::AnyNode);
                    let slow = brute_image(&doc, axis, &xs);
                    assert_eq!(fast, slow, "axis {axis} from {x}");
                }
                for set in [&elems, &everything] {
                    let fast = axis_image(&doc, axis, set, &NodeTest::AnyNode);
                    let slow = brute_image(&doc, axis, set);
                    assert_eq!(fast, slow, "axis {axis} from set of {}", set.len());
                }
            }
        }
    }

    #[test]
    fn preimage_matches_brute_force_on_all_axes() {
        // Includes the attributed document: mirror-axis images diverge
        // from χ⁻¹ when Y contains attribute nodes (and for attribute
        // *origins* of `parent` / `ancestor` / `following` / `preceding`),
        // which the direct preimage kernels must get right.
        for doc in [doc1(), doc2()] {
            let everything: NodeSet = doc.all_nodes().collect();
            for axis in Axis::ALL {
                if matches!(axis, Axis::Id) {
                    continue;
                }
                for y in everything.iter() {
                    let ys = NodeSet::singleton(y);
                    let fast = axis_preimage(&doc, axis, &ys);
                    let slow = brute_preimage(&doc, axis, &ys);
                    assert_eq!(fast, slow, "axis {axis} to {y}");
                }
                let fast = axis_preimage(&doc, axis, &everything);
                let slow = brute_preimage(&doc, axis, &everything);
                assert_eq!(fast, slow, "axis {axis} to full node set");
            }
        }
    }

    #[test]
    fn preimage_attribute_members_do_not_leak_through_tree_axes() {
        // Regression for the old mirror-axis shortcut: with Y = {an
        // attribute}, child/descendant preimages must be empty (tree axes
        // never produce attributes), parent must report the attribute
        // itself (parent(attr) = owner… i.e. x = attr has parent in Y only
        // if Y contains the owner), and descendant-or-self must report
        // exactly the attribute (its own descendant-or-self).
        let doc = doc2();
        let a = doc.document_element();
        let p_attr = doc.attributes(a).next().unwrap();
        let ys = NodeSet::singleton(p_attr);
        assert!(axis_preimage(&doc, Axis::Child, &ys).is_empty());
        assert!(axis_preimage(&doc, Axis::Descendant, &ys).is_empty());
        assert_eq!(
            axis_preimage(&doc, Axis::DescendantOrSelf, &ys),
            NodeSet::singleton(p_attr)
        );
        // Owner in Y: attributes are in the parent-axis preimage.
        let pre = axis_preimage(&doc, Axis::Parent, &NodeSet::singleton(a));
        assert!(pre.contains(p_attr));
        // Attribute origins reach forward through following/ancestor.
        let root_set = NodeSet::singleton(doc.root());
        assert!(axis_preimage(&doc, Axis::Ancestor, &root_set).contains(p_attr));
    }

    #[test]
    fn name_test_images_match_filtered_brute_force() {
        // The postings fast paths must agree with the generic sweep +
        // post-filter on every axis.
        for doc in [doc1(), doc2()] {
            let everything: NodeSet = doc.all_nodes().collect();
            let elems = all_elements(&doc);
            for label in ["a", "b", "c", "g", "q", "zzz"] {
                let test = NodeTest::name(label);
                for axis in Axis::ALL {
                    if axis == Axis::Id {
                        continue;
                    }
                    let t = test.resolve(&doc);
                    for set in [&elems, &everything] {
                        let fast = axis_image(&doc, axis, set, &test);
                        let mut slow = brute_image(&doc, axis, set);
                        slow.retain(|y| t.matches(&doc, axis, y));
                        assert_eq!(fast, slow, "axis {axis}, label {label}");
                    }
                }
            }
        }
    }

    #[test]
    fn axis_nodes_ordering_forward_and_reverse() {
        let doc = doc1();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();

        // descendant: document order.
        let desc = doc.axis_nodes(Axis::Descendant, a, &NodeTest::Wildcard);
        let labels: Vec<_> = desc.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["b", "c", "d", "e", "f", "g"]);

        // ancestor: reverse document order (parent first).
        let anc = doc.axis_nodes(Axis::Ancestor, c, &NodeTest::AnyNode);
        assert_eq!(anc[0], b);
        assert_eq!(anc[1], a);
        assert_eq!(anc[2], doc.root());

        // preceding from <g>: reverse document order, no ancestors.
        let g = doc
            .descendants(a)
            .find(|&n| doc.label_str(n) == Some("g"))
            .unwrap();
        let prec = doc.axis_nodes(Axis::Preceding, g, &NodeTest::Wildcard);
        let labels: Vec<_> = prec.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["e", "d", "c", "b"]);
    }

    #[test]
    fn following_excludes_descendants_and_self() {
        let doc = doc1();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let foll = doc.axis_nodes(Axis::Following, b, &NodeTest::Wildcard);
        let labels: Vec<_> = foll.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["e", "f", "g"]);
    }

    #[test]
    fn sibling_axes() {
        let doc = doc1();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        let (b, e, f) = (kids[0], kids[1], kids[2]);
        let fs = doc.axis_nodes(Axis::FollowingSibling, b, &NodeTest::Wildcard);
        assert_eq!(fs, vec![e, f]);
        let ps = doc.axis_nodes(Axis::PrecedingSibling, f, &NodeTest::Wildcard);
        assert_eq!(ps, vec![e, b]); // reverse document order
    }

    #[test]
    fn wildcard_selects_elements_only() {
        let doc = parse("<a>t1<b/>t2</a>").unwrap();
        let a = doc.document_element();
        let star = doc.axis_nodes(Axis::Child, a, &NodeTest::Wildcard);
        assert_eq!(star.len(), 1);
        let any = doc.axis_nodes(Axis::Child, a, &NodeTest::AnyNode);
        assert_eq!(any.len(), 3);
        let text = doc.axis_nodes(Axis::Child, a, &NodeTest::Text);
        assert_eq!(text.len(), 2);
    }

    #[test]
    fn name_test_resolution() {
        let doc = doc1();
        let a = doc.document_element();
        let bs = doc.axis_nodes(Axis::Descendant, a, &NodeTest::name("b"));
        assert_eq!(bs.len(), 1);
        let none = doc.axis_nodes(Axis::Descendant, a, &NodeTest::name("zzz"));
        assert!(none.is_empty());
    }

    #[test]
    fn attribute_axis_and_preimage() {
        let doc = parse(r#"<a p="1"><b q="2" r="3"/></a>"#).unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let attrs_b = doc.axis_nodes(Axis::Attribute, b, &NodeTest::Wildcard);
        assert_eq!(attrs_b.len(), 2);
        let q_only = doc.axis_nodes(Axis::Attribute, b, &NodeTest::name("q"));
        assert_eq!(q_only.len(), 1);
        // Preimage: owner elements of the attribute nodes.
        let ys = NodeSet::from_unsorted(attrs_b.clone());
        let owners = axis_preimage(&doc, Axis::Attribute, &ys);
        assert_eq!(owners, NodeSet::singleton(b));
        // Attributes never appear on tree axes.
        let desc = doc.axis_nodes(Axis::Descendant, a, &NodeTest::AnyNode);
        assert!(desc.iter().all(|&n| !doc.kind(n).is_attribute()));
    }

    #[test]
    fn id_axis_image_and_preimage() {
        // b's text references id 22; c has id 22.
        let doc = parse(r#"<a id="10"><b id="11">22</b><c id="22">x</c></a>"#).unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.last_child(a).unwrap();
        let img = axis_image(&doc, Axis::Id, &NodeSet::singleton(b), &NodeTest::AnyNode);
        assert_eq!(img, NodeSet::singleton(c));
        let pre = axis_preimage(&doc, Axis::Id, &NodeSet::singleton(c));
        assert!(pre.contains(b));
        // Per-text-node tokenization (see DESIGN.md): the text node "22"
        // under b contributes the token to every ancestor's preimage.
        assert!(pre.contains(a));
    }

    #[test]
    fn idx_in_axis_order_forward_and_reverse() {
        let s = NodeSet::from_unsorted(vec![
            NodeId::from_index(2),
            NodeId::from_index(5),
            NodeId::from_index(9),
        ]);
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(2), &s),
            Some(1)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(9), &s),
            Some(3)
        );
        // Reverse axis: first in reverse doc order gets index 1.
        assert_eq!(
            idx_in_axis_order(Axis::Ancestor, NodeId::from_index(9), &s),
            Some(1)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Ancestor, NodeId::from_index(2), &s),
            Some(3)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(4), &s),
            None
        );
    }

    #[test]
    fn axis_inverse_round_trip() {
        for axis in Axis::ALL {
            if let Some(inv) = axis.inverse() {
                assert_eq!(inv.inverse(), Some(axis));
            }
        }
    }

    #[test]
    fn axis_parse_round_trip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_str_opt(axis.as_str()), Some(axis));
        }
        assert_eq!(Axis::from_str_opt("sideways"), None);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "full axis x test x origin pool sweep is minutes-long under the interpreter"
    )]
    fn parallel_kernels_match_sequential_bit_for_bit() {
        // Tiny thresholds force the chunked paths even on these small
        // documents; every axis × test × origin-set combination must agree
        // with the sequential kernels exactly (ordinals included).
        let pool = WorkerPool::new(3);
        let cfg = ParConfig {
            threshold: 2,
            min_chunk: 1,
        };
        for doc in [doc1(), doc2()] {
            let everything: NodeSet = doc.all_nodes().collect();
            let elems = all_elements(&doc);
            let single = NodeSet::singleton(doc.document_element());
            let tests = [
                NodeTest::AnyNode,
                NodeTest::Wildcard,
                NodeTest::Text,
                NodeTest::name("b"),
                NodeTest::name("c"),
                NodeTest::name("q"),
                NodeTest::name("zzz"),
            ];
            let mut scratch = Scratch::new();
            for axis in Axis::ALL {
                for test in &tests {
                    let t = test.resolve(&doc);
                    for set in [&elems, &everything, &single] {
                        let mut seq = NodeSet::new();
                        axis_image_into(&doc, axis, set, t, &mut scratch, &mut seq);
                        let mut par = NodeSet::new();
                        axis_image_into_par(&doc, axis, set, t, &mut scratch, &mut par, &pool, cfg);
                        assert_eq!(par, seq, "image axis {axis} test {test}");
                    }
                    let mut seq = NodeSet::new();
                    axis_preimage_into(&doc, axis, &everything, &mut scratch, &mut seq);
                    let mut par = NodeSet::new();
                    axis_preimage_into_par(
                        &doc,
                        axis,
                        &everything,
                        &mut scratch,
                        &mut par,
                        &pool,
                        cfg,
                    );
                    assert_eq!(par, seq, "preimage axis {axis}");
                    for from in everything.iter() {
                        let mut seq = Vec::new();
                        doc.axis_nodes_into(axis, from, t, &mut seq);
                        let mut par = Vec::new();
                        axis_nodes_into_par(&doc, axis, from, t, &mut par, &pool, cfg);
                        assert_eq!(par, seq, "axis_nodes axis {axis} test {test} from {from}");
                    }
                }
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "4000-element chunked sweep is minutes-long under the interpreter"
    )]
    fn parallel_kernels_engage_above_threshold() {
        // A wide flat document large enough that the chunked paths really
        // run (non-zero chunk counts), still agreeing with sequential.
        let mut xml = String::from("<r>");
        for i in 0..4000 {
            if i % 3 == 0 {
                xml.push_str("<a><b/></a>");
            } else {
                xml.push_str("<c/>");
            }
        }
        xml.push_str("</r>");
        let doc = parse(&xml).unwrap();
        let pool = WorkerPool::new(4);
        let cfg = ParConfig {
            threshold: 64,
            min_chunk: 16,
        };
        let elems = all_elements(&doc);
        let mut scratch = Scratch::new();
        let mut ran_parallel = 0usize;
        for (axis, test) in [
            (Axis::Child, NodeTest::name("b")),
            (Axis::Descendant, NodeTest::name("a")),
            (Axis::Child, NodeTest::AnyNode),
            (Axis::Preceding, NodeTest::Wildcard),
            (Axis::Following, NodeTest::AnyNode),
        ] {
            let t = test.resolve(&doc);
            let mut seq = NodeSet::new();
            axis_image_into(&doc, axis, &elems, t, &mut scratch, &mut seq);
            let mut par = NodeSet::new();
            let chunks =
                axis_image_into_par(&doc, axis, &elems, t, &mut scratch, &mut par, &pool, cfg);
            assert_eq!(par, seq, "axis {axis} test {test}");
            ran_parallel += usize::from(chunks > 0);
        }
        assert!(ran_parallel >= 4, "expected the chunked kernels to engage");
    }

    #[test]
    fn route_classification_mirrors_the_kernel_dispatch() {
        let doc = doc1();
        let name = NodeTest::name("c").resolve(&doc);
        let any = NodeTest::AnyNode.resolve(&doc);
        // Name tests over multi-node origin sets hit the postings kernels
        // exactly for the axes name_image_fast accepts…
        for axis in [
            Axis::Child,
            Axis::Attribute,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Following,
            Axis::Preceding,
        ] {
            assert_eq!(classify_image_route(axis, name, 3), AxisRoute::Postings);
        }
        // …chain kernels are local walks…
        for axis in [Axis::Parent, Axis::Ancestor, Axis::AncestorOrSelf] {
            assert_eq!(classify_image_route(axis, name, 3), AxisRoute::Walk);
        }
        // …and the rest fall through to the generic sweeps.
        for axis in [Axis::SelfAxis, Axis::FollowingSibling, Axis::Id] {
            assert_eq!(classify_image_route(axis, name, 3), AxisRoute::Sweep);
        }
        assert_eq!(classify_image_route(Axis::Child, any, 3), AxisRoute::Sweep);
        // Singleton origins take the single-node walk, whose own postings
        // fast paths cover name-tested descendant(-or-self)/following.
        assert_eq!(
            classify_image_route(Axis::Descendant, name, 1),
            AxisRoute::Postings
        );
        assert_eq!(classify_image_route(Axis::Child, name, 1), AxisRoute::Walk);
        assert_eq!(classify_image_route(Axis::Child, any, 1), AxisRoute::Walk);
        // The singleton exceptions stay on the set kernels: id, and the
        // sliced name-tested following/preceding postings.
        assert_eq!(classify_image_route(Axis::Id, any, 1), AxisRoute::Sweep);
        assert_eq!(
            classify_image_route(Axis::Preceding, name, 1),
            AxisRoute::Postings
        );
        // Empty origins and dead names never run a kernel at all.
        assert_eq!(classify_image_route(Axis::Child, name, 0), AxisRoute::Walk);
        assert_eq!(
            classify_image_route(Axis::Descendant, ResolvedTest::NeverMatches, 9),
            AxisRoute::Walk
        );
        // The per-origin classifier mirrors axis_nodes_into.
        assert_eq!(
            classify_single_route(Axis::Descendant, name),
            AxisRoute::Postings
        );
        assert_eq!(
            classify_single_route(Axis::Following, name),
            AxisRoute::Postings
        );
        assert_eq!(
            classify_single_route(Axis::Preceding, name),
            AxisRoute::Walk
        );
        assert_eq!(classify_single_route(Axis::Child, any), AxisRoute::Walk);
    }
}

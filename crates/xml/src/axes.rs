//! XPath axes: the binary relations `χ ⊆ dom × dom` of Definition 1 and
//! their set functions.
//!
//! Three entry points:
//!
//! * [`axis_image`] — `χ(X) = {y | ∃x ∈ X : x χ y}`, in `O(|D|)`;
//! * [`axis_preimage`] — `χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}`, in `O(|D|)`;
//! * [`Document::axis_nodes`] — the nodes reachable from a *single* node in
//!   axis order `<doc,χ` (forward document order for forward axes, reverse
//!   for `ancestor(-or-self)`, `preceding(-sibling)` and `parent`), which is
//!   what positional predicates (`position()`, `last()`) are defined over.
//!
//! The `O(|D|)` bounds (shown in [11] and relied upon by every theorem in
//! the paper) are achieved with single sweeps over the pre-order arena:
//! e.g. `descendant(X)` propagates an "ancestor in X" flag down the parent
//! pointers, and `following(X)` is `{y | pre(y) ≥ min_{x∈X} subtree_end(x)}`.
//!
//! The paper's formal model has no attribute nodes; we support them as an
//! extension.  Per the XPath 1.0 data model, attribute nodes are *excluded*
//! from the results of all tree axes and reachable only via `attribute`.
//! The `id` pseudo-axis of Section 4 (`id(id(π))` rewritten to `π/id/id`)
//! is also implemented here so location-path machinery can treat it
//! uniformly.

use crate::document::{Document, NONE};
use crate::name::Name;
use crate::node::{NodeId, NodeKind};
use crate::nodeset::NodeSet;
use std::fmt;

/// The XPath axes of the paper (Section 2.1) plus the `attribute` extension
/// and the `id` pseudo-axis of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    SelfAxis,
    Child,
    Parent,
    Descendant,
    Ancestor,
    DescendantOrSelf,
    AncestorOrSelf,
    Following,
    Preceding,
    FollowingSibling,
    PrecedingSibling,
    /// Extension: the XPath 1.0 `attribute` axis (outside the paper's
    /// formal fragments).
    Attribute,
    /// The id-"axis" of Section 4: `x χ_id y` iff
    /// `y ∈ deref_ids(strval(x))`.
    Id,
}

impl Axis {
    /// All axes, in a stable order (useful for exhaustive tests).
    pub const ALL: [Axis; 13] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Parent,
        Axis::Descendant,
        Axis::Ancestor,
        Axis::DescendantOrSelf,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::Attribute,
        Axis::Id,
    ];

    /// Whether `<doc,χ` is *reverse* document order for this axis
    /// (Section 2.1: ancestor, ancestor-or-self, parent, preceding,
    /// preceding-sibling).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The axis whose relation is the inverse of this one
    /// (`x χ y ⇔ y χ⁻¹ x`), where one exists as a plain axis.
    pub fn inverse(self) -> Option<Axis> {
        Some(match self {
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::Attribute | Axis::Id => return None,
        })
    }

    /// The unabbreviated XPath spelling of the axis.
    pub fn as_str(self) -> &'static str {
        match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::Ancestor => "ancestor",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
            Axis::Id => "id",
        }
    }

    /// Parses an axis name.
    pub fn from_str_opt(s: &str) -> Option<Axis> {
        Some(match s {
            "self" => Axis::SelfAxis,
            "child" => Axis::Child,
            "parent" => Axis::Parent,
            "descendant" => Axis::Descendant,
            "ancestor" => Axis::Ancestor,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "attribute" => Axis::Attribute,
            "id" => Axis::Id,
            _ => return None,
        })
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node test `t`: the paper's `T : (Σ ∪ {*}) → 2^dom` extended with the
/// XPath 1.0 kind tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `*` — any node of the axis's *principal type* (element for every
    /// tree axis, attribute for the attribute axis).
    Wildcard,
    /// A name test — principal-type node with this label.
    Name(Box<str>),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / `processing-instruction('target')`
    Pi(Option<Box<str>>),
    /// `node()` — any node.
    AnyNode,
}

impl NodeTest {
    /// Convenience constructor for a name test.
    pub fn name(s: &str) -> NodeTest {
        NodeTest::Name(s.into())
    }

    /// Resolves the test against a document, turning string comparisons
    /// into integer comparisons for the per-node hot path.
    pub fn resolve(&self, doc: &Document) -> ResolvedTest {
        match self {
            NodeTest::Wildcard => ResolvedTest::Wildcard,
            NodeTest::Name(s) => match doc.find_name(s) {
                Some(n) => ResolvedTest::Name(n),
                None => ResolvedTest::NeverMatches,
            },
            NodeTest::Text => ResolvedTest::Text,
            NodeTest::Comment => ResolvedTest::Comment,
            NodeTest::Pi(None) => ResolvedTest::PiAny,
            NodeTest::Pi(Some(t)) => match doc.find_name(t) {
                Some(n) => ResolvedTest::Pi(n),
                None => ResolvedTest::NeverMatches,
            },
            NodeTest::AnyNode => ResolvedTest::AnyNode,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Name(s) => f.write_str(s),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Comment => f.write_str("comment()"),
            NodeTest::Pi(None) => f.write_str("processing-instruction()"),
            NodeTest::Pi(Some(t)) => write!(f, "processing-instruction('{t}')"),
            NodeTest::AnyNode => f.write_str("node()"),
        }
    }
}

/// A [`NodeTest`] resolved against a specific document (name lookups done).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedTest {
    Wildcard,
    Name(Name),
    Text,
    Comment,
    PiAny,
    Pi(Name),
    AnyNode,
    /// A name test whose name does not occur in the document at all.
    NeverMatches,
}

impl ResolvedTest {
    /// Whether node `n` passes this test when reached via `axis`.
    #[inline]
    pub fn matches(self, doc: &Document, axis: Axis, n: NodeId) -> bool {
        let kind = doc.kind(n);
        match self {
            ResolvedTest::AnyNode => true,
            ResolvedTest::NeverMatches => false,
            ResolvedTest::Wildcard => match axis {
                Axis::Attribute => kind.is_attribute(),
                _ => kind.is_element(),
            },
            ResolvedTest::Name(nm) => match axis {
                Axis::Attribute => matches!(kind, NodeKind::Attribute(k) if k == nm),
                _ => matches!(kind, NodeKind::Element(k) if k == nm),
            },
            ResolvedTest::Text => kind.is_text(),
            ResolvedTest::Comment => kind == NodeKind::Comment,
            ResolvedTest::PiAny => matches!(kind, NodeKind::Pi(_)),
            ResolvedTest::Pi(nm) => matches!(kind, NodeKind::Pi(k) if k == nm),
        }
    }
}

/// `χ(X)` filtered by a node test, in `O(|D|)` (Definition 1; the filter
/// does not change the bound).  The result is in document order.
pub fn axis_image(doc: &Document, axis: Axis, x: &NodeSet, test: &NodeTest) -> NodeSet {
    let t = test.resolve(doc);
    let n = doc.len();
    let keep = |node: NodeId| t.matches(doc, axis, node);
    match axis {
        Axis::SelfAxis => NodeSet::from_sorted_vec(x.iter().filter(|&m| keep(m)).collect()),
        Axis::Child => {
            let marked = mark(n, x);
            collect(doc, |y| {
                let p = doc.parent[y.index()];
                p != NONE && marked[p as usize] && !doc.kind(y).is_attribute() && keep(y)
            })
        }
        Axis::Parent => {
            let mut flag = vec![false; n];
            for m in x.iter() {
                let p = doc.parent[m.index()];
                if p != NONE {
                    flag[p as usize] = true;
                }
            }
            collect(doc, |y| flag[y.index()] && keep(y))
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            let marked = mark(n, x);
            // flag[i]: some proper ancestor of i is in X.  Parents precede
            // children in pre-order, so a single forward sweep suffices.
            let mut flag = vec![false; n];
            for i in 1..n {
                let p = doc.parent[i] as usize;
                flag[i] = marked[p] || flag[p];
            }
            let or_self = axis == Axis::DescendantOrSelf;
            collect(doc, |y| {
                let i = y.index();
                // Attributes never appear as *descendants*, but an
                // attribute member of X is its own descendant-or-self.
                ((flag[i] && !doc.kind(y).is_attribute()) || (or_self && marked[i])) && keep(y)
            })
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let marked = mark(n, x);
            // flag[i]: some proper descendant of i is in X.  Children follow
            // parents in pre-order, so a single backward sweep suffices.
            let mut flag = vec![false; n];
            for i in (1..n).rev() {
                let p = doc.parent[i] as usize;
                if marked[i] || flag[i] {
                    flag[p] = true;
                }
            }
            let or_self = axis == Axis::AncestorOrSelf;
            collect(doc, |y| {
                let i = y.index();
                (flag[i] || (or_self && marked[i])) && keep(y)
            })
        }
        Axis::Following => {
            // y ∈ following(X)  ⇔  pre(y) ≥ min_{x∈X} subtree_end(x).
            let Some(m) = x.iter().map(|v| doc.subtree_end(v)).min() else {
                return NodeSet::new();
            };
            NodeSet::from_sorted_vec(
                (m..n)
                    .map(NodeId::from_index)
                    .filter(|&y| !doc.kind(y).is_attribute() && keep(y))
                    .collect(),
            )
        }
        Axis::Preceding => {
            // y ∈ preceding(X)  ⇔  subtree_end(y) ≤ max_{x∈X} pre(x).
            let Some(m) = x.iter().map(|v| v.index()).max() else {
                return NodeSet::new();
            };
            collect(doc, |y| {
                doc.subtree_end(y) <= m && !doc.kind(y).is_attribute() && keep(y)
            })
        }
        Axis::FollowingSibling => {
            let marked = mark(n, x);
            // seen[p]: a marked child of p has already occurred in the
            // pre-order sweep (siblings occur in document order).
            let mut seen = vec![false; n];
            let mut out = Vec::new();
            for (i, &m) in marked.iter().enumerate().skip(1) {
                let y = NodeId::from_index(i);
                if doc.kind(y).is_attribute() {
                    continue;
                }
                let p = doc.parent[i] as usize;
                if seen[p] && keep(y) {
                    out.push(y);
                }
                if m {
                    seen[p] = true;
                }
            }
            NodeSet::from_sorted_vec(out)
        }
        Axis::PrecedingSibling => {
            let marked = mark(n, x);
            let mut seen = vec![false; n];
            let mut out = Vec::new();
            for i in (1..n).rev() {
                let y = NodeId::from_index(i);
                if doc.kind(y).is_attribute() {
                    continue;
                }
                let p = doc.parent[i] as usize;
                if seen[p] && keep(y) {
                    out.push(y);
                }
                if marked[i] {
                    seen[p] = true;
                }
            }
            out.reverse();
            NodeSet::from_sorted_vec(out)
        }
        Axis::Attribute => {
            let marked = mark(n, x);
            collect(doc, |y| {
                let p = doc.parent[y.index()];
                doc.kind(y).is_attribute() && p != NONE && marked[p as usize] && keep(y)
            })
        }
        Axis::Id => {
            // Tokens of text content reachable from X (descendant-or-self
            // for element/root members; own content for the rest),
            // dereferenced through the id index.  O(|D| + text).
            let marked = mark(n, x);
            let mut under = vec![false; n];
            for i in 0..n {
                let p = doc.parent[i];
                let from_parent = p != NONE && {
                    let pk = doc.kind(NodeId(p));
                    (under[p as usize] || marked[p as usize])
                        && matches!(pk, NodeKind::Root | NodeKind::Element(_))
                };
                under[i] = from_parent;
            }
            let mut out = Vec::new();
            for i in 0..n {
                let y = NodeId::from_index(i);
                let content_counts = match doc.kind(y) {
                    NodeKind::Text => under[i] || marked[i],
                    NodeKind::Attribute(_) | NodeKind::Comment | NodeKind::Pi(_) => marked[i],
                    _ => false,
                };
                if content_counts {
                    out.extend(doc.deref_ids(doc.content(y)).iter());
                }
            }
            out.retain(|&m| keep(m));
            NodeSet::from_unsorted(out)
        }
    }
}

/// `χ⁻¹(Y) = {x ∈ dom | χ({x}) ∩ Y ≠ ∅}` (Definition 1), in `O(|D|)`.
///
/// For the tree axes this is the image under the mirror axis; `attribute`
/// and `id` are handled directly.
pub fn axis_preimage(doc: &Document, axis: Axis, y: &NodeSet) -> NodeSet {
    match axis {
        Axis::Attribute => {
            // x has an attribute in Y  ⇔  x is the parent of an attribute
            // node in Y.
            let parents: Vec<NodeId> = y
                .iter()
                .filter(|&a| doc.kind(a).is_attribute())
                .filter_map(|a| doc.parent(a))
                .collect();
            NodeSet::from_unsorted(parents)
        }
        Axis::Id => doc.id_preimage(y),
        _ => {
            let inv = axis.inverse().expect("tree axes have inverses");
            axis_image(doc, inv, y, &NodeTest::AnyNode)
        }
    }
}

#[inline]
fn mark(n: usize, x: &NodeSet) -> Vec<bool> {
    let mut m = vec![false; n];
    for v in x.iter() {
        m[v.index()] = true;
    }
    m
}

fn collect(doc: &Document, mut pred: impl FnMut(NodeId) -> bool) -> NodeSet {
    NodeSet::from_sorted_vec(
        (0..doc.len())
            .map(NodeId::from_index)
            .filter(|&y| pred(y))
            .collect(),
    )
}

impl Document {
    /// The nodes reachable from the single node `from` via `axis`,
    /// filtered by `test`, **in axis order** `<doc,χ` (Section 2.1):
    /// document order for forward axes, reverse document order for reverse
    /// axes.  This ordering is what `position()` and `last()` are defined
    /// over, so the evaluators build their candidate lists with it.
    pub fn axis_nodes(&self, axis: Axis, from: NodeId, test: &NodeTest) -> Vec<NodeId> {
        let t = test.resolve(self);
        let mut out = Vec::new();
        self.axis_nodes_into(axis, from, t, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Document::axis_nodes`].
    pub fn axis_nodes_into(
        &self,
        axis: Axis,
        from: NodeId,
        t: ResolvedTest,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let keep = |n: NodeId| t.matches(self, axis, n);
        match axis {
            Axis::SelfAxis => {
                if keep(from) {
                    out.push(from);
                }
            }
            Axis::Child => out.extend(self.children(from).filter(|&c| keep(c))),
            Axis::Parent => {
                if let Some(p) = self.parent(from) {
                    if keep(p) {
                        out.push(p);
                    }
                }
            }
            Axis::Descendant => {
                out.extend(self.descendants(from).filter(|&d| keep(d)));
            }
            Axis::DescendantOrSelf => {
                if keep(from) {
                    out.push(from);
                }
                out.extend(self.descendants(from).filter(|&d| keep(d)));
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                if axis == Axis::AncestorOrSelf && keep(from) {
                    out.push(from);
                }
                let mut cur = self.parent(from);
                while let Some(p) = cur {
                    if keep(p) {
                        out.push(p);
                    }
                    cur = self.parent(p);
                }
            }
            Axis::Following => {
                let start = self.subtree_end(from);
                out.extend(
                    (start..self.len())
                        .map(NodeId::from_index)
                        .filter(|&y| !self.kind(y).is_attribute() && keep(y)),
                );
            }
            Axis::Preceding => {
                // Reverse document order, skipping ancestors of `from`.
                for i in (0..from.index()).rev() {
                    let y = NodeId::from_index(i);
                    if self.subtree_end(y) <= from.index()
                        && !self.kind(y).is_attribute()
                        && keep(y)
                    {
                        out.push(y);
                    }
                }
            }
            Axis::FollowingSibling => {
                let mut cur = self.next_sibling(from);
                while let Some(s) = cur {
                    if keep(s) {
                        out.push(s);
                    }
                    cur = self.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = self.prev_sibling(from);
                while let Some(s) = cur {
                    if keep(s) {
                        out.push(s);
                    }
                    cur = self.prev_sibling(s);
                }
            }
            Axis::Attribute => out.extend(self.attributes(from).filter(|&a| keep(a))),
            Axis::Id => {
                let set = self.deref_ids(&self.string_value(from));
                out.extend(set.iter().filter(|&m| keep(m)));
            }
        }
    }

    /// Whether the pair `(x, y)` is in the axis relation `χ` — the
    /// membership test `x χ y` used by the predicate loops of MINCONTEXT.
    pub fn axis_relates(&self, axis: Axis, x: NodeId, y: NodeId) -> bool {
        match axis {
            Axis::SelfAxis => x == y,
            Axis::Child => self.parent(y) == Some(x) && !self.kind(y).is_attribute(),
            Axis::Parent => self.parent(x) == Some(y),
            Axis::Descendant => self.is_ancestor_of(x, y) && !self.kind(y).is_attribute(),
            Axis::Ancestor => self.is_ancestor_of(y, x),
            Axis::DescendantOrSelf => {
                x == y || (self.is_ancestor_of(x, y) && !self.kind(y).is_attribute())
            }
            Axis::AncestorOrSelf => x == y || self.is_ancestor_of(y, x),
            Axis::Following => y.index() >= self.subtree_end(x) && !self.kind(y).is_attribute(),
            Axis::Preceding => self.subtree_end(y) <= x.index() && !self.kind(y).is_attribute(),
            Axis::FollowingSibling => {
                self.parent(x) == self.parent(y)
                    && x < y
                    && !self.kind(y).is_attribute()
                    && !self.kind(x).is_attribute()
            }
            Axis::PrecedingSibling => {
                self.parent(x) == self.parent(y)
                    && y < x
                    && !self.kind(y).is_attribute()
                    && !self.kind(x).is_attribute()
            }
            Axis::Attribute => self.kind(y).is_attribute() && self.parent(y) == Some(x),
            Axis::Id => self.deref_ids(&self.string_value(x)).contains(y),
        }
    }
}

/// `idxχ(x, S)`: the 1-based index of `x` in `S` with respect to `<doc,χ`
/// (Section 2.1).  `S` must be sorted in document order.
pub fn idx_in_axis_order(axis: Axis, x: NodeId, s: &NodeSet) -> Option<usize> {
    let pos = s.position_of(x)?;
    Some(if axis.is_reverse() {
        s.len() - pos
    } else {
        pos + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Brute-force reference: enumerate all pairs via `axis_relates`.
    fn brute_image(doc: &Document, axis: Axis, x: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        for y in doc.all_nodes() {
            if x.iter().any(|m| doc.axis_relates(axis, m, y)) {
                out.push(y);
            }
        }
        NodeSet::from_sorted_vec(out)
    }

    fn brute_preimage(doc: &Document, axis: Axis, y: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        for x in doc.all_nodes() {
            if y.iter().any(|m| doc.axis_relates(axis, x, m)) {
                out.push(x);
            }
        }
        NodeSet::from_sorted_vec(out)
    }

    fn doc1() -> Document {
        parse("<a><b><c/><d/></b><e>text</e><f><g/></f></a>").unwrap()
    }

    fn all_elements(doc: &Document) -> NodeSet {
        doc.all_nodes()
            .filter(|&n| doc.kind(n).is_element())
            .collect()
    }

    #[test]
    fn image_matches_brute_force_on_all_axes() {
        let doc = doc1();
        let elems = all_elements(&doc);
        // Try every singleton and the full element set.
        for axis in Axis::ALL {
            if axis == Axis::Id {
                continue; // no ids in this doc; covered separately
            }
            for x in elems.iter() {
                let xs = NodeSet::singleton(x);
                let fast = axis_image(&doc, axis, &xs, &NodeTest::AnyNode);
                let slow = brute_image(&doc, axis, &xs);
                assert_eq!(fast, slow, "axis {axis} from {x}");
            }
            let fast = axis_image(&doc, axis, &elems, &NodeTest::AnyNode);
            let slow = brute_image(&doc, axis, &elems);
            assert_eq!(fast, slow, "axis {axis} from all elements");
        }
    }

    #[test]
    fn preimage_matches_brute_force_on_tree_axes() {
        let doc = doc1();
        let elems = all_elements(&doc);
        for axis in Axis::ALL {
            if matches!(axis, Axis::Id) {
                continue;
            }
            for y in elems.iter() {
                let ys = NodeSet::singleton(y);
                let fast = axis_preimage(&doc, axis, &ys);
                let slow = brute_preimage(&doc, axis, &ys);
                // The attribute-free document makes mirror-axis preimages
                // exact (see DESIGN.md for the attribute edge case).
                assert_eq!(fast, slow, "axis {axis} to {y}");
            }
        }
    }

    #[test]
    fn axis_nodes_ordering_forward_and_reverse() {
        let doc = doc1();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();

        // descendant: document order.
        let desc = doc.axis_nodes(Axis::Descendant, a, &NodeTest::Wildcard);
        let labels: Vec<_> = desc.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["b", "c", "d", "e", "f", "g"]);

        // ancestor: reverse document order (parent first).
        let anc = doc.axis_nodes(Axis::Ancestor, c, &NodeTest::AnyNode);
        assert_eq!(anc[0], b);
        assert_eq!(anc[1], a);
        assert_eq!(anc[2], doc.root());

        // preceding from <g>: reverse document order, no ancestors.
        let g = doc
            .descendants(a)
            .find(|&n| doc.label_str(n) == Some("g"))
            .unwrap();
        let prec = doc.axis_nodes(Axis::Preceding, g, &NodeTest::Wildcard);
        let labels: Vec<_> = prec.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["e", "d", "c", "b"]);
    }

    #[test]
    fn following_excludes_descendants_and_self() {
        let doc = doc1();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let foll = doc.axis_nodes(Axis::Following, b, &NodeTest::Wildcard);
        let labels: Vec<_> = foll.iter().map(|&n| doc.label_str(n).unwrap()).collect();
        assert_eq!(labels, vec!["e", "f", "g"]);
    }

    #[test]
    fn sibling_axes() {
        let doc = doc1();
        let a = doc.document_element();
        let kids: Vec<_> = doc.children(a).collect();
        let (b, e, f) = (kids[0], kids[1], kids[2]);
        let fs = doc.axis_nodes(Axis::FollowingSibling, b, &NodeTest::Wildcard);
        assert_eq!(fs, vec![e, f]);
        let ps = doc.axis_nodes(Axis::PrecedingSibling, f, &NodeTest::Wildcard);
        assert_eq!(ps, vec![e, b]); // reverse document order
    }

    #[test]
    fn wildcard_selects_elements_only() {
        let doc = parse("<a>t1<b/>t2</a>").unwrap();
        let a = doc.document_element();
        let star = doc.axis_nodes(Axis::Child, a, &NodeTest::Wildcard);
        assert_eq!(star.len(), 1);
        let any = doc.axis_nodes(Axis::Child, a, &NodeTest::AnyNode);
        assert_eq!(any.len(), 3);
        let text = doc.axis_nodes(Axis::Child, a, &NodeTest::Text);
        assert_eq!(text.len(), 2);
    }

    #[test]
    fn name_test_resolution() {
        let doc = doc1();
        let a = doc.document_element();
        let bs = doc.axis_nodes(Axis::Descendant, a, &NodeTest::name("b"));
        assert_eq!(bs.len(), 1);
        let none = doc.axis_nodes(Axis::Descendant, a, &NodeTest::name("zzz"));
        assert!(none.is_empty());
    }

    #[test]
    fn attribute_axis_and_preimage() {
        let doc = parse(r#"<a p="1"><b q="2" r="3"/></a>"#).unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let attrs_b = doc.axis_nodes(Axis::Attribute, b, &NodeTest::Wildcard);
        assert_eq!(attrs_b.len(), 2);
        let q_only = doc.axis_nodes(Axis::Attribute, b, &NodeTest::name("q"));
        assert_eq!(q_only.len(), 1);
        // Preimage: owner elements of the attribute nodes.
        let ys = NodeSet::from_unsorted(attrs_b.clone());
        let owners = axis_preimage(&doc, Axis::Attribute, &ys);
        assert_eq!(owners, NodeSet::singleton(b));
        // Attributes never appear on tree axes.
        let desc = doc.axis_nodes(Axis::Descendant, a, &NodeTest::AnyNode);
        assert!(desc.iter().all(|&n| !doc.kind(n).is_attribute()));
    }

    #[test]
    fn id_axis_image_and_preimage() {
        // b's text references id 22; c has id 22.
        let doc = parse(r#"<a id="10"><b id="11">22</b><c id="22">x</c></a>"#).unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.last_child(a).unwrap();
        let img = axis_image(&doc, Axis::Id, &NodeSet::singleton(b), &NodeTest::AnyNode);
        assert_eq!(img, NodeSet::singleton(c));
        let pre = axis_preimage(&doc, Axis::Id, &NodeSet::singleton(c));
        assert!(pre.contains(b));
        // Per-text-node tokenization (see DESIGN.md): the text node "22"
        // under b contributes the token to every ancestor's preimage.
        assert!(pre.contains(a));
    }

    #[test]
    fn idx_in_axis_order_forward_and_reverse() {
        let s = NodeSet::from_unsorted(vec![
            NodeId::from_index(2),
            NodeId::from_index(5),
            NodeId::from_index(9),
        ]);
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(2), &s),
            Some(1)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(9), &s),
            Some(3)
        );
        // Reverse axis: first in reverse doc order gets index 1.
        assert_eq!(
            idx_in_axis_order(Axis::Ancestor, NodeId::from_index(9), &s),
            Some(1)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Ancestor, NodeId::from_index(2), &s),
            Some(3)
        );
        assert_eq!(
            idx_in_axis_order(Axis::Child, NodeId::from_index(4), &s),
            None
        );
    }

    #[test]
    fn axis_inverse_round_trip() {
        for axis in Axis::ALL {
            if let Some(inv) = axis.inverse() {
                assert_eq!(inv.inverse(), Some(axis));
            }
        }
    }

    #[test]
    fn axis_parse_round_trip() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_str_opt(axis.as_str()), Some(axis));
        }
        assert_eq!(Axis::from_str_opt("sideways"), None);
    }
}

//! The pull-based XML tokenizer — the workspace's one and only XML lexer.
//!
//! [`Tokenizer`] turns XML text into a stream of [`XmlEvent`]s
//! (start/end-element with attributes, merged text runs, comments,
//! processing instructions), handling entity and character references,
//! CDATA sections, the XML declaration, DOCTYPE skipping, and the
//! [`ParseOptions`] filters.  Two consumers sit on top of it:
//!
//! * the DOM builder ([`parse`](crate::parse) /
//!   [`parse_reader`](crate::parser::parse_reader)) folds the events into a
//!   [`DocumentBuilder`](crate::DocumentBuilder), and
//! * the streaming evaluator (`minctx-stream`) runs its stack automaton
//!   directly over the events without materializing a document.
//!
//! Because both consume the *same* event stream under the same options,
//! the streamer can mirror the arena's pre-order node numbering exactly:
//! one `StartElement` is one element node followed by one node per
//! attribute, one `Text`/`Comment`/`Pi` event is one node.  Text runs are
//! merged exactly as the DOM parser merges them (CDATA joins the
//! surrounding character data; comments and PIs split runs even when the
//! options drop them).
//!
//! The input can be a borrowed `&str` (zero-copy names and bodies) or any
//! [`io::Read`] ([`Tokenizer::from_reader`]): reader mode keeps a sliding
//! window that is refilled on demand and compacted as events are
//! consumed, so tokenizing a multi-gigabyte feed holds memory proportional
//! to the largest single token, not the input.

use crate::error::{XmlError, XmlErrorKind};
use std::io::Read;

/// Options controlling document construction and event filtering.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Drop text nodes consisting entirely of XML whitespace.  This matches
    /// the paper's examples (Figure 2 is pretty-printed; its `dom` contains
    /// no whitespace nodes).  Default: `false`.
    pub strip_whitespace_text: bool,
    /// Drop comment nodes.  Default: `false`.
    pub keep_comments: bool,
    /// Drop processing-instruction nodes.  Default: `false`.
    pub keep_processing_instructions: bool,
    /// Attribute name supplying element ids for `id()` (DTDs, the standard
    /// source of ID-typed attributes, are not interpreted).  Default: `id`.
    pub id_attribute: String,
    /// Maximum element nesting depth.  Every open element costs a stack
    /// slot in the tokenizer *and* a state frame in every consumer (the
    /// DOM builder's ancestor chain, the streaming automaton's per-depth
    /// frames), so an adversarially deep document — `<a><a><a>…` — would
    /// otherwise grow memory without bound.  Opening an element below
    /// `max_element_depth` ancestors fails with a clean
    /// [`XmlErrorKind::TooDeep`](crate::XmlErrorKind) instead.
    /// Default: 1024 (far above any realistic document; raise it
    /// explicitly for trusted deep inputs).
    pub max_element_depth: usize,
}

/// Default for [`ParseOptions::max_element_depth`].
pub const DEFAULT_MAX_ELEMENT_DEPTH: usize = 1024;

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            strip_whitespace_text: false,
            keep_comments: true,
            keep_processing_instructions: true,
            id_attribute: "id".to_string(),
            max_element_depth: DEFAULT_MAX_ELEMENT_DEPTH,
        }
    }
}

impl ParseOptions {
    /// Options matching the paper's data model: whitespace-only text
    /// stripped, comments and PIs kept.
    pub fn paper_model() -> Self {
        ParseOptions {
            strip_whitespace_text: true,
            ..Default::default()
        }
    }
}

/// One lexical event of an XML document, in document order.
///
/// Borrowed data is valid until the next [`Tokenizer::next_event`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlEvent<'t> {
    /// An element opens.  Attribute values are fully decoded and
    /// whitespace-normalized; a self-closing element is followed
    /// immediately by its [`XmlEvent::EndElement`].
    StartElement {
        name: &'t str,
        attrs: &'t [(String, String)],
    },
    /// The most recently opened element closes.
    EndElement { name: &'t str },
    /// A maximal run of character data (entities decoded, CDATA merged);
    /// never empty, never whitespace-only when the options strip it.
    Text(&'t str),
    /// A comment inside the document element (prolog/epilog comments are
    /// skipped, matching the tree model which roots content at `/`).
    Comment(&'t str),
    /// A processing instruction inside the document element.
    Pi { target: &'t str, data: &'t str },
}

/// Reader-mode refill granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Reader-mode window compaction threshold: once this many bytes are
/// consumed they are dropped from the front of the window (line/column
/// bookkeeping is carried over).
const COMPACT_AT: usize = 64 * 1024;
/// Longest entity body the lexer accepts (`&#x10FFFF;` needs 9).
const MAX_ENTITY: usize = 32;

/// Where the tokenizer's bytes come from: a borrowed string (all data
/// present up front) or a reader with a sliding window.
enum Source<'a> {
    Str {
        input: &'a str,
        pos: usize,
    },
    Reader {
        rd: Box<dyn Read + 'a>,
        /// The current (decoded) window; `pos` indexes into it.
        buf: String,
        pos: usize,
        /// No more bytes will ever be appended to `buf`.
        eof: bool,
        /// Raw bytes read but not yet validated as UTF-8 (an incomplete
        /// trailing sequence, at most 3 bytes plus one unappended chunk).
        raw: Vec<u8>,
        /// Bytes dropped from the front of the window so far.
        drained: usize,
        /// Newlines inside the drained prefix.
        drained_lines: u32,
        /// Characters after the last newline of the drained prefix.
        drained_cols: u32,
    },
}

impl Source<'_> {
    fn window(&self) -> &str {
        match self {
            Source::Str { input, .. } => input,
            Source::Reader { buf, .. } => buf,
        }
    }

    fn pos(&self) -> usize {
        match self {
            Source::Str { pos, .. } | Source::Reader { pos, .. } => *pos,
        }
    }

    fn advance(&mut self, n: usize) {
        match self {
            Source::Str { pos, .. } | Source::Reader { pos, .. } => *pos += n,
        }
    }

    /// Appends more data to the window.  Returns `false` once the input is
    /// exhausted (repeated calls after EOF stay `false`).
    fn refill(&mut self) -> Result<bool, XmlError> {
        // Read/decode with the fields borrowed; errors carry only a kind
        // here and are positioned (line/column at the end of the decoded
        // window) below, where `self` is borrowable again.
        let r: Result<bool, XmlErrorKind> = (|| {
            let (rd, buf, eof, raw) = match self {
                Source::Str { .. } => return Ok(false),
                Source::Reader {
                    rd, buf, eof, raw, ..
                } => {
                    if *eof {
                        return Ok(false);
                    }
                    (rd, buf, eof, raw)
                }
            };
            let mut chunk = [0u8; READ_CHUNK];
            let n = rd
                .read(&mut chunk)
                .map_err(|e| XmlErrorKind::Malformed(format!("read error: {e}")))?;
            if n == 0 {
                *eof = true;
                if !raw.is_empty() {
                    return Err(XmlErrorKind::Malformed(
                        "invalid UTF-8 in input".to_string(),
                    ));
                }
                return Ok(false);
            }
            raw.extend_from_slice(&chunk[..n]);
            match std::str::from_utf8(raw) {
                Ok(s) => {
                    buf.push_str(s);
                    raw.clear();
                }
                Err(e) => {
                    if e.error_len().is_some() {
                        return Err(XmlErrorKind::Malformed(
                            "invalid UTF-8 in input".to_string(),
                        ));
                    }
                    let valid = e.valid_up_to();
                    let s = std::str::from_utf8(&raw[..valid]).expect("validated prefix");
                    buf.push_str(s);
                    raw.drain(..valid);
                }
            }
            Ok(true)
        })();
        r.map_err(|kind| {
            let end = self.window().len();
            self.err_at(kind, end)
        })
    }

    /// Makes at least `n` bytes available past the cursor, or reaches EOF.
    fn ensure(&mut self, n: usize) -> Result<(), XmlError> {
        while self.window().len() - self.pos() < n {
            if !self.refill()? {
                break;
            }
        }
        Ok(())
    }

    /// Drops the consumed window prefix (reader mode), carrying line and
    /// column counts so error positions stay exact.
    fn compact(&mut self) {
        if let Source::Reader {
            buf,
            pos,
            drained,
            drained_lines,
            drained_cols,
            ..
        } = self
        {
            if *pos >= COMPACT_AT {
                for c in buf[..*pos].chars() {
                    if c == '\n' {
                        *drained_lines += 1;
                        *drained_cols = 0;
                    } else {
                        *drained_cols += 1;
                    }
                }
                *drained += *pos;
                buf.drain(..*pos);
                *pos = 0;
            }
        }
    }

    fn err_here(&self, kind: XmlErrorKind) -> XmlError {
        self.err_at(kind, self.pos())
    }

    /// Builds an error positioned at window-local offset `local`.
    fn err_at(&self, kind: XmlErrorKind, local: usize) -> XmlError {
        let (base_off, mut line, mut col) = match self {
            Source::Str { .. } => (0, 1u32, 1u32),
            Source::Reader {
                drained,
                drained_lines,
                drained_cols,
                ..
            } => (*drained, 1 + drained_lines, 1 + drained_cols),
        };
        let prefix = &self.window()[..local.min(self.window().len())];
        for c in prefix.chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        XmlError::new(kind, base_off + local, line, col)
    }

    // ---- lexing primitives -------------------------------------------

    fn peek_byte(&mut self) -> Result<Option<u8>, XmlError> {
        self.ensure(1)?;
        Ok(self.window().as_bytes().get(self.pos()).copied())
    }

    fn peek_char(&mut self) -> Result<Option<char>, XmlError> {
        self.ensure(4)?;
        Ok(self.window()[self.pos()..].chars().next())
    }

    fn at_end(&mut self) -> Result<bool, XmlError> {
        Ok(self.peek_byte()?.is_none())
    }

    fn starts_with(&mut self, s: &str) -> Result<bool, XmlError> {
        self.ensure(s.len())?;
        Ok(self.window()[self.pos()..].starts_with(s))
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s)? {
            self.advance(s.len());
            Ok(())
        } else {
            match self.peek_char()? {
                Some(c) => Err(self.err_here(XmlErrorKind::UnexpectedChar(c))),
                None => Err(self.err_here(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_whitespace(&mut self) -> Result<(), XmlError> {
        while matches!(self.peek_byte()?, Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.advance(1);
        }
        Ok(())
    }

    /// Window-local offset (relative to the cursor) of `pat`, refilling as
    /// needed; `None` only at EOF.  `pat` must be ASCII.
    fn find(&mut self, pat: &str) -> Result<Option<usize>, XmlError> {
        let needle = pat.as_bytes();
        let mut from = 0usize;
        loop {
            let hay = &self.window().as_bytes()[self.pos()..];
            if hay.len() >= needle.len() {
                if let Some(i) = hay[from..].windows(needle.len()).position(|w| w == needle) {
                    return Ok(Some(from + i));
                }
                // Re-scan only the tail that could still complete a match.
                from = hay.len() - (needle.len() - 1);
            }
            if !self.refill()? {
                return Ok(None);
            }
        }
    }

    /// Lexes an XML name; returns its window-local byte range (valid until
    /// the next consuming call — refills only append).
    fn lex_name(&mut self) -> Result<(usize, usize), XmlError> {
        let start = self.pos();
        match self.peek_char()? {
            Some(c) if is_name_start(c) => self.advance(c.len_utf8()),
            Some(c) => return Err(self.err_here(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(self.err_here(XmlErrorKind::UnexpectedEof)),
        }
        loop {
            match self.peek_char()? {
                Some(c) if is_name_char(c) => self.advance(c.len_utf8()),
                _ => break,
            }
        }
        Ok((start, self.pos()))
    }

    /// Lexes `&...;` (named entity or character reference), appending the
    /// replacement text to `out`.
    fn lex_reference(&mut self, out: &mut String) -> Result<(), XmlError> {
        let start = self.pos();
        self.expect("&")?;
        self.ensure(MAX_ENTITY + 2)?;
        let w = &self.window()[self.pos()..];
        let semi = w
            .as_bytes()
            .iter()
            .take(MAX_ENTITY + 2)
            .position(|&b| b == b';');
        let Some(semi) = semi else {
            // No terminator in sight: report the would-be body (or the bare
            // ampersand when nothing readable follows).
            let body: String = w.chars().take(MAX_ENTITY + 1).collect();
            let shown = if body.is_empty() {
                "&".to_string()
            } else {
                body
            };
            return Err(self.err_at(XmlErrorKind::BadEntity(shown), start));
        };
        let body = &w[..semi];
        if body.len() > MAX_ENTITY {
            return Err(self.err_at(XmlErrorKind::BadEntity(body.to_string()), start));
        }
        if let Some(num) = body.strip_prefix('#') {
            let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                u32::from_str_radix(hex, 16)
            } else {
                num.parse::<u32>()
            };
            let code = code
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| self.err_at(XmlErrorKind::BadEntity(body.to_string()), start))?;
            out.push(code);
        } else {
            let rep = match body {
                "lt" => '<',
                "gt" => '>',
                "amp" => '&',
                "apos" => '\'',
                "quot" => '"',
                _ => return Err(self.err_at(XmlErrorKind::BadEntity(body.to_string()), start)),
            };
            out.push(rep);
        }
        self.advance(semi + 1);
        Ok(())
    }

    /// Lexes a quoted attribute value into `out`, decoding references and
    /// normalizing whitespace characters to spaces.
    fn lex_attr_value(&mut self, out: &mut String) -> Result<(), XmlError> {
        let quote = match self.peek_byte()? {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => {
                let c = self.peek_char()?.expect("byte present");
                return Err(self.err_here(XmlErrorKind::UnexpectedChar(c)));
            }
            None => return Err(self.err_here(XmlErrorKind::UnexpectedEof)),
        };
        self.advance(1);
        loop {
            match self.peek_byte()? {
                Some(q) if q == quote => {
                    self.advance(1);
                    return Ok(());
                }
                Some(b'<') => {
                    return Err(self.err_here(XmlErrorKind::Malformed(
                        "'<' in attribute value".to_string(),
                    )))
                }
                Some(b'&') => self.lex_reference(out)?,
                Some(_) => {
                    let c = self.peek_char()?.expect("byte present");
                    out.push(if matches!(c, '\t' | '\n' | '\r') {
                        ' '
                    } else {
                        c
                    });
                    self.advance(c.len_utf8());
                }
                None => return Err(self.err_here(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    /// Skips `<!DOCTYPE ... >` including a bracketed internal subset and
    /// quoted literals.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.advance("<!DOCTYPE".len());
        let mut depth = 0usize;
        loop {
            match self.peek_byte()? {
                Some(b'[') => {
                    depth += 1;
                    self.advance(1);
                }
                Some(b']') => {
                    depth = depth.saturating_sub(1);
                    self.advance(1);
                }
                Some(q @ (b'"' | b'\'')) => {
                    self.advance(1);
                    loop {
                        match self.peek_byte()? {
                            Some(c) => {
                                self.advance(1);
                                if c == q {
                                    break;
                                }
                            }
                            None => return Err(self.err_here(XmlErrorKind::UnexpectedEof)),
                        }
                    }
                }
                Some(b'>') if depth == 0 => {
                    self.advance(1);
                    return Ok(());
                }
                Some(_) => self.advance(1),
                None => return Err(self.err_here(XmlErrorKind::UnexpectedEof)),
            }
        }
    }
}

/// The `xml/tokenizers_created` counter in the process-wide metrics
/// registry, resolved once.
fn tokenizers_counter() -> &'static minctx_obs::Counter {
    static C: std::sync::OnceLock<minctx_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("xml/tokenizers_created"))
}

/// How many [`Tokenizer`]s this process has constructed (monotone).
///
/// Diagnostics hook, the lexing counterpart of
/// [`documents_built`](crate::builder::documents_built): every path that
/// reads XML *text* — the DOM parser and the streamer alike — goes
/// through exactly one `Tokenizer`, so the index smoke asserts this
/// counter does not move across `open_snapshot` (a reopened snapshot is
/// adopted column-for-column, never re-lexed).
///
/// Thin shim over the `xml/tokenizers_created` counter in
/// [`minctx_obs::global`] (where exposition renderers pick it up).
pub fn tokenizers_created() -> u64 {
    tokenizers_counter().get()
}

/// The pull tokenizer.  Obtain events with [`Tokenizer::next_event`] until
/// it returns `Ok(None)` (clean end of document) or an error.
pub struct Tokenizer<'a> {
    src: Source<'a>,
    opts: ParseOptions,
    /// Open-element name stack; only the first `open_live` slots are
    /// active (slots are reused to avoid per-element allocation).
    open: Vec<String>,
    open_live: usize,
    /// Current element / close-tag / PI-target name.
    name_buf: String,
    /// Attribute slots of the current start tag; first `attrs_live` valid.
    attrs: Vec<(String, String)>,
    attrs_live: usize,
    /// The text run being accumulated (entities decoded, CDATA merged).
    text_buf: String,
    /// A self-closing element's `EndElement` is due before reading on.
    pending_end: bool,
    /// The optional XML declaration has been consumed.
    started: bool,
    /// A complete top-level element has been seen.
    seen_root: bool,
}

impl<'a> Tokenizer<'a> {
    /// Tokenizes a borrowed string with default options.
    pub fn new(input: &'a str) -> Tokenizer<'a> {
        Tokenizer::with_options(input, ParseOptions::default())
    }

    /// Tokenizes a borrowed string.
    pub fn with_options(input: &'a str, opts: ParseOptions) -> Tokenizer<'a> {
        Tokenizer::build(Source::Str { input, pos: 0 }, opts)
    }

    /// Tokenizes from a reader through a sliding window; memory stays
    /// proportional to the largest single token, not the input.
    pub fn from_reader(rd: impl Read + 'a, opts: ParseOptions) -> Tokenizer<'a> {
        Tokenizer::build(
            Source::Reader {
                rd: Box::new(rd),
                buf: String::new(),
                pos: 0,
                eof: false,
                raw: Vec::new(),
                drained: 0,
                drained_lines: 0,
                drained_cols: 0,
            },
            opts,
        )
    }

    fn build(src: Source<'a>, opts: ParseOptions) -> Tokenizer<'a> {
        tokenizers_counter().inc();
        Tokenizer {
            src,
            opts,
            open: Vec::new(),
            open_live: 0,
            name_buf: String::new(),
            attrs: Vec::new(),
            attrs_live: 0,
            text_buf: String::new(),
            pending_end: false,
            started: false,
            seen_root: false,
        }
    }

    /// The options this tokenizer filters events with.
    pub fn options(&self) -> &ParseOptions {
        &self.opts
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.open_live + usize::from(self.pending_end)
    }

    /// The next event, or `Ok(None)` at the clean end of the document.
    ///
    /// Borrowed event data is valid until the next call.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'_>>, XmlError> {
        if self.pending_end {
            self.pending_end = false;
            if self.open_live == 0 {
                self.seen_root = true;
            }
            return Ok(Some(XmlEvent::EndElement {
                name: &self.name_buf,
            }));
        }
        self.text_buf.clear();
        if !self.started {
            self.started = true;
            if self.src.starts_with("<?xml")? {
                match self.src.find("?>")? {
                    Some(i) => self.src.advance(i + 2),
                    None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
                }
            }
        }
        loop {
            self.src.compact();
            if self.open_live == 0 {
                // Prolog or epilog: misc items only; content is rejected.
                self.src.skip_whitespace()?;
                if self.src.at_end()? {
                    return if self.seen_root {
                        Ok(None)
                    } else {
                        Err(self.src.err_here(XmlErrorKind::NoRootElement))
                    };
                }
                if self.src.starts_with("<!--")? {
                    self.consume_comment()?; // always dropped outside the root
                    continue;
                }
                if self.src.starts_with("<!DOCTYPE")? {
                    self.src.skip_doctype()?;
                    continue;
                }
                if self.src.starts_with("<?")? {
                    self.consume_pi()?; // always dropped outside the root
                    continue;
                }
                if self.src.peek_byte()? == Some(b'<') {
                    if self.seen_root {
                        return Err(self.src.err_here(XmlErrorKind::TrailingContent));
                    }
                    return self.start_element().map(Some);
                }
                return Err(self.src.err_here(XmlErrorKind::TrailingContent));
            }
            // Element content.
            match self.src.peek_byte()? {
                None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
                Some(b'<') => {
                    if self.src.starts_with("</")? {
                        if self.text_ready() {
                            return Ok(Some(XmlEvent::Text(&self.text_buf)));
                        }
                        return self.end_element().map(Some);
                    } else if self.src.starts_with("<!--")? {
                        // Comments split text runs even when dropped.
                        if self.text_ready() {
                            return Ok(Some(XmlEvent::Text(&self.text_buf)));
                        }
                        if let Some((a, b)) = self.consume_comment()? {
                            return Ok(Some(XmlEvent::Comment(&self.src.window()[a..b])));
                        }
                        continue;
                    } else if self.src.starts_with("<![CDATA[")? {
                        self.consume_cdata()?; // merges into the text run
                        continue;
                    } else if self.src.starts_with("<?")? {
                        if self.text_ready() {
                            return Ok(Some(XmlEvent::Text(&self.text_buf)));
                        }
                        if let Some((a, b)) = self.consume_pi()? {
                            let data = self.src.window()[a..b].trim_start();
                            return Ok(Some(XmlEvent::Pi {
                                target: &self.name_buf,
                                data,
                            }));
                        }
                        continue;
                    } else {
                        if self.text_ready() {
                            return Ok(Some(XmlEvent::Text(&self.text_buf)));
                        }
                        return self.start_element().map(Some);
                    }
                }
                Some(b'&') => self.src.lex_reference(&mut self.text_buf)?,
                Some(_) => self.consume_text_chunk()?,
            }
        }
    }

    /// Whether the accumulated text run should be emitted (clears runs the
    /// whitespace-stripping option discards).
    fn text_ready(&mut self) -> bool {
        if self.text_buf.is_empty() {
            return false;
        }
        let keep = !self.opts.strip_whitespace_text
            || self.text_buf.chars().any(|c| !c.is_ascii_whitespace());
        if !keep {
            self.text_buf.clear();
        }
        keep
    }

    /// Consumes a `<tag attr="v"…>` or `<tag…/>` start tag.
    fn start_element(&mut self) -> Result<XmlEvent<'_>, XmlError> {
        let at = self.src.pos();
        self.src.advance(1); // '<'
        if self.open_live >= self.opts.max_element_depth {
            return Err(self.src.err_at(
                XmlErrorKind::TooDeep {
                    limit: self.opts.max_element_depth,
                },
                at,
            ));
        }
        let (a, b) = self.src.lex_name()?;
        self.name_buf.clear();
        self.name_buf.push_str(&self.src.window()[a..b]);
        self.attrs_live = 0;
        loop {
            self.src.skip_whitespace()?;
            match self.src.peek_byte()? {
                Some(b'>') => {
                    self.src.advance(1);
                    if self.open.len() == self.open_live {
                        self.open.push(String::new());
                    }
                    let slot = &mut self.open[self.open_live];
                    slot.clear();
                    slot.push_str(&self.name_buf);
                    self.open_live += 1;
                    break;
                }
                Some(b'/') => {
                    self.src.expect("/>")?;
                    self.pending_end = true;
                    break;
                }
                Some(_) => {
                    let at = self.src.pos();
                    let (na, nb) = self.src.lex_name()?;
                    {
                        let aname = &self.src.window()[na..nb];
                        if self.attrs[..self.attrs_live]
                            .iter()
                            .any(|(n, _)| n == aname)
                        {
                            return Err(self
                                .src
                                .err_at(XmlErrorKind::DuplicateAttribute(aname.to_string()), at));
                        }
                        if self.attrs.len() == self.attrs_live {
                            self.attrs.push((String::new(), String::new()));
                        }
                        let slot = &mut self.attrs[self.attrs_live];
                        slot.0.clear();
                        slot.0.push_str(aname);
                        slot.1.clear();
                    }
                    self.src.skip_whitespace()?;
                    self.src.expect("=")?;
                    self.src.skip_whitespace()?;
                    let mut value = std::mem::take(&mut self.attrs[self.attrs_live].1);
                    self.src.lex_attr_value(&mut value)?;
                    self.attrs[self.attrs_live].1 = value;
                    self.attrs_live += 1;
                }
                None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
            }
        }
        Ok(XmlEvent::StartElement {
            name: &self.name_buf,
            attrs: &self.attrs[..self.attrs_live],
        })
    }

    /// Consumes a `</tag>` close tag, validating nesting.
    fn end_element(&mut self) -> Result<XmlEvent<'_>, XmlError> {
        self.src.advance(2); // "</"
        let at = self.src.pos();
        let (a, b) = self.src.lex_name()?;
        self.name_buf.clear();
        self.name_buf.push_str(&self.src.window()[a..b]);
        self.src.skip_whitespace()?;
        self.src.expect(">")?;
        if self.open_live == 0 {
            return Err(self
                .src
                .err_at(XmlErrorKind::UnmatchedClose(self.name_buf.clone()), at));
        }
        let open = &self.open[self.open_live - 1];
        if *open != self.name_buf {
            return Err(self.src.err_at(
                XmlErrorKind::MismatchedTag {
                    open: open.clone(),
                    close: self.name_buf.clone(),
                },
                at,
            ));
        }
        self.open_live -= 1;
        if self.open_live == 0 {
            self.seen_root = true;
        }
        Ok(XmlEvent::EndElement {
            name: &self.name_buf,
        })
    }

    /// Consumes a comment; returns the body's window range when the
    /// options keep comments (and we are inside the root element).
    fn consume_comment(&mut self) -> Result<Option<(usize, usize)>, XmlError> {
        self.src.advance(4); // "<!--"
        let end = match self.src.find("-->")? {
            Some(i) => i,
            None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
        };
        let start = self.src.pos();
        if self.src.window()[start..start + end].contains("--") {
            return Err(self
                .src
                .err_here(XmlErrorKind::Malformed("'--' in comment".to_string())));
        }
        self.src.advance(end + 3);
        let keep = self.opts.keep_comments && self.open_live > 0;
        Ok(keep.then_some((start, start + end)))
    }

    /// Consumes a CDATA section into the current text run.
    fn consume_cdata(&mut self) -> Result<(), XmlError> {
        self.src.advance("<![CDATA[".len());
        let end = match self.src.find("]]>")? {
            Some(i) => i,
            None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
        };
        let start = self.src.pos();
        self.text_buf
            .push_str(&self.src.window()[start..start + end]);
        self.src.advance(end + 3);
        Ok(())
    }

    /// Consumes a processing instruction; returns the data's window range
    /// when the options keep PIs (and we are inside the root element).
    /// The target is left in `name_buf`.
    fn consume_pi(&mut self) -> Result<Option<(usize, usize)>, XmlError> {
        self.src.advance(2); // "<?"
        let (a, b) = self.src.lex_name()?;
        self.name_buf.clear();
        self.name_buf.push_str(&self.src.window()[a..b]);
        if self.name_buf.eq_ignore_ascii_case("xml") {
            return Err(self.src.err_here(XmlErrorKind::Malformed(
                "'<?xml' only allowed at document start".to_string(),
            )));
        }
        let end = match self.src.find("?>")? {
            Some(i) => i,
            None => return Err(self.src.err_here(XmlErrorKind::UnexpectedEof)),
        };
        let start = self.src.pos();
        self.src.advance(end + 2);
        let keep = self.opts.keep_processing_instructions && self.open_live > 0;
        Ok(keep.then_some((start, start + end)))
    }

    /// Consumes a run of plain character data up to the next markup or
    /// reference, rejecting a bare `]]>`.
    fn consume_text_chunk(&mut self) -> Result<(), XmlError> {
        let pos = self.src.pos();
        let w = &self.src.window()[pos..];
        let stop = w.as_bytes().iter().position(|&b| b == b'<' || b == b'&');
        // How much character data to take this round: up to the stop, or —
        // with a reader that may still produce bytes — all but a 2-byte
        // guard band so a `]]>` or stop split across refills is still seen
        // whole on the next round.
        let all_present = stop.is_some()
            || matches!(&self.src, Source::Str { .. })
            || matches!(&self.src, Source::Reader { eof, .. } if *eof);
        let take = match stop {
            Some(i) => i,
            None if all_present => w.len(),
            None => {
                let mut t = w.len().saturating_sub(2);
                while t > 0 && !w.is_char_boundary(t) {
                    t -= 1;
                }
                t
            }
        };
        // Scan for a bare `]]>` over everything known to be character
        // data — up to the stop when there is one, else the whole window
        // (NOT just the guard-trimmed `take` prefix: a `]]>` ending
        // exactly at the window edge would otherwise lose its first `]`
        // to this round's consumption and never re-form).
        let scannable = &w[..stop.unwrap_or(w.len())];
        if let Some(i) = scannable.find("]]>") {
            return Err(self.src.err_at(
                XmlErrorKind::Malformed("']]>' in character data".to_string()),
                pos + i,
            ));
        }
        if take == 0 {
            // Window too small to make progress: grow it.
            self.src.refill()?;
        } else {
            self.text_buf.push_str(&w[..take]);
            self.src.advance(take);
        }
        Ok(())
    }
}

pub(crate) fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

pub(crate) fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.' | '\u{b7}')
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects `(kind, detail)` descriptions of every event.
    fn trace(input: &str) -> Result<Vec<String>, XmlError> {
        trace_opts(input, ParseOptions::default())
    }

    fn trace_opts(input: &str, opts: ParseOptions) -> Result<Vec<String>, XmlError> {
        let mut tok = Tokenizer::with_options(input, opts);
        let mut out = Vec::new();
        while let Some(ev) = tok.next_event()? {
            out.push(describe(&ev));
        }
        Ok(out)
    }

    fn describe(ev: &XmlEvent<'_>) -> String {
        match ev {
            XmlEvent::StartElement { name, attrs } => {
                let attrs: Vec<String> = attrs.iter().map(|(n, v)| format!("{n}={v}")).collect();
                format!("<{name} [{}]", attrs.join(","))
            }
            XmlEvent::EndElement { name } => format!(">{name}"),
            XmlEvent::Text(t) => format!("t:{t}"),
            XmlEvent::Comment(c) => format!("c:{c}"),
            XmlEvent::Pi { target, data } => format!("pi:{target}:{data}"),
        }
    }

    #[test]
    fn event_stream_shapes() {
        assert_eq!(
            trace(r#"<a x="1"><b/>hi<!--c--><?p d?></a>"#).unwrap(),
            vec!["<a [x=1]", "<b []", ">b", "t:hi", "c:c", "pi:p:d", ">a"]
        );
    }

    #[test]
    fn cdata_merges_comments_split() {
        assert_eq!(
            trace("<a>x<![CDATA[<&]]>y<!--c-->z</a>").unwrap(),
            vec!["<a []", "t:x<&y", "c:c", "t:z", ">a"]
        );
        // A dropped comment still splits the run.
        let opts = ParseOptions {
            keep_comments: false,
            ..Default::default()
        };
        assert_eq!(
            trace_opts("<a>x<!--c-->z</a>", opts).unwrap(),
            vec!["<a []", "t:x", "t:z", ">a"]
        );
    }

    #[test]
    fn whitespace_stripping_filters_text_events() {
        assert_eq!(
            trace_opts("<a>\n  <b> x </b>\n</a>", ParseOptions::paper_model()).unwrap(),
            vec!["<a []", "<b []", "t: x ", ">b", ">a"]
        );
    }

    #[test]
    fn reader_mode_matches_str_mode() {
        // A reader that trickles 3 bytes at a time exercises every refill
        // boundary; the event stream must be byte-identical.
        struct Trickle<'a>(&'a [u8]);
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(out.len()).min(3);
                out[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let input = "<?xml version=\"1.0\"?><!DOCTYPE a><a häuser=\"größe\">héllo \
                     ☃<![CDATA[<raw>]]>&amp;<!--co--><b x='1' y=\"2\"/><?pi data?></a>";
        let want = trace(input).unwrap();
        let mut tok = Tokenizer::from_reader(Trickle(input.as_bytes()), ParseOptions::default());
        let mut got = Vec::new();
        while let Some(ev) = tok.next_event().unwrap() {
            got.push(describe(&ev));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn reader_mode_reports_positions() {
        let input = "<a>\n<b></c>\n</a>";
        let mut tok = Tokenizer::from_reader(input.as_bytes(), ParseOptions::default());
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
    }

    #[test]
    fn reader_mode_rejects_cdata_end_at_chunk_boundary() {
        // A `]]>` whose `>` is the last byte of a read chunk once slipped
        // past the guard band (the first `]` was consumed before the
        // needle could re-form): str and reader modes must agree.
        struct Chunks<'a>(Vec<&'a [u8]>);
        impl Read for Chunks<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                let c = self.0.remove(0);
                out[..c.len()].copy_from_slice(c);
                Ok(c.len())
            }
        }
        let mut tok =
            Tokenizer::from_reader(Chunks(vec![b"<a>xx]]>", b"y</a>"]), ParseOptions::default());
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err.kind(), XmlErrorKind::Malformed(m) if m.contains("]]>")),
            "{err}"
        );
        assert!(trace("<a>xx]]>y</a>").is_err());
    }

    #[test]
    fn reader_mode_rejects_invalid_utf8() {
        let bytes: &[u8] = b"<a>\xff</a>";
        let mut tok = Tokenizer::from_reader(bytes, ParseOptions::default());
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn big_documents_compact_the_window() {
        // > COMPACT_AT of input through a reader: the window must shrink
        // (indirectly observed: positions stay correct past the threshold).
        let mut input = String::from("<a>");
        while input.len() < COMPACT_AT + 10_000 {
            input.push_str("<b>text</b>");
        }
        input.push_str("<b></c>"); // mismatch far past the threshold
        input.push_str("</a>");
        let mut tok = Tokenizer::from_reader(input.as_bytes(), ParseOptions::default());
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err.kind(), XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(err.line(), 1);
        assert!(err.offset() > COMPACT_AT);
    }

    #[test]
    fn depth_limit_cuts_off_adversarially_deep_documents() {
        // Default limit: a 2000-deep chain errors cleanly instead of
        // growing a 2000-slot stack per consumer.
        let deep = format!("{}{}", "<a>".repeat(2000), "</a>".repeat(2000));
        let err = trace(&deep).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                XmlErrorKind::TooDeep {
                    limit: DEFAULT_MAX_ELEMENT_DEPTH
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("1024"), "{err}");

        // Custom limit: depth == limit is fine, limit + 1 is not — and a
        // self-closing element counts as a node at its depth.
        let opts = |n| ParseOptions {
            max_element_depth: n,
            ..Default::default()
        };
        let at = format!("{}{}", "<a>".repeat(8), "</a>".repeat(8));
        assert!(trace_opts(&at, opts(8)).is_ok());
        let over = format!("{}{}", "<a>".repeat(9), "</a>".repeat(9));
        assert!(matches!(
            trace_opts(&over, opts(8)).unwrap_err().kind(),
            XmlErrorKind::TooDeep { limit: 8 }
        ));
        let leaf = format!("{}<b/>{}", "<a>".repeat(8), "</a>".repeat(8));
        assert!(matches!(
            trace_opts(&leaf, opts(8)).unwrap_err().kind(),
            XmlErrorKind::TooDeep { limit: 8 }
        ));

        // Reader mode enforces the same limit.
        let mut tok = Tokenizer::from_reader(over.as_bytes(), opts(8));
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected an error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err.kind(), XmlErrorKind::TooDeep { limit: 8 }));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut tok = Tokenizer::new("<a><b/></a>");
        assert_eq!(tok.depth(), 0);
        tok.next_event().unwrap(); // <a>
        assert_eq!(tok.depth(), 1);
        tok.next_event().unwrap(); // <b/> start
        assert_eq!(tok.depth(), 2);
        tok.next_event().unwrap(); // b end
        assert_eq!(tok.depth(), 1);
    }
}

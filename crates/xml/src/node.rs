//! Node identifiers and node kinds.
//!
//! A [`NodeId`] is the node's *pre-order (document-order) index* in its
//! document.  This representation is load-bearing for the whole engine:
//!
//! * document order `<doc` (Section 2.1 of the paper) is integer comparison,
//! * a subtree is the contiguous index range `pre(x)+1 .. subtree_end(x)`,
//! * per-node context-value tables are dense arrays indexed by `NodeId`.

use crate::name::Name;
use std::fmt;

/// A node in a [`Document`](crate::Document), identified by its pre-order
/// index.  Ordering of `NodeId`s *is* document order (`<doc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The document root node (not the document *element*): the node `/`
    /// selects, parent of the top-level element.
    pub const ROOT: NodeId = NodeId(0);

    /// The raw pre-order index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    ///
    /// Only meaningful for indices obtained from the same document.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("document larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node.
///
/// The paper's formal model treats all of `dom` uniformly, and in its
/// examples `dom` contains element nodes only; we implement the XPath 1.0
/// data model (root/element/text/comment/PI/attribute), which coincides with
/// the paper's on its examples because the node test `*` selects only nodes
/// of the *principal type* (elements, for all tree axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The unique document root ("/" in XPath); parent of the document
    /// element.
    Root,
    /// An element with an interned tag name.
    Element(Name),
    /// A text node; its content lives in the document's content table.
    Text,
    /// A comment node.
    Comment,
    /// A processing instruction with an interned target name.
    Pi(Name),
    /// An attribute node (extension; reachable only via the `attribute`
    /// axis, excluded from all tree axes per the XPath 1.0 data model).
    Attribute(Name),
}

impl NodeKind {
    /// Whether this node is an element.
    #[inline]
    pub fn is_element(self) -> bool {
        matches!(self, NodeKind::Element(_))
    }

    /// Whether this node is a text node.
    #[inline]
    pub fn is_text(self) -> bool {
        matches!(self, NodeKind::Text)
    }

    /// Whether this node is an attribute node.
    #[inline]
    pub fn is_attribute(self) -> bool {
        matches!(self, NodeKind::Attribute(_))
    }

    /// The element tag / PI target / attribute name, if this kind carries
    /// one.
    #[inline]
    pub fn name(self) -> Option<Name> {
        match self {
            NodeKind::Element(n) | NodeKind::Pi(n) | NodeKind::Attribute(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_order_is_index_order() {
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
    }

    #[test]
    fn root_is_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn kind_predicates() {
        let n = Name(0);
        assert!(NodeKind::Element(n).is_element());
        assert!(!NodeKind::Text.is_element());
        assert!(NodeKind::Text.is_text());
        assert!(NodeKind::Attribute(n).is_attribute());
        assert_eq!(NodeKind::Element(n).name(), Some(n));
        assert_eq!(NodeKind::Root.name(), None);
        assert_eq!(NodeKind::Comment.name(), None);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
    }
}

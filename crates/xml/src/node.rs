//! Node identifiers and node kinds.
//!
//! A [`NodeId`] is the node's *pre-order (document-order) index* in its
//! document.  This representation is load-bearing for the whole engine:
//!
//! * document order `<doc` (Section 2.1 of the paper) is integer comparison,
//! * a subtree is the contiguous index range `pre(x)+1 .. subtree_end(x)`,
//! * per-node context-value tables are dense arrays indexed by `NodeId`.

use crate::name::Name;
use std::fmt;

/// A node in a [`Document`](crate::Document), identified by its pre-order
/// index.  Ordering of `NodeId`s *is* document order (`<doc`).
///
/// `repr(transparent)` over the raw index: postings columns store plain
/// `u32`s (they serialize byte-for-byte into snapshots) and reinterpret
/// as `&[NodeId]` at the accessor boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The document root node (not the document *element*): the node `/`
    /// selects, parent of the top-level element.
    pub const ROOT: NodeId = NodeId(0);

    /// The raw pre-order index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    ///
    /// Only meaningful for indices obtained from the same document.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("document larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node.
///
/// The paper's formal model treats all of `dom` uniformly, and in its
/// examples `dom` contains element nodes only; we implement the XPath 1.0
/// data model (root/element/text/comment/PI/attribute), which coincides with
/// the paper's on its examples because the node test `*` selects only nodes
/// of the *principal type* (elements, for all tree axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The unique document root ("/" in XPath); parent of the document
    /// element.
    Root,
    /// An element with an interned tag name.
    Element(Name),
    /// A text node; its content lives in the document's content table.
    Text,
    /// A comment node.
    Comment,
    /// A processing instruction with an interned target name.
    Pi(Name),
    /// An attribute node (extension; reachable only via the `attribute`
    /// axis, excluded from all tree axes per the XPath 1.0 data model).
    Attribute(Name),
}

/// Packed-kind tag values (low [`KIND_TAG_BITS`] bits of a kind word).
pub(crate) const TAG_ROOT: u32 = 0;
pub(crate) const TAG_ELEMENT: u32 = 1;
pub(crate) const TAG_TEXT: u32 = 2;
pub(crate) const TAG_COMMENT: u32 = 3;
pub(crate) const TAG_PI: u32 = 4;
pub(crate) const TAG_ATTRIBUTE: u32 = 5;
/// Bits of a packed kind word holding the tag; the rest is the name.
pub(crate) const KIND_TAG_BITS: u32 = 3;
pub(crate) const KIND_TAG_MASK: u32 = (1 << KIND_TAG_BITS) - 1;

impl NodeKind {
    /// Packs the kind into one `u32` word (tag in the low bits, interned
    /// name index in the high bits) — the in-memory and on-disk format of
    /// the document's `kinds` column.
    ///
    /// # Panics
    /// Panics if the name index needs more than `32 - KIND_TAG_BITS`
    /// bits (over 500M distinct names — unreachable for real documents,
    /// whose names each label at least one node).
    #[inline]
    pub(crate) fn pack(self) -> u32 {
        let (tag, name) = match self {
            NodeKind::Root => (TAG_ROOT, 0),
            NodeKind::Element(n) => (TAG_ELEMENT, n.0),
            NodeKind::Text => (TAG_TEXT, 0),
            NodeKind::Comment => (TAG_COMMENT, 0),
            NodeKind::Pi(n) => (TAG_PI, n.0),
            NodeKind::Attribute(n) => (TAG_ATTRIBUTE, n.0),
        };
        assert!(
            name >> (32 - KIND_TAG_BITS) == 0,
            "name index exceeds packed-kind capacity"
        );
        tag | (name << KIND_TAG_BITS)
    }

    /// The inverse of [`NodeKind::pack`].
    ///
    /// # Panics
    /// Panics on an invalid tag; mapped documents validate every kind
    /// word before adopting the column.
    #[inline]
    pub(crate) fn unpack(word: u32) -> NodeKind {
        let name = Name(word >> KIND_TAG_BITS);
        match word & KIND_TAG_MASK {
            TAG_ROOT => NodeKind::Root,
            TAG_ELEMENT => NodeKind::Element(name),
            TAG_TEXT => NodeKind::Text,
            TAG_COMMENT => NodeKind::Comment,
            TAG_PI => NodeKind::Pi(name),
            TAG_ATTRIBUTE => NodeKind::Attribute(name),
            tag => panic!("invalid packed node kind tag {tag}"),
        }
    }

    /// Whether this node is an element.
    #[inline]
    pub fn is_element(self) -> bool {
        matches!(self, NodeKind::Element(_))
    }

    /// Whether this node is a text node.
    #[inline]
    pub fn is_text(self) -> bool {
        matches!(self, NodeKind::Text)
    }

    /// Whether this node is an attribute node.
    #[inline]
    pub fn is_attribute(self) -> bool {
        matches!(self, NodeKind::Attribute(_))
    }

    /// The element tag / PI target / attribute name, if this kind carries
    /// one.
    #[inline]
    pub fn name(self) -> Option<Name> {
        match self {
            NodeKind::Element(n) | NodeKind::Pi(n) | NodeKind::Attribute(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_order_is_index_order() {
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
    }

    #[test]
    fn root_is_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn kind_predicates() {
        let n = Name(0);
        assert!(NodeKind::Element(n).is_element());
        assert!(!NodeKind::Text.is_element());
        assert!(NodeKind::Text.is_text());
        assert!(NodeKind::Attribute(n).is_attribute());
        assert_eq!(NodeKind::Element(n).name(), Some(n));
        assert_eq!(NodeKind::Root.name(), None);
        assert_eq!(NodeKind::Comment.name(), None);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
    }

    #[test]
    fn kind_packing_round_trips() {
        for kind in [
            NodeKind::Root,
            NodeKind::Element(Name(0)),
            NodeKind::Element(Name(12345)),
            NodeKind::Text,
            NodeKind::Comment,
            NodeKind::Pi(Name(7)),
            NodeKind::Attribute(Name(3)),
        ] {
            assert_eq!(NodeKind::unpack(kind.pack()), kind);
        }
    }

    #[test]
    #[should_panic(expected = "invalid packed node kind tag")]
    fn unpack_rejects_invalid_tags() {
        let _ = NodeKind::unpack(6);
    }
}

//! Flat column storage behind [`Document`]: owned heap buffers or
//! zero-copy views into a memory-mapped snapshot.
//!
//! Every piece of a document is one of a fixed set of *columns* — plain
//! `u32`/`u8` arrays with offset-based (CSR) indirection instead of
//! nested allocations:
//!
//! * the seven per-node structure columns (`kinds` packs the node kind
//!   and its interned name into one word, see [`NodeKind`] packing),
//! * the text heap: one byte buffer holding every content string, with a
//!   per-node offset column (`text_off[n]..text_off[n+1]` is node `n`'s
//!   content — nodes are appended in pre-order, so offsets are monotone),
//! * CSR label postings: one flat node-id array per posting family
//!   (element / attribute) plus a per-name offset column,
//! * the id index: `(attribute node, owner element)` pairs sorted by the
//!   attribute's content bytes, so `element_by_id` is a binary search
//!   whose keys live in the text heap (no separate key storage).
//!
//! A [`Col<T>`] is either **owned** (a `Vec<T>`, the
//! [`DocumentBuilder`](crate::DocumentBuilder) path) or **borrowed** from
//! a [`StableBytes`] region (the `minctx-index` snapshot path).  Both
//! deref to `&[T]` through one cached pointer, so the axis kernels and
//! evaluators run unchanged — and equally hot — on either backing.
//!
//! [`Document`]: crate::Document
//! [`NodeKind`]: crate::NodeKind

use crate::node::NodeId;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte region with a stable address — the backing of
/// borrowed columns (a memory-mapped snapshot file, or a heap buffer on
/// platforms without `mmap`).
///
/// # Safety
///
/// Implementations must guarantee that `bytes()` returns the *same*
/// pointer and length for the lifetime of the value, and that the bytes
/// are never mutated or unmapped while the value is alive.  Borrowed
/// columns cache raw pointers into the region and read through them for
/// as long as they hold the `Arc`.
pub unsafe trait StableBytes: Send + Sync + 'static {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

/// One document column: a contiguous `[T]`, owned or borrowed.
///
/// Dereferences to `&[T]` through a pointer cached at construction, so
/// per-access cost is identical for both backings (no branch, no
/// virtual call on the hot path).
pub(crate) struct Col<T: Copy + 'static> {
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

enum Backing<T> {
    Owned(Vec<T>),
    /// Keep-alive handle; the bytes themselves are reached via `ptr`.
    Borrowed(Arc<dyn StableBytes>),
}

impl<T: Copy + 'static> Col<T> {
    /// An owned column.  (The `Vec`'s heap buffer never moves while the
    /// `Vec` itself is only moved, so the cached pointer stays valid.)
    pub(crate) fn owned(v: Vec<T>) -> Col<T> {
        Col {
            ptr: v.as_ptr(),
            len: v.len(),
            backing: Backing::Owned(v),
        }
    }

    /// A column borrowed from `keep`'s byte region.
    ///
    /// # Panics
    /// Panics if `slice` does not lie within `keep.bytes()` — callers
    /// ([`Document::from_mapped_columns`](crate::Document::from_mapped_columns))
    /// validate containment first and treat violations as corruption.
    pub(crate) fn borrowed(slice: &[T], keep: &Arc<dyn StableBytes>) -> Col<T> {
        assert!(
            slice_within(slice, keep.bytes()),
            "borrowed column does not lie inside its backing region"
        );
        Col {
            ptr: slice.as_ptr(),
            len: slice.len(),
            backing: Backing::Borrowed(Arc::clone(keep)),
        }
    }
}

/// Whether `slice`'s memory lies entirely inside `region` (empty slices
/// are trivially contained).
pub(crate) fn slice_within<T>(slice: &[T], region: &[u8]) -> bool {
    if slice.is_empty() {
        return true;
    }
    let start = slice.as_ptr() as usize;
    let end = start + std::mem::size_of_val(slice);
    let r0 = region.as_ptr() as usize;
    let r1 = r0 + region.len();
    start >= r0 && end <= r1
}

impl<T: Copy + 'static> Deref for Col<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr`/`len` describe either the owned Vec's buffer
        // (alive as long as `self`) or a range of a `StableBytes` region
        // kept alive by the `Arc` in `backing`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Copy + 'static> Clone for Col<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            Backing::Owned(v) => Col::owned(v.clone()),
            Backing::Borrowed(keep) => Col {
                ptr: self.ptr,
                len: self.len,
                backing: Backing::Borrowed(Arc::clone(keep)),
            },
        }
    }
}

impl<T: Copy + fmt::Debug + 'static> fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.backing {
            Backing::Owned(_) => "owned",
            Backing::Borrowed(_) => "mapped",
        };
        write!(f, "Col<{kind}>")?;
        f.debug_list().entries(self.iter()).finish()
    }
}

// SAFETY: the pointed-to data is immutable for the life of the Col (owned
// Vec never mutated; StableBytes contract for borrowed), so shared access
// from multiple threads is sound for POD element types.
unsafe impl<T: Copy + Send + Sync + 'static> Send for Col<T> {}
// SAFETY: as for Send — shared references expose only reads of
// immutable POD data.
unsafe impl<T: Copy + Send + Sync + 'static> Sync for Col<T> {}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Col<u8>>();
    assert_send_sync::<Col<u32>>();
    assert_send_sync::<DocStore>();
};

/// The flat columns of a [`Document`](crate::Document); see the module
/// docs for the layout of each.
#[derive(Debug, Clone)]
pub(crate) struct DocStore {
    /// Packed node kinds (`NodeKind::pack`).
    pub(crate) kinds: Col<u32>,
    pub(crate) parent: Col<u32>,
    pub(crate) first_child: Col<u32>,
    pub(crate) last_child: Col<u32>,
    pub(crate) next_sibling: Col<u32>,
    pub(crate) prev_sibling: Col<u32>,
    pub(crate) subtree_end: Col<u32>,
    /// `len + 1` monotone offsets into `text_heap`; node `n`'s content is
    /// `text_heap[text_off[n]..text_off[n+1]]` (empty for elements/root).
    pub(crate) text_off: Col<u32>,
    /// All content bytes, concatenated in pre-order.  Invariant: valid
    /// UTF-8, and every `text_off` value is a char boundary (builder by
    /// construction; mapped columns validated at construction).
    pub(crate) text_heap: Col<u8>,
    /// CSR offsets (`name_count + 1`) into `elem_post`.
    pub(crate) elem_off: Col<u32>,
    /// Element nodes grouped by label, document order within each label.
    pub(crate) elem_post: Col<u32>,
    pub(crate) attr_off: Col<u32>,
    pub(crate) attr_post: Col<u32>,
    /// Attribute nodes providing element ids, sorted by content bytes
    /// (the id keys live in the text heap — no separate key storage).
    pub(crate) id_attrs: Col<u32>,
    /// `id_elems[i]` is the element owning the id key of `id_attrs[i]`.
    pub(crate) id_elems: Col<u32>,
}

impl DocStore {
    /// Number of nodes.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Content bytes of node `i` (the raw span; UTF-8 by invariant).
    #[inline]
    pub(crate) fn content_span(&self, i: usize) -> &str {
        let s = self.text_off[i] as usize;
        let e = self.text_off[i + 1] as usize;
        // SAFETY: struct invariant — heap is valid UTF-8 and offsets are
        // monotone char boundaries.
        unsafe { std::str::from_utf8_unchecked(&self.text_heap[s..e]) }
    }

    /// Whether node `i` has empty content.
    #[inline]
    pub(crate) fn content_is_empty(&self, i: usize) -> bool {
        self.text_off[i] == self.text_off[i + 1]
    }

    /// CSR slice of `posts` for name index `i` (`&[]` past the offsets —
    /// names interned after the document was built).
    #[inline]
    pub(crate) fn postings<'s>(off: &'s [u32], posts: &'s [u32], i: usize) -> &'s [NodeId] {
        match off.get(i + 1) {
            Some(&e) => node_ids(&posts[off[i] as usize..e as usize]),
            None => &[],
        }
    }
}

/// Reinterprets a `u32` slice as `NodeId`s (`NodeId` is
/// `#[repr(transparent)]` over `u32`).
#[inline]
pub(crate) fn node_ids(s: &[u32]) -> &[NodeId] {
    // SAFETY: NodeId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<NodeId>(), s.len()) }
}

/// Borrowed views of every document column, in one struct — the exchange
/// format between [`Document`](crate::Document) and the `minctx-index`
/// snapshot reader/writer.  All slices are plain little-endian-in-memory
/// `u32`/`u8` arrays; see the module docs for each column's meaning.
#[derive(Debug, Clone, Copy)]
pub struct RawColumns<'a> {
    /// Packed node kinds (kind tag in the low 3 bits, interned name
    /// index in the high bits).
    pub kinds: &'a [u32],
    /// Parent links (`u32::MAX` = none).
    pub parent: &'a [u32],
    /// First non-attribute child (`u32::MAX` = none).
    pub first_child: &'a [u32],
    /// Last non-attribute child (`u32::MAX` = none).
    pub last_child: &'a [u32],
    /// Next sibling (`u32::MAX` = none).
    pub next_sibling: &'a [u32],
    /// Previous sibling (`u32::MAX` = none).
    pub prev_sibling: &'a [u32],
    /// One past the last pre-order index of each node's subtree.
    pub subtree_end: &'a [u32],
    /// `node_count + 1` monotone offsets into `text_heap`.
    pub text_off: &'a [u32],
    /// All content bytes (UTF-8), concatenated in pre-order.
    pub text_heap: &'a [u8],
    /// CSR offsets (`name_count + 1`) into `elem_post`.
    pub elem_off: &'a [u32],
    /// Element postings, grouped by label.
    pub elem_post: &'a [u32],
    /// CSR offsets (`name_count + 1`) into `attr_post`.
    pub attr_off: &'a [u32],
    /// Attribute postings, grouped by name.
    pub attr_post: &'a [u32],
    /// Id-providing attribute nodes, sorted by their content bytes.
    pub id_attrs: &'a [u32],
    /// Owner element of each id key.
    pub id_elems: &'a [u32],
}

/// A validation failure while adopting mapped columns — the snapshot file
/// decoded structurally but its contents violate a document invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnError {
    msg: String,
}

impl ColumnError {
    pub(crate) fn new(msg: impl Into<String>) -> ColumnError {
        ColumnError { msg: msg.into() }
    }
}

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid document columns: {}", self.msg)
    }
}

impl std::error::Error for ColumnError {}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedBytes(Vec<u8>);
    // SAFETY: (test) the Vec is never touched after construction.
    unsafe impl StableBytes for FixedBytes {
        fn bytes(&self) -> &[u8] {
            &self.0
        }
    }

    #[test]
    fn owned_col_survives_moves_and_clones() {
        let c = Col::owned(vec![1u32, 2, 3]);
        let moved = c;
        assert_eq!(&*moved, &[1, 2, 3]);
        let cloned = moved.clone();
        assert_eq!(&*cloned, &*moved);
        let empty: Col<u32> = Col::owned(Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn borrowed_col_reads_through_the_region() {
        let keep: Arc<dyn StableBytes> = Arc::new(FixedBytes(vec![7, 0, 0, 0, 9, 0, 0, 0]));
        let bytes = keep.bytes();
        // SAFETY (test): region is 8 bytes, Vec<u8> allocations are
        // sufficiently aligned for u32 only by luck — so copy through
        // read_unaligned semantics instead: construct via a properly
        // aligned owned buffer and check containment logic separately.
        assert!(slice_within(&bytes[2..5], bytes));
        assert!(!slice_within(&[1u8, 2, 3][..], bytes));
        assert!(slice_within(&[] as &[u8], bytes));
        let col = Col::borrowed(&bytes[4..8], &keep);
        assert_eq!(&*col, &[9, 0, 0, 0]);
        let cloned = col.clone();
        drop(col);
        assert_eq!(&*cloned, &[9, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "backing region")]
    fn borrowed_col_rejects_foreign_slices() {
        let keep: Arc<dyn StableBytes> = Arc::new(FixedBytes(vec![0; 8]));
        let foreign = [1u8, 2, 3];
        let _ = Col::borrowed(&foreign[..], &keep);
    }

    #[test]
    fn node_id_cast_round_trips() {
        let raw = [0u32, 3, 7];
        let ids = node_ids(&raw);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[1], NodeId::from_index(3));
    }
}

//! Node sets: subsets of `dom` in document order.
//!
//! A [`NodeSet`] is a deduplicated `Vec<NodeId>` sorted ascending — i.e. in
//! document order, since [`NodeId`] *is* the pre-order index.  All set
//! operations preserve that invariant.  Membership is `O(log n)`; union and
//! intersection are linear merges.
//!
//! [`DenseSet`] is the companion *dense* representation: a capacity-bounded
//! bitset over node indices.  The axis kernels use it for their mark/flag
//! sweeps (a [`Scratch`](crate::axes::Scratch) holds two, reused across
//! calls), and [`NodeSet::from_unsorted_with_capacity`] routes large
//! unsorted intermediate sets — the shape the CVT strategy's accumulation
//! loops produce — through it instead of a comparison sort.

use crate::node::NodeId;
use std::fmt;

/// A set of nodes, maintained sorted in document order and duplicate-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    nodes: Vec<NodeId>,
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> Self {
        NodeSet { nodes: Vec::new() }
    }

    /// Pre-allocates capacity.
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            nodes: Vec::with_capacity(n),
        }
    }

    /// A singleton set.
    pub fn singleton(n: NodeId) -> Self {
        NodeSet { nodes: vec![n] }
    }

    /// Builds from an arbitrary vector: sorts and deduplicates.
    pub fn from_unsorted(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { nodes }
    }

    /// Builds from an arbitrary vector of nodes drawn from a document with
    /// `capacity` nodes, choosing the cheaper of two routes: a comparison
    /// sort for sparse inputs, or a [`DenseSet`] radix pass (`O(k +
    /// capacity/64)`) for dense ones — the intermediate-set shape the CVT
    /// strategy's per-origin accumulation loops produce.
    pub fn from_unsorted_with_capacity(capacity: usize, nodes: Vec<NodeId>) -> Self {
        // Below ~capacity/64 elements the bitset sweep's word scan
        // dominates; past it the sort's k·log k does.
        if capacity == 0 || nodes.len() < capacity / 64 {
            return NodeSet::from_unsorted(nodes);
        }
        let mut dense = DenseSet::with_capacity(capacity);
        for &n in &nodes {
            dense.insert(n);
        }
        dense.to_node_set()
    }

    /// Builds from a vector the caller guarantees is sorted ascending and
    /// duplicate-free (checked in debug builds).
    pub fn from_sorted_vec(nodes: Vec<NodeId>) -> Self {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        NodeSet { nodes }
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test, `O(log n)`.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }

    /// The position (0-based) of `n` in document order within the set.
    pub fn position_of(&self, n: NodeId) -> Option<usize> {
        self.nodes.binary_search(&n).ok()
    }

    /// The first node in document order (`first_<doc` of the paper).
    #[inline]
    pub fn first(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last node in document order.
    #[inline]
    pub fn last(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Iterates in document order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        self.nodes.iter().copied()
    }

    /// Read-only view of the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Inserts a node, keeping order; `O(n)` worst case, `O(1)` when
    /// appending in document order (the common construction pattern).
    pub fn insert(&mut self, n: NodeId) {
        match self.nodes.last() {
            Some(&l) if l < n => self.nodes.push(n),
            Some(&l) if l == n => {}
            None => self.nodes.push(n),
            _ => {
                if let Err(pos) = self.nodes.binary_search(&n) {
                    self.nodes.insert(pos, n);
                }
            }
        }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.nodes[i..]);
        out.extend_from_slice(&other.nodes[j..]);
        NodeSet { nodes: out }
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        NodeSet { nodes: out }
    }

    /// Set difference `self \ other` (linear merge).
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() {
            if j >= other.nodes.len() {
                out.extend_from_slice(&self.nodes[i..]);
                break;
            }
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        NodeSet { nodes: out }
    }

    /// Keeps only nodes satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(NodeId) -> bool) {
        self.nodes.retain(|&n| pred(n));
    }

    /// Consumes the set, returning the sorted vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.nodes
    }

    /// Empties the set, keeping its allocation (for buffer reuse in the
    /// axis kernels).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Mutable access to the underlying vector for in-crate kernels that
    /// build results in place.  Callers must restore the sorted/deduped
    /// invariant before the set is observed.
    #[inline]
    pub(crate) fn vec_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.nodes
    }
}

/// A dense, capacity-bounded set of nodes: one bit per pre-order index.
///
/// Insert/membership are `O(1)`; clearing and conversion to a sorted
/// [`NodeSet`] are `O(capacity/64)`.  Used for the axis kernels' mark/flag
/// sweeps and as the dense leg of the hybrid
/// [`NodeSet::from_unsorted_with_capacity`] constructor.
#[derive(Debug, Clone, Default)]
pub struct DenseSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseSet {
    /// An empty set with zero capacity (grow with
    /// [`DenseSet::ensure_capacity`]).
    pub fn new() -> Self {
        DenseSet::default()
    }

    /// An empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The exclusive upper bound on insertable indices.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grows the capacity to at least `capacity`, preserving contents.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.words.resize(capacity.div_ceil(64), 0);
            self.capacity = capacity;
        }
    }

    /// Removes all members; `O(capacity/64)`.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts a node; returns whether it was newly added.
    ///
    /// # Panics
    /// Panics if the node's index is at or beyond the capacity.
    #[inline]
    pub fn insert(&mut self, n: NodeId) -> bool {
        let i = n.index();
        assert!(i < self.capacity, "DenseSet index {i} out of capacity");
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Membership test; indices at or beyond capacity are absent.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        let i = n.index();
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no members are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts every node of an iterator.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = NodeId>) {
        for n in iter {
            self.insert(n);
        }
    }

    /// In-place union with another dense set.
    ///
    /// # Panics
    /// Panics if `other` has larger capacity than `self`.
    pub fn union_with(&mut self, other: &DenseSet) {
        assert!(other.capacity <= self.capacity, "capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Iterates members in ascending (document) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::from_index(wi * 64 + b))
            })
        })
    }

    /// Converts to the sorted sparse representation.
    pub fn to_node_set(&self) -> NodeSet {
        NodeSet {
            nodes: self.iter().collect(),
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> NodeSet {
        NodeSet::from_unsorted(v.iter().map(|&i| NodeId::from_index(i)).collect())
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = ids(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        let v: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn union_intersect_difference() {
        let a = ids(&[1, 3, 5, 7]);
        let b = ids(&[3, 4, 5, 8]);
        assert_eq!(a.union(&b), ids(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(a.intersect(&b), ids(&[3, 5]));
        assert_eq!(a.difference(&b), ids(&[1, 7]));
        assert_eq!(b.difference(&a), ids(&[4, 8]));
    }

    #[test]
    fn union_with_empty() {
        let a = ids(&[2, 4]);
        let e = NodeSet::new();
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn contains_and_position() {
        let s = ids(&[10, 20, 30]);
        assert!(s.contains(NodeId::from_index(20)));
        assert!(!s.contains(NodeId::from_index(25)));
        assert_eq!(s.position_of(NodeId::from_index(30)), Some(2));
        assert_eq!(s.position_of(NodeId::from_index(11)), None);
    }

    #[test]
    fn insert_maintains_order() {
        let mut s = NodeSet::new();
        s.insert(NodeId::from_index(5));
        s.insert(NodeId::from_index(2));
        s.insert(NodeId::from_index(9));
        s.insert(NodeId::from_index(5)); // duplicate
        assert_eq!(s, ids(&[2, 5, 9]));
    }

    #[test]
    fn first_and_last() {
        let s = ids(&[4, 2, 8]);
        assert_eq!(s.first().map(|n| n.index()), Some(2));
        assert_eq!(s.last().map(|n| n.index()), Some(8));
        assert_eq!(NodeSet::new().first(), None);
    }

    #[test]
    fn retain_filters() {
        let mut s = ids(&[1, 2, 3, 4, 5]);
        s.retain(|n| n.index() % 2 == 1);
        assert_eq!(s, ids(&[1, 3, 5]));
    }

    #[test]
    fn display_formatting() {
        let s = ids(&[1, 2]);
        assert_eq!(s.to_string(), "{n1, n2}");
    }

    #[test]
    fn from_iterator() {
        let s: NodeSet = (0..4).map(NodeId::from_index).collect();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn dense_set_insert_contains_len() {
        let mut d = DenseSet::with_capacity(130);
        assert!(d.is_empty());
        assert!(d.insert(NodeId::from_index(0)));
        assert!(d.insert(NodeId::from_index(64)));
        assert!(d.insert(NodeId::from_index(129)));
        assert!(!d.insert(NodeId::from_index(64))); // duplicate
        assert_eq!(d.len(), 3);
        assert!(d.contains(NodeId::from_index(129)));
        assert!(!d.contains(NodeId::from_index(1)));
        // Beyond capacity: absent, not a panic.
        assert!(!d.contains(NodeId::from_index(1000)));
        d.clear();
        assert!(d.is_empty());
        assert!(!d.contains(NodeId::from_index(64)));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn dense_set_insert_beyond_capacity_panics() {
        let mut d = DenseSet::with_capacity(10);
        d.insert(NodeId::from_index(10));
    }

    #[test]
    fn dense_set_iteration_is_sorted() {
        let mut d = DenseSet::with_capacity(200);
        for i in [150usize, 3, 64, 63, 65, 0, 199] {
            d.insert(NodeId::from_index(i));
        }
        let v: Vec<usize> = d.iter().map(|n| n.index()).collect();
        assert_eq!(v, vec![0, 3, 63, 64, 65, 150, 199]);
        assert_eq!(d.to_node_set(), ids(&[0, 3, 63, 64, 65, 150, 199]));
    }

    #[test]
    fn dense_set_grow_and_union() {
        let mut a = DenseSet::with_capacity(64);
        a.insert(NodeId::from_index(5));
        a.ensure_capacity(256);
        assert!(a.contains(NodeId::from_index(5)));
        a.insert(NodeId::from_index(255));
        let mut b = DenseSet::with_capacity(128);
        b.extend([NodeId::from_index(5), NodeId::from_index(70)]);
        a.union_with(&b);
        assert_eq!(a.to_node_set(), ids(&[5, 70, 255]));
    }

    #[test]
    fn hybrid_constructor_matches_sort_route() {
        // Dense input (≥ capacity/64 members) takes the bitset route; both
        // routes must agree with the plain sort.
        let cap = 1024;
        let dense_input: Vec<NodeId> = (0..cap)
            .rev()
            .step_by(3)
            .chain(0..50)
            .map(NodeId::from_index)
            .collect();
        let sparse_input: Vec<NodeId> = [9usize, 2, 9, 500].map(NodeId::from_index).to_vec();
        for input in [dense_input, sparse_input] {
            let hybrid = NodeSet::from_unsorted_with_capacity(cap, input.clone());
            let sorted = NodeSet::from_unsorted(input);
            assert_eq!(hybrid, sorted);
        }
    }
}

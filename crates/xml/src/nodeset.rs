//! Node sets: subsets of `dom` in document order.
//!
//! A [`NodeSet`] is a deduplicated `Vec<NodeId>` sorted ascending — i.e. in
//! document order, since [`NodeId`] *is* the pre-order index.  All set
//! operations preserve that invariant.  Membership is `O(log n)`; union and
//! intersection are linear merges.

use crate::node::NodeId;
use std::fmt;

/// A set of nodes, maintained sorted in document order and duplicate-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    nodes: Vec<NodeId>,
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> Self {
        NodeSet { nodes: Vec::new() }
    }

    /// Pre-allocates capacity.
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            nodes: Vec::with_capacity(n),
        }
    }

    /// A singleton set.
    pub fn singleton(n: NodeId) -> Self {
        NodeSet { nodes: vec![n] }
    }

    /// Builds from an arbitrary vector: sorts and deduplicates.
    pub fn from_unsorted(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { nodes }
    }

    /// Builds from a vector the caller guarantees is sorted ascending and
    /// duplicate-free (checked in debug builds).
    pub fn from_sorted_vec(nodes: Vec<NodeId>) -> Self {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        NodeSet { nodes }
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test, `O(log n)`.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }

    /// The position (0-based) of `n` in document order within the set.
    pub fn position_of(&self, n: NodeId) -> Option<usize> {
        self.nodes.binary_search(&n).ok()
    }

    /// The first node in document order (`first_<doc` of the paper).
    #[inline]
    pub fn first(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// The last node in document order.
    #[inline]
    pub fn last(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Iterates in document order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        self.nodes.iter().copied()
    }

    /// Read-only view of the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Inserts a node, keeping order; `O(n)` worst case, `O(1)` when
    /// appending in document order (the common construction pattern).
    pub fn insert(&mut self, n: NodeId) {
        match self.nodes.last() {
            Some(&l) if l < n => self.nodes.push(n),
            Some(&l) if l == n => {}
            None => self.nodes.push(n),
            _ => {
                if let Err(pos) = self.nodes.binary_search(&n) {
                    self.nodes.insert(pos, n);
                }
            }
        }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.nodes[i..]);
        out.extend_from_slice(&other.nodes[j..]);
        NodeSet { nodes: out }
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() && j < other.nodes.len() {
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        NodeSet { nodes: out }
    }

    /// Set difference `self \ other` (linear merge).
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.nodes.len() {
            if j >= other.nodes.len() {
                out.extend_from_slice(&self.nodes[i..]);
                break;
            }
            let (a, b) = (self.nodes[i], other.nodes[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        NodeSet { nodes: out }
    }

    /// Keeps only nodes satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(NodeId) -> bool) {
        self.nodes.retain(|&n| pred(n));
    }

    /// Consumes the set, returning the sorted vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.nodes
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> NodeSet {
        NodeSet::from_unsorted(v.iter().map(|&i| NodeId::from_index(i)).collect())
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = ids(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        let v: Vec<usize> = s.iter().map(|n| n.index()).collect();
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn union_intersect_difference() {
        let a = ids(&[1, 3, 5, 7]);
        let b = ids(&[3, 4, 5, 8]);
        assert_eq!(a.union(&b), ids(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(a.intersect(&b), ids(&[3, 5]));
        assert_eq!(a.difference(&b), ids(&[1, 7]));
        assert_eq!(b.difference(&a), ids(&[4, 8]));
    }

    #[test]
    fn union_with_empty() {
        let a = ids(&[2, 4]);
        let e = NodeSet::new();
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn contains_and_position() {
        let s = ids(&[10, 20, 30]);
        assert!(s.contains(NodeId::from_index(20)));
        assert!(!s.contains(NodeId::from_index(25)));
        assert_eq!(s.position_of(NodeId::from_index(30)), Some(2));
        assert_eq!(s.position_of(NodeId::from_index(11)), None);
    }

    #[test]
    fn insert_maintains_order() {
        let mut s = NodeSet::new();
        s.insert(NodeId::from_index(5));
        s.insert(NodeId::from_index(2));
        s.insert(NodeId::from_index(9));
        s.insert(NodeId::from_index(5)); // duplicate
        assert_eq!(s, ids(&[2, 5, 9]));
    }

    #[test]
    fn first_and_last() {
        let s = ids(&[4, 2, 8]);
        assert_eq!(s.first().map(|n| n.index()), Some(2));
        assert_eq!(s.last().map(|n| n.index()), Some(8));
        assert_eq!(NodeSet::new().first(), None);
    }

    #[test]
    fn retain_filters() {
        let mut s = ids(&[1, 2, 3, 4, 5]);
        s.retain(|n| n.index() % 2 == 1);
        assert_eq!(s, ids(&[1, 3, 5]));
    }

    #[test]
    fn display_formatting() {
        let s = ids(&[1, 2]);
        assert_eq!(s.to_string(), "{n1, n2}");
    }

    #[test]
    fn from_iterator() {
        let s: NodeSet = (0..4).map(NodeId::from_index).collect();
        assert_eq!(s.len(), 4);
    }
}

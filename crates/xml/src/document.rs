//! The arena-based XML document: the paper's `dom`.
//!
//! A [`Document`] stores all nodes in a struct-of-arrays arena in *pre-order*
//! (document order).  [`NodeId`] is the pre-order index, so:
//!
//! * `<doc` (document order, Section 2.1) is `NodeId` comparison,
//! * the subtree of `x` is the contiguous range
//!   `x.index()+1 .. subtree_end(x)`,
//! * per-node tables elsewhere in the engine are dense arrays.
//!
//! The arena is stored as flat, offset-based columns (see
//! [`store`](crate::store)): packed kind words, structure links, one text
//! heap with per-node spans, CSR label postings, and a sorted id index.
//! Columns are either owned heap buffers (built by
//! [`DocumentBuilder`](crate::DocumentBuilder)) or zero-copy views of a
//! memory-mapped snapshot (`minctx-index`); every accessor below works
//! identically on both backings.
//!
//! Attribute nodes (an extension over the paper's element-only examples) are
//! stored inline immediately after their owner element and before its first
//! child, which is exactly their XPath 1.0 document-order position.  They are
//! excluded from all tree axes and reachable only via the `attribute` axis.

use crate::name::{Name, NameTable};
use crate::node::{self, NodeId, NodeKind};
use crate::nodeset::NodeSet;
use crate::store::{self, Col, ColumnError, DocStore, RawColumns, StableBytes};
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) const NONE: u32 = u32::MAX;

/// An in-memory XML document; the node domain `dom` of the paper.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) names: NameTable,
    pub(crate) store: DocStore,
    /// Process-unique identity of this document's *content* (clones share
    /// it), used as a compiled-query cache key.  Snapshot-backed documents
    /// carry a content-derived stamp with the high bit set, disjoint from
    /// the builder's counter stamps (see `minctx-index`).
    pub(crate) stamp: u64,
}

// The concurrent-serving Send/Sync audit (DESIGN.md "Concurrent
// service"): one `Document` is shared immutably across worker threads,
// so the whole storage stack must be thread-safe — the name table is
// append-frozen Vec/HashMap (its debug lookup counter is atomic), the
// columns carry their own `unsafe impl`s justified in `store.rs`, and
// node sets are plain sorted vectors.  Compile-time checks so a future
// `Rc`/`RefCell`/`Cell` slipping in fails here, not in a consumer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Document>();
    assert_send_sync::<NameTable>();
    assert_send_sync::<NodeSet>();
    assert_send_sync::<crate::axes::Scratch>();
};

impl Document {
    /// Number of nodes in `dom` (including the root node and any attribute
    /// nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the document is empty.  A well-formed document never is: it
    /// has at least the root node and the document element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// The paper's `|D|`: node count plus character data size.
    pub fn size(&self) -> usize {
        self.len() + self.text_bytes()
    }

    /// Total size of the character data (the text heap), counted into
    /// `|D|`.
    #[inline]
    pub fn text_bytes(&self) -> usize {
        self.store.text_heap.len()
    }

    /// The document root node (the XPath `/` node).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// The document element (the unique element child of the root).
    pub fn document_element(&self) -> NodeId {
        self.children(self.root())
            .find(|&c| self.kind(c).is_element())
            .expect("well-formed document has a document element")
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        NodeKind::unpack(self.store.kinds[n.index()])
    }

    /// The interned label of an element / PI target / attribute name.
    #[inline]
    pub fn label(&self, n: NodeId) -> Option<Name> {
        self.kind(n).name()
    }

    /// The label of a node as a string, if it has one.
    pub fn label_str(&self, n: NodeId) -> Option<&str> {
        self.label(n).map(|nm| self.names.resolve(nm))
    }

    /// The name table (Σ).
    #[inline]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Interns a name into this document's table (used when compiling
    /// queries so node tests become integer comparisons).
    pub fn intern(&mut self, s: &str) -> Name {
        self.names.intern(s)
    }

    /// Looks a name up without interning.
    pub fn find_name(&self, s: &str) -> Option<Name> {
        self.names.get(s)
    }

    /// The element nodes labeled `name`, sorted in document order.
    ///
    /// Names interned after the document was built (e.g. while compiling a
    /// query whose tests do not occur in the document) have no postings
    /// and yield the empty slice.
    #[inline]
    pub fn element_postings(&self, name: Name) -> &[NodeId] {
        DocStore::postings(&self.store.elem_off, &self.store.elem_post, name.index())
    }

    /// The attribute nodes named `name`, sorted in document order.
    #[inline]
    pub fn attribute_postings(&self, name: Name) -> &[NodeId] {
        DocStore::postings(&self.store.attr_off, &self.store.attr_post, name.index())
    }

    /// A process-unique identity for this document's content.  Clones keep
    /// the stamp (their arenas are identical); any two documents built
    /// independently get distinct stamps, and snapshot-backed documents
    /// carry their snapshot's content-derived stamp (stable across
    /// reopens).  Compiled-query caches key on it.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The parent of a node; `None` for the root.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.store.parent[n.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// First non-attribute child.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.store.first_child[n.index()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Last non-attribute child.
    #[inline]
    pub fn last_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.store.last_child[n.index()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Next sibling (attribute nodes are not part of sibling chains).
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.store.next_sibling[n.index()];
        (s != NONE).then_some(NodeId(s))
    }

    /// Previous sibling.
    #[inline]
    pub fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.store.prev_sibling[n.index()];
        (s != NONE).then_some(NodeId(s))
    }

    /// One past the pre-order index of the last descendant of `n`
    /// (attribute nodes included in the range).
    #[inline]
    pub fn subtree_end(&self, n: NodeId) -> usize {
        self.store.subtree_end[n.index()] as usize
    }

    /// Whether `a` is a proper ancestor of `d` — O(1).
    #[inline]
    pub fn is_ancestor_of(&self, a: NodeId, d: NodeId) -> bool {
        a < d && d.index() < self.subtree_end(a)
    }

    /// Content of a text / comment / PI / attribute node (empty for
    /// elements and the root).
    #[inline]
    pub fn content(&self, n: NodeId) -> &str {
        self.store.content_span(n.index())
    }

    /// The raw parent column (axis-kernel hot loops hoist this once per
    /// sweep instead of re-deref'ing per node).
    #[inline]
    pub(crate) fn parent_raw(&self) -> &[u32] {
        &self.store.parent
    }

    /// The raw packed-kind column (see [`NodeKind::pack`]).
    #[inline]
    pub(crate) fn kinds_raw(&self) -> &[u32] {
        &self.store.kinds
    }

    /// Iterates the non-attribute children of `n` in document order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.store.first_child[n.index()],
        }
    }

    /// Iterates the attribute nodes of `n` in document order.
    ///
    /// Attributes are stored contiguously right after their element.
    pub fn attributes(&self, n: NodeId) -> Attributes<'_> {
        let start = if self.kind(n).is_element() {
            n.index() + 1
        } else {
            // Non-elements have no attributes; empty range.
            self.len()
        };
        Attributes {
            doc: self,
            next: start,
        }
    }

    /// The value of the attribute named `name` on element `n`.
    pub fn attribute_value(&self, n: NodeId, name: &str) -> Option<&str> {
        let nm = self.names.get(name)?;
        self.attributes(n)
            .find_map(|a| (self.label(a) == Some(nm)).then(|| self.content(a)))
    }

    /// Iterates every node in document order (pre-order), attributes
    /// included.
    pub fn all_nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from_index)
    }

    /// Iterates the proper descendants of `n` in document order, attribute
    /// nodes excluded.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (n.index() + 1..self.subtree_end(n))
            .map(NodeId::from_index)
            .filter(move |&d| !self.kind(d).is_attribute())
    }

    /// `strval : dom → string` (Section 2.1): for elements and the root,
    /// the concatenation of all descendant text nodes; for other nodes,
    /// their own content.
    pub fn string_value(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.string_value_into(n, &mut out);
        out
    }

    /// Appends the string value of `n` to `out` without allocating a fresh
    /// `String` (hot path for comparisons over many nodes).
    pub fn string_value_into(&self, n: NodeId, out: &mut String) {
        match self.kind(n) {
            NodeKind::Root | NodeKind::Element(_) => {
                let range = n.index() + 1..self.subtree_end(n);
                for (d, &word) in self.kinds_raw()[range.clone()].iter().enumerate() {
                    if word & node::KIND_TAG_MASK == node::TAG_TEXT {
                        out.push_str(self.store.content_span(range.start + d));
                    }
                }
            }
            _ => out.push_str(self.content(n)),
        }
    }

    /// The sorted id-index entries `(key, element)` — the keys are the id
    /// attributes' content spans in the text heap.
    pub(crate) fn id_entries(&self) -> impl ExactSizeIterator<Item = (&str, NodeId)> {
        self.store
            .id_attrs
            .iter()
            .zip(self.store.id_elems.iter())
            .map(|(&a, &e)| (self.store.content_span(a as usize), NodeId(e)))
    }

    /// Binary-searches the id index (sorted by key bytes).
    fn id_entry(&self, key: &str) -> Option<usize> {
        self.store
            .id_attrs
            .binary_search_by(|&a| {
                self.store
                    .content_span(a as usize)
                    .as_bytes()
                    .cmp(key.as_bytes())
            })
            .ok()
    }

    /// `deref_ids : string → 2^dom` (Section 2.1): interprets the input as a
    /// whitespace-separated list of keys and returns the set of elements
    /// whose `id` attribute matches one of them.
    pub fn deref_ids(&self, s: &str) -> NodeSet {
        let mut out = Vec::new();
        for token in s.split_ascii_whitespace() {
            if let Some(i) = self.id_entry(token) {
                out.push(NodeId(self.store.id_elems[i]));
            }
        }
        NodeSet::from_unsorted(out)
    }

    /// Looks up a single element by its `id` attribute value.
    pub fn element_by_id(&self, id: &str) -> Option<NodeId> {
        self.id_entry(id).map(|i| NodeId(self.store.id_elems[i]))
    }

    /// The inverse of the `id` step: `{x ∈ dom | deref_ids(strval(x)) ∩ Y ≠ ∅}`,
    /// computed in `O(|D|)` as required by Section 4 (backward propagation
    /// over the id-"axis").
    ///
    /// For elements and the root the string value is the concatenation of
    /// descendant text; a text node containing a matching token therefore
    /// contributes every ancestor.  Attribute / comment / PI nodes match on
    /// their own content.  (Tokens spanning adjacent text-node boundaries
    /// are tokenized per text node; see DESIGN.md.)
    pub fn id_preimage(&self, targets: &NodeSet) -> NodeSet {
        // Which id strings resolve into `targets`?
        let mut wanted: HashMap<&str, ()> = HashMap::new();
        for (key, node) in self.id_entries() {
            if targets.contains(node) {
                wanted.insert(key, ());
            }
        }
        if wanted.is_empty() {
            return NodeSet::new();
        }
        let parent = self.parent_raw();
        let mut hit = vec![false; self.len()];
        for n in 0..self.len() {
            if self.store.content_is_empty(n) {
                continue;
            }
            let matches = self
                .store
                .content_span(n)
                .split_ascii_whitespace()
                .any(|tok| wanted.contains_key(tok));
            if !matches {
                continue;
            }
            match self.kind(NodeId::from_index(n)) {
                NodeKind::Text => {
                    // Contributes to the strval of every ancestor.
                    hit[n] = true;
                    let mut p = parent[n];
                    while p != NONE && !hit[p as usize] {
                        hit[p as usize] = true;
                        p = parent[p as usize];
                    }
                }
                NodeKind::Attribute(_) | NodeKind::Comment | NodeKind::Pi(_) => {
                    hit[n] = true;
                }
                _ => {}
            }
        }
        // Text nodes themselves do have string values containing the token,
        // so they are legitimately in the preimage, as are their ancestors.
        NodeSet::from_sorted_vec(
            hit.iter()
                .enumerate()
                .filter(|&(_, &h)| h)
                .map(|(i, _)| NodeId::from_index(i))
                .collect(),
        )
    }

    /// Number of element nodes (the paper's `dom` in its examples).
    pub fn element_count(&self) -> usize {
        // The element postings index every element exactly once.
        self.store.elem_post.len()
    }

    /// Borrowed views of every storage column — the exchange surface the
    /// `minctx-index` snapshot writer serializes.  See
    /// [`RawColumns`] for the per-column layout contract.
    pub fn raw_columns(&self) -> RawColumns<'_> {
        let s = &self.store;
        RawColumns {
            kinds: &s.kinds,
            parent: &s.parent,
            first_child: &s.first_child,
            last_child: &s.last_child,
            next_sibling: &s.next_sibling,
            prev_sibling: &s.prev_sibling,
            subtree_end: &s.subtree_end,
            text_off: &s.text_off,
            text_heap: &s.text_heap,
            elem_off: &s.elem_off,
            elem_post: &s.elem_post,
            attr_off: &s.attr_off,
            attr_post: &s.attr_post,
            id_attrs: &s.id_attrs,
            id_elems: &s.id_elems,
        }
    }

    /// Adopts columns borrowed from a mapped byte region (`keep` must own
    /// the memory all slices point into) — the zero-copy open path of
    /// `minctx-index`.
    ///
    /// Every document invariant the accessors rely on is validated here,
    /// in `O(|D|)`, so a column set that decodes structurally but
    /// violates the data model (dangling links, non-monotone offsets,
    /// invalid UTF-8, unsorted postings) is rejected with a
    /// [`ColumnError`] instead of panicking later.
    pub fn from_mapped_columns(
        cols: RawColumns<'_>,
        names: NameTable,
        stamp: u64,
        keep: Arc<dyn StableBytes>,
    ) -> Result<Document, ColumnError> {
        validate_columns(&cols, &names)?;
        let region = keep.bytes();
        let contained = store::slice_within(cols.text_heap, region)
            && [
                cols.kinds,
                cols.parent,
                cols.first_child,
                cols.last_child,
                cols.next_sibling,
                cols.prev_sibling,
                cols.subtree_end,
                cols.text_off,
                cols.elem_off,
                cols.elem_post,
                cols.attr_off,
                cols.attr_post,
                cols.id_attrs,
                cols.id_elems,
            ]
            .iter()
            .all(|s| store::slice_within(s, region));
        if !contained {
            return Err(ColumnError::new(
                "a column slice lies outside the backing byte region",
            ));
        }
        let store = DocStore {
            kinds: Col::borrowed(cols.kinds, &keep),
            parent: Col::borrowed(cols.parent, &keep),
            first_child: Col::borrowed(cols.first_child, &keep),
            last_child: Col::borrowed(cols.last_child, &keep),
            next_sibling: Col::borrowed(cols.next_sibling, &keep),
            prev_sibling: Col::borrowed(cols.prev_sibling, &keep),
            subtree_end: Col::borrowed(cols.subtree_end, &keep),
            text_off: Col::borrowed(cols.text_off, &keep),
            text_heap: Col::borrowed(cols.text_heap, &keep),
            elem_off: Col::borrowed(cols.elem_off, &keep),
            elem_post: Col::borrowed(cols.elem_post, &keep),
            attr_off: Col::borrowed(cols.attr_off, &keep),
            attr_post: Col::borrowed(cols.attr_post, &keep),
            id_attrs: Col::borrowed(cols.id_attrs, &keep),
            id_elems: Col::borrowed(cols.id_elems, &keep),
        };
        Ok(Document {
            names,
            store,
            stamp,
        })
    }

    /// A debug rendering of the tree structure, one node per line.
    pub fn debug_tree(&self) -> String {
        let mut out = String::new();
        let mut depth = vec![0usize; self.len()];
        for n in self.all_nodes() {
            let i = n.index();
            if let Some(p) = self.parent(n) {
                depth[i] = depth[p.index()] + 1;
            }
            for _ in 0..depth[i] {
                out.push_str("  ");
            }
            match self.kind(n) {
                NodeKind::Root => out.push_str("#root"),
                NodeKind::Element(nm) => {
                    out.push('<');
                    out.push_str(self.names.resolve(nm));
                    out.push('>');
                }
                NodeKind::Text => {
                    out.push_str(&format!("#text {:?}", self.content(n)));
                }
                NodeKind::Comment => {
                    out.push_str(&format!("#comment {:?}", self.content(n)));
                }
                NodeKind::Pi(nm) => {
                    out.push_str(&format!(
                        "#pi {} {:?}",
                        self.names.resolve(nm),
                        self.content(n)
                    ));
                }
                NodeKind::Attribute(nm) => {
                    out.push_str(&format!(
                        "@{}={:?}",
                        self.names.resolve(nm),
                        self.content(n)
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The full invariant sweep behind [`Document::from_mapped_columns`].
fn validate_columns(cols: &RawColumns<'_>, names: &NameTable) -> Result<(), ColumnError> {
    let err = |msg: String| Err(ColumnError::new(msg));
    let n = cols.kinds.len();
    if n < 2 {
        return err(format!(
            "document has {n} nodes; a well-formed document has at least root + document element"
        ));
    }
    for (name, col) in [
        ("parent", cols.parent),
        ("first_child", cols.first_child),
        ("last_child", cols.last_child),
        ("next_sibling", cols.next_sibling),
        ("prev_sibling", cols.prev_sibling),
        ("subtree_end", cols.subtree_end),
    ] {
        if col.len() != n {
            return err(format!(
                "column {name} has {} entries, expected {n}",
                col.len()
            ));
        }
    }
    // Structure links: in range or NONE; subtree ranges within the arena.
    if cols.kinds[0] & node::KIND_TAG_MASK != node::TAG_ROOT || cols.parent[0] != NONE {
        return err("node 0 is not a parentless root node".to_string());
    }
    let name_count = names.len() as u32;
    for i in 0..n {
        let word = cols.kinds[i];
        let tag = word & node::KIND_TAG_MASK;
        let nm = word >> node::KIND_TAG_BITS;
        let named = matches!(tag, node::TAG_ELEMENT | node::TAG_PI | node::TAG_ATTRIBUTE);
        if tag > node::TAG_ATTRIBUTE || (named && nm >= name_count) || (!named && nm != 0) {
            return err(format!("node {i} has invalid packed kind word {word:#x}"));
        }
        // Pre-order direction, not just range: parents and previous
        // siblings strictly precede a node, children and next siblings
        // strictly follow it.  Beyond catching corruption, this is what
        // makes every link *traversal* provably terminate — a crafted
        // snapshot with a sibling or parent cycle must fail here, not
        // hang the first `children()` walk.
        let iu = i as u32;
        for (what, v, forward) in [
            ("parent", cols.parent[i], false),
            ("first_child", cols.first_child[i], true),
            ("last_child", cols.last_child[i], true),
            ("next_sibling", cols.next_sibling[i], true),
            ("prev_sibling", cols.prev_sibling[i], false),
        ] {
            if v == NONE {
                continue;
            }
            if v as usize >= n || (forward && v <= iu) || (!forward && v >= iu) {
                return err(format!(
                    "node {i}: {what} link {v} out of range or against pre-order"
                ));
            }
        }
        let se = cols.subtree_end[i] as usize;
        if se <= i || se > n {
            return err(format!("node {i}: subtree_end {se} out of range"));
        }
    }
    // Text heap: monotone offsets on UTF-8 char boundaries.
    if cols.text_off.len() != n + 1 {
        return err(format!(
            "text_off has {} entries, expected {}",
            cols.text_off.len(),
            n + 1
        ));
    }
    let heap = match std::str::from_utf8(cols.text_heap) {
        Ok(h) => h,
        Err(e) => return err(format!("text heap is not valid UTF-8: {e}")),
    };
    let mut prev = 0u32;
    for (i, &off) in cols.text_off.iter().enumerate() {
        if off < prev || off as usize > heap.len() || !heap.is_char_boundary(off as usize) {
            return err(format!(
                "text_off[{i}] = {off} is not a monotone char boundary"
            ));
        }
        prev = off;
    }
    if cols.text_off[n] as usize != heap.len() {
        return err("final text offset does not cover the text heap".to_string());
    }
    // CSR postings: offset arrays sized to the name table, monotone and
    // covering; every entry sorted, in range, and naming a node of
    // exactly this family and label; group sizes matching the per-name
    // counts recomputed from the kinds column.  Membership + equal
    // counts together mean each group is *exactly* the set of matching
    // nodes — a crafted snapshot cannot make the name-test fast paths
    // (or `element_count`) silently disagree with the kind sweeps.
    for (what, tag, off, posts) in [
        ("element", node::TAG_ELEMENT, cols.elem_off, cols.elem_post),
        (
            "attribute",
            node::TAG_ATTRIBUTE,
            cols.attr_off,
            cols.attr_post,
        ),
    ] {
        if off.len() != names.len() + 1 {
            return err(format!(
                "{what} postings offsets have {} entries, expected {}",
                off.len(),
                names.len() + 1
            ));
        }
        let mut prev = 0u32;
        for &o in off {
            if o < prev || o as usize > posts.len() {
                return err(format!("{what} postings offsets are not monotone"));
            }
            prev = o;
        }
        if off.last().copied().unwrap_or(0) as usize != posts.len() {
            return err(format!("{what} postings offsets do not cover the postings"));
        }
        let mut last_in_group = None;
        let mut group = 0usize;
        for (i, &p) in posts.iter().enumerate() {
            while off[group + 1] as usize <= i {
                group += 1;
                last_in_group = None;
            }
            let expected_word = tag | ((group as u32) << node::KIND_TAG_BITS);
            if p as usize >= n
                || cols.kinds[p as usize] != expected_word
                || last_in_group.is_some_and(|l| p <= l)
            {
                return err(format!(
                    "{what} postings entry {i} is out of range, unsorted, or not a \
                     matching node"
                ));
            }
            last_in_group = Some(p);
        }
        let mut counts = vec![0u32; names.len()];
        for &word in cols.kinds {
            if word & node::KIND_TAG_MASK == tag {
                counts[(word >> node::KIND_TAG_BITS) as usize] += 1;
            }
        }
        for (g, &c) in counts.iter().enumerate() {
            if off[g + 1] - off[g] != c {
                return err(format!(
                    "{what} postings for name {g} have {} entries, the kinds column has {c}",
                    off[g + 1] - off[g]
                ));
            }
        }
    }
    // Id index: parallel, in-range, sorted (strictly — keys are unique)
    // by key bytes.
    if cols.id_attrs.len() != cols.id_elems.len() {
        return err("id index columns have mismatched lengths".to_string());
    }
    let span = |a: u32| -> &str {
        let s = cols.text_off[a as usize] as usize;
        let e = cols.text_off[a as usize + 1] as usize;
        &heap[s..e]
    };
    for (i, (&a, &e)) in cols.id_attrs.iter().zip(cols.id_elems).enumerate() {
        if a as usize >= n || e as usize >= n {
            return err(format!("id index entry {i} out of range"));
        }
        if i > 0 && span(cols.id_attrs[i - 1]) >= span(a) {
            return err(format!(
                "id index keys are not strictly sorted at entry {i}"
            ));
        }
    }
    Ok(())
}

/// Iterator over the non-attribute children of a node.
pub struct Children<'d> {
    doc: &'d Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let cur = NodeId(self.next);
        self.next = self.doc.store.next_sibling[cur.index()];
        Some(cur)
    }
}

/// Iterator over the attribute nodes of an element.
pub struct Attributes<'d> {
    doc: &'d Document,
    next: usize,
}

impl Iterator for Attributes<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next >= self.doc.len() {
            return None;
        }
        let n = NodeId::from_index(self.next);
        if self.doc.kind(n).is_attribute() {
            self.next += 1;
            Some(n)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use crate::NodeKind;

    #[test]
    fn structure_of_small_document() {
        let doc = parse("<a><b/><c>hi</c></a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.kind(root), NodeKind::Root);
        let a = doc.document_element();
        assert_eq!(doc.label_str(a), Some("a"));
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.label_str(kids[0]), Some("b"));
        assert_eq!(doc.label_str(kids[1]), Some("c"));
        assert_eq!(doc.parent(kids[0]), Some(a));
        assert_eq!(doc.next_sibling(kids[0]), Some(kids[1]));
        assert_eq!(doc.prev_sibling(kids[1]), Some(kids[0]));
        assert_eq!(doc.prev_sibling(kids[0]), None);
        assert_eq!(doc.first_child(a), Some(kids[0]));
        assert_eq!(doc.last_child(a), Some(kids[1]));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = parse("<a>x<b>y</b>z</a>").unwrap();
        let a = doc.document_element();
        assert_eq!(doc.string_value(a), "xyz");
        assert_eq!(doc.string_value(doc.root()), "xyz");
        let b = doc.children(a).nth(1).unwrap();
        assert_eq!(doc.string_value(b), "y");
    }

    #[test]
    fn attribute_values() {
        let doc = parse(r#"<a id="1" lang="en"><b id="2"/></a>"#).unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "id"), Some("1"));
        assert_eq!(doc.attribute_value(a, "lang"), Some("en"));
        assert_eq!(doc.attribute_value(a, "missing"), None);
        let attrs: Vec<_> = doc.attributes(a).collect();
        assert_eq!(attrs.len(), 2);
        assert!(doc.kind(attrs[0]).is_attribute());
        assert_eq!(doc.string_value(attrs[0]), "1");
    }

    #[test]
    fn deref_ids_resolves_whitespace_separated_keys() {
        let doc = parse(r#"<a id="10"><b id="11"/><c id="12"/></a>"#).unwrap();
        let set = doc.deref_ids("12  10 nonexistent");
        assert_eq!(set.len(), 2);
        let a = doc.document_element();
        assert!(set.contains(a));
        assert_eq!(
            doc.element_by_id("11").map(|n| doc.label_str(n)),
            Some(Some("b"))
        );
    }

    #[test]
    fn id_preimage_via_text() {
        // <a id="10"><b id="11">10</b><c id="12">99</c></a>
        // strval(b) = "10" references a; so b, a (ancestor incl. of the text),
        // the root, and the text node itself are in the preimage of {a}.
        let doc = parse(r#"<a id="10"><b id="11">10</b><c id="12">99</c></a>"#).unwrap();
        let a = doc.document_element();
        let targets = crate::NodeSet::from_unsorted(vec![a]);
        let pre = doc.id_preimage(&targets);
        let b = doc.children(a).next().unwrap();
        assert!(pre.contains(b));
        assert!(pre.contains(a)); // strval(a) = "1099" .. careful!
    }

    #[test]
    fn id_preimage_tokenizes_per_text_node() {
        // strval(a) = "10" from a single text node inside b.
        let doc = parse(r#"<a id="7"><b>7</b></a>"#).unwrap();
        let a = doc.document_element();
        let targets = crate::NodeSet::from_unsorted(vec![a]);
        let pre = doc.id_preimage(&targets);
        assert!(pre.contains(a));
        assert!(pre.contains(doc.root()));
    }

    #[test]
    fn is_ancestor_and_subtree_ranges() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();
        let d = doc.last_child(a).unwrap();
        assert!(doc.is_ancestor_of(a, c));
        assert!(doc.is_ancestor_of(b, c));
        assert!(!doc.is_ancestor_of(c, b));
        assert!(!doc.is_ancestor_of(b, d));
        assert!(!doc.is_ancestor_of(b, b));
        assert!(doc.is_ancestor_of(doc.root(), a));
    }

    #[test]
    fn descendants_exclude_attributes() {
        let doc = parse(r#"<a x="1"><b y="2">t</b></a>"#).unwrap();
        let a = doc.document_element();
        let ds: Vec<_> = doc.descendants(a).collect();
        // b and the text node; not the attribute nodes.
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|&d| !doc.kind(d).is_attribute()));
    }

    #[test]
    fn size_counts_nodes_and_text() {
        let doc = parse("<a>hello</a>").unwrap();
        // root + a + text = 3 nodes, 5 bytes of text.
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.size(), 8);
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn debug_tree_renders() {
        let doc = parse(r#"<a id="1"><b/>txt</a>"#).unwrap();
        let t = doc.debug_tree();
        assert!(t.contains("#root"));
        assert!(t.contains("<a>"));
        assert!(t.contains("@id=\"1\""));
        assert!(t.contains("#text \"txt\""));
    }
}

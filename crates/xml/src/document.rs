//! The arena-based XML document: the paper's `dom`.
//!
//! A [`Document`] stores all nodes in a struct-of-arrays arena in *pre-order*
//! (document order).  [`NodeId`] is the pre-order index, so:
//!
//! * `<doc` (document order, Section 2.1) is `NodeId` comparison,
//! * the subtree of `x` is the contiguous range
//!   `x.index()+1 .. subtree_end(x)`,
//! * per-node tables elsewhere in the engine are dense arrays.
//!
//! Attribute nodes (an extension over the paper's element-only examples) are
//! stored inline immediately after their owner element and before its first
//! child, which is exactly their XPath 1.0 document-order position.  They are
//! excluded from all tree axes and reachable only via the `attribute` axis.

use crate::name::{Name, NameTable};
use crate::node::{NodeId, NodeKind};
use crate::nodeset::NodeSet;
use std::collections::HashMap;

pub(crate) const NONE: u32 = u32::MAX;

/// An in-memory XML document; the node domain `dom` of the paper.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) names: NameTable,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) parent: Vec<u32>,
    pub(crate) first_child: Vec<u32>,
    pub(crate) last_child: Vec<u32>,
    pub(crate) next_sibling: Vec<u32>,
    pub(crate) prev_sibling: Vec<u32>,
    pub(crate) subtree_end: Vec<u32>,
    /// Content of text / comment / PI / attribute nodes; empty for others.
    pub(crate) content: Vec<Box<str>>,
    /// Map from `id` attribute values to their element.
    pub(crate) id_index: HashMap<Box<str>, NodeId>,
    /// Total size of the character data, counted into `|D|`.
    pub(crate) text_bytes: usize,
    /// Label postings: for each interned [`Name`], the element nodes with
    /// that tag, sorted in document order.  Built once by the builder; the
    /// axis kernels' name-test fast paths walk these instead of sweeping
    /// `dom` (see DESIGN.md).
    pub(crate) element_postings: Vec<Vec<NodeId>>,
    /// Postings for attribute nodes, keyed by attribute name.
    pub(crate) attribute_postings: Vec<Vec<NodeId>>,
    /// Process-unique identity of this document's *content* (clones share
    /// it), used as a compiled-query cache key.
    pub(crate) stamp: u64,
}

impl Document {
    /// Number of nodes in `dom` (including the root node and any attribute
    /// nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the document is empty.  A well-formed document never is: it
    /// has at least the root node and the document element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The paper's `|D|`: node count plus character data size.
    pub fn size(&self) -> usize {
        self.len() + self.text_bytes
    }

    /// The document root node (the XPath `/` node).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// The document element (the unique element child of the root).
    pub fn document_element(&self) -> NodeId {
        self.children(self.root())
            .find(|&c| self.kind(c).is_element())
            .expect("well-formed document has a document element")
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// The interned label of an element / PI target / attribute name.
    #[inline]
    pub fn label(&self, n: NodeId) -> Option<Name> {
        self.kinds[n.index()].name()
    }

    /// The label of a node as a string, if it has one.
    pub fn label_str(&self, n: NodeId) -> Option<&str> {
        self.label(n).map(|nm| self.names.resolve(nm))
    }

    /// The name table (Σ).
    #[inline]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Interns a name into this document's table (used when compiling
    /// queries so node tests become integer comparisons).
    pub fn intern(&mut self, s: &str) -> Name {
        self.names.intern(s)
    }

    /// Looks a name up without interning.
    pub fn find_name(&self, s: &str) -> Option<Name> {
        self.names.get(s)
    }

    /// The element nodes labeled `name`, sorted in document order.
    ///
    /// Names interned after the document was built (e.g. while compiling a
    /// query whose tests do not occur in the document) have no postings
    /// and yield the empty slice.
    #[inline]
    pub fn element_postings(&self, name: Name) -> &[NodeId] {
        self.element_postings
            .get(name.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The attribute nodes named `name`, sorted in document order.
    #[inline]
    pub fn attribute_postings(&self, name: Name) -> &[NodeId] {
        self.attribute_postings
            .get(name.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A process-unique identity for this document's content.  Clones keep
    /// the stamp (their arenas are identical); any two documents built
    /// independently get distinct stamps.  Compiled-query caches key on it.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The parent of a node; `None` for the root.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parent[n.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// First non-attribute child.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.first_child[n.index()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Last non-attribute child.
    #[inline]
    pub fn last_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.last_child[n.index()];
        (c != NONE).then_some(NodeId(c))
    }

    /// Next sibling (attribute nodes are not part of sibling chains).
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.next_sibling[n.index()];
        (s != NONE).then_some(NodeId(s))
    }

    /// Previous sibling.
    #[inline]
    pub fn prev_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.prev_sibling[n.index()];
        (s != NONE).then_some(NodeId(s))
    }

    /// One past the pre-order index of the last descendant of `n`
    /// (attribute nodes included in the range).
    #[inline]
    pub fn subtree_end(&self, n: NodeId) -> usize {
        self.subtree_end[n.index()] as usize
    }

    /// Whether `a` is a proper ancestor of `d` — O(1).
    #[inline]
    pub fn is_ancestor_of(&self, a: NodeId, d: NodeId) -> bool {
        a < d && d.index() < self.subtree_end(a)
    }

    /// Content of a text / comment / PI / attribute node (empty for
    /// elements and the root).
    #[inline]
    pub fn content(&self, n: NodeId) -> &str {
        &self.content[n.index()]
    }

    /// Iterates the non-attribute children of `n` in document order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.first_child[n.index()],
        }
    }

    /// Iterates the attribute nodes of `n` in document order.
    ///
    /// Attributes are stored contiguously right after their element.
    pub fn attributes(&self, n: NodeId) -> Attributes<'_> {
        let start = if self.kind(n).is_element() {
            n.index() + 1
        } else {
            // Non-elements have no attributes; empty range.
            self.len()
        };
        Attributes {
            doc: self,
            next: start,
        }
    }

    /// The value of the attribute named `name` on element `n`.
    pub fn attribute_value(&self, n: NodeId, name: &str) -> Option<&str> {
        let nm = self.names.get(name)?;
        self.attributes(n)
            .find_map(|a| (self.label(a) == Some(nm)).then(|| self.content(a)))
    }

    /// Iterates every node in document order (pre-order), attributes
    /// included.
    pub fn all_nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from_index)
    }

    /// Iterates the proper descendants of `n` in document order, attribute
    /// nodes excluded.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (n.index() + 1..self.subtree_end(n))
            .map(NodeId::from_index)
            .filter(move |&d| !self.kind(d).is_attribute())
    }

    /// `strval : dom → string` (Section 2.1): for elements and the root,
    /// the concatenation of all descendant text nodes; for other nodes,
    /// their own content.
    pub fn string_value(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.string_value_into(n, &mut out);
        out
    }

    /// Appends the string value of `n` to `out` without allocating a fresh
    /// `String` (hot path for comparisons over many nodes).
    pub fn string_value_into(&self, n: NodeId, out: &mut String) {
        match self.kind(n) {
            NodeKind::Root | NodeKind::Element(_) => {
                for d in n.index() + 1..self.subtree_end(n) {
                    if self.kinds[d].is_text() {
                        out.push_str(&self.content[d]);
                    }
                }
            }
            _ => out.push_str(self.content(n)),
        }
    }

    /// `deref_ids : string → 2^dom` (Section 2.1): interprets the input as a
    /// whitespace-separated list of keys and returns the set of elements
    /// whose `id` attribute matches one of them.
    pub fn deref_ids(&self, s: &str) -> NodeSet {
        let mut out = Vec::new();
        for token in s.split_ascii_whitespace() {
            if let Some(&n) = self.id_index.get(token) {
                out.push(n);
            }
        }
        NodeSet::from_unsorted(out)
    }

    /// Looks up a single element by its `id` attribute value.
    pub fn element_by_id(&self, id: &str) -> Option<NodeId> {
        self.id_index.get(id).copied()
    }

    /// The inverse of the `id` step: `{x ∈ dom | deref_ids(strval(x)) ∩ Y ≠ ∅}`,
    /// computed in `O(|D|)` as required by Section 4 (backward propagation
    /// over the id-"axis").
    ///
    /// For elements and the root the string value is the concatenation of
    /// descendant text; a text node containing a matching token therefore
    /// contributes every ancestor.  Attribute / comment / PI nodes match on
    /// their own content.  (Tokens spanning adjacent text-node boundaries
    /// are tokenized per text node; see DESIGN.md.)
    pub fn id_preimage(&self, targets: &NodeSet) -> NodeSet {
        // Which id strings resolve into `targets`?
        let mut wanted: HashMap<&str, ()> = HashMap::new();
        for (key, &node) in &self.id_index {
            if targets.contains(node) {
                wanted.insert(key, ());
            }
        }
        if wanted.is_empty() {
            return NodeSet::new();
        }
        let mut hit = vec![false; self.len()];
        for n in 0..self.len() {
            if self.content[n].is_empty() {
                continue;
            }
            let matches = self.content[n]
                .split_ascii_whitespace()
                .any(|tok| wanted.contains_key(tok));
            if !matches {
                continue;
            }
            match self.kinds[n] {
                NodeKind::Text => {
                    // Contributes to the strval of every ancestor.
                    hit[n] = true;
                    let mut p = self.parent[n];
                    while p != NONE && !hit[p as usize] {
                        hit[p as usize] = true;
                        p = self.parent[p as usize];
                    }
                }
                NodeKind::Attribute(_) | NodeKind::Comment | NodeKind::Pi(_) => {
                    hit[n] = true;
                }
                _ => {}
            }
        }
        // Text nodes themselves do have string values containing the token,
        // so they are legitimately in the preimage, as are their ancestors.
        NodeSet::from_sorted_vec(
            hit.iter()
                .enumerate()
                .filter(|&(_, &h)| h)
                .map(|(i, _)| NodeId::from_index(i))
                .collect(),
        )
    }

    /// Number of element nodes (the paper's `dom` in its examples).
    pub fn element_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_element()).count()
    }

    /// A debug rendering of the tree structure, one node per line.
    pub fn debug_tree(&self) -> String {
        let mut out = String::new();
        let mut depth = vec![0usize; self.len()];
        for n in self.all_nodes() {
            let i = n.index();
            if let Some(p) = self.parent(n) {
                depth[i] = depth[p.index()] + 1;
            }
            for _ in 0..depth[i] {
                out.push_str("  ");
            }
            match self.kind(n) {
                NodeKind::Root => out.push_str("#root"),
                NodeKind::Element(nm) => {
                    out.push('<');
                    out.push_str(self.names.resolve(nm));
                    out.push('>');
                }
                NodeKind::Text => {
                    out.push_str(&format!("#text {:?}", self.content(n)));
                }
                NodeKind::Comment => {
                    out.push_str(&format!("#comment {:?}", self.content(n)));
                }
                NodeKind::Pi(nm) => {
                    out.push_str(&format!(
                        "#pi {} {:?}",
                        self.names.resolve(nm),
                        self.content(n)
                    ));
                }
                NodeKind::Attribute(nm) => {
                    out.push_str(&format!(
                        "@{}={:?}",
                        self.names.resolve(nm),
                        self.content(n)
                    ));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Iterator over the non-attribute children of a node.
pub struct Children<'d> {
    doc: &'d Document,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let cur = NodeId(self.next);
        self.next = self.doc.next_sibling[cur.index()];
        Some(cur)
    }
}

/// Iterator over the attribute nodes of an element.
pub struct Attributes<'d> {
    doc: &'d Document,
    next: usize,
}

impl Iterator for Attributes<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next >= self.doc.len() {
            return None;
        }
        let n = NodeId::from_index(self.next);
        if self.doc.kind(n).is_attribute() {
            self.next += 1;
            Some(n)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use crate::NodeKind;

    #[test]
    fn structure_of_small_document() {
        let doc = parse("<a><b/><c>hi</c></a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.kind(root), NodeKind::Root);
        let a = doc.document_element();
        assert_eq!(doc.label_str(a), Some("a"));
        let kids: Vec<_> = doc.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.label_str(kids[0]), Some("b"));
        assert_eq!(doc.label_str(kids[1]), Some("c"));
        assert_eq!(doc.parent(kids[0]), Some(a));
        assert_eq!(doc.next_sibling(kids[0]), Some(kids[1]));
        assert_eq!(doc.prev_sibling(kids[1]), Some(kids[0]));
        assert_eq!(doc.prev_sibling(kids[0]), None);
        assert_eq!(doc.first_child(a), Some(kids[0]));
        assert_eq!(doc.last_child(a), Some(kids[1]));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = parse("<a>x<b>y</b>z</a>").unwrap();
        let a = doc.document_element();
        assert_eq!(doc.string_value(a), "xyz");
        assert_eq!(doc.string_value(doc.root()), "xyz");
        let b = doc.children(a).nth(1).unwrap();
        assert_eq!(doc.string_value(b), "y");
    }

    #[test]
    fn attribute_values() {
        let doc = parse(r#"<a id="1" lang="en"><b id="2"/></a>"#).unwrap();
        let a = doc.document_element();
        assert_eq!(doc.attribute_value(a, "id"), Some("1"));
        assert_eq!(doc.attribute_value(a, "lang"), Some("en"));
        assert_eq!(doc.attribute_value(a, "missing"), None);
        let attrs: Vec<_> = doc.attributes(a).collect();
        assert_eq!(attrs.len(), 2);
        assert!(doc.kind(attrs[0]).is_attribute());
        assert_eq!(doc.string_value(attrs[0]), "1");
    }

    #[test]
    fn deref_ids_resolves_whitespace_separated_keys() {
        let doc = parse(r#"<a id="10"><b id="11"/><c id="12"/></a>"#).unwrap();
        let set = doc.deref_ids("12  10 nonexistent");
        assert_eq!(set.len(), 2);
        let a = doc.document_element();
        assert!(set.contains(a));
        assert_eq!(
            doc.element_by_id("11").map(|n| doc.label_str(n)),
            Some(Some("b"))
        );
    }

    #[test]
    fn id_preimage_via_text() {
        // <a id="10"><b id="11">10</b><c id="12">99</c></a>
        // strval(b) = "10" references a; so b, a (ancestor incl. of the text),
        // the root, and the text node itself are in the preimage of {a}.
        let doc = parse(r#"<a id="10"><b id="11">10</b><c id="12">99</c></a>"#).unwrap();
        let a = doc.document_element();
        let targets = crate::NodeSet::from_unsorted(vec![a]);
        let pre = doc.id_preimage(&targets);
        let b = doc.children(a).next().unwrap();
        assert!(pre.contains(b));
        assert!(pre.contains(a)); // strval(a) = "1099" .. careful!
    }

    #[test]
    fn id_preimage_tokenizes_per_text_node() {
        // strval(a) = "10" from a single text node inside b.
        let doc = parse(r#"<a id="7"><b>7</b></a>"#).unwrap();
        let a = doc.document_element();
        let targets = crate::NodeSet::from_unsorted(vec![a]);
        let pre = doc.id_preimage(&targets);
        assert!(pre.contains(a));
        assert!(pre.contains(doc.root()));
    }

    #[test]
    fn is_ancestor_and_subtree_ranges() {
        let doc = parse("<a><b><c/></b><d/></a>").unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let c = doc.first_child(b).unwrap();
        let d = doc.last_child(a).unwrap();
        assert!(doc.is_ancestor_of(a, c));
        assert!(doc.is_ancestor_of(b, c));
        assert!(!doc.is_ancestor_of(c, b));
        assert!(!doc.is_ancestor_of(b, d));
        assert!(!doc.is_ancestor_of(b, b));
        assert!(doc.is_ancestor_of(doc.root(), a));
    }

    #[test]
    fn descendants_exclude_attributes() {
        let doc = parse(r#"<a x="1"><b y="2">t</b></a>"#).unwrap();
        let a = doc.document_element();
        let ds: Vec<_> = doc.descendants(a).collect();
        // b and the text node; not the attribute nodes.
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|&d| !doc.kind(d).is_attribute()));
    }

    #[test]
    fn size_counts_nodes_and_text() {
        let doc = parse("<a>hello</a>").unwrap();
        // root + a + text = 3 nodes, 5 bytes of text.
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.size(), 8);
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn debug_tree_renders() {
        let doc = parse(r#"<a id="1"><b/>txt</a>"#).unwrap();
        let t = doc.debug_tree();
        assert!(t.contains("#root"));
        assert!(t.contains("<a>"));
        assert!(t.contains("@id=\"1\""));
        assert!(t.contains("#text \"txt\""));
    }
}

//! Query-lifecycle tracing: a lightweight [`Recorder`]/span API with no
//! external dependencies (the same spirit as `minctx-serve`'s `sync`
//! facade — exactly the surface the workspace needs, nothing more).
//!
//! A [`Recorder`] is either *disabled* (the default everywhere) or wired
//! to a [`Sink`].  Instrumented code opens a [`Span`] per lifecycle
//! phase (parse → rewrite → compile → evaluate/stream → serve), attaches
//! attributes, and lets RAII report the span on drop.
//!
//! # The disabled path is near-zero
//!
//! `Recorder::span` on a disabled recorder builds `Span { data: None }` —
//! no clock read, no allocation, no atomic; attribute calls and the drop
//! are one untaken branch each.  The `obs_smoke` binary *measures* this:
//! engine throughput over the differential corpus with a disabled
//! recorder must be within 1% of the uninstrumented baseline.

use crate::registry::json_escape;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The query-lifecycle phases spans are reported under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexing + parsing + lowering an XPath string.
    Parse,
    /// The query-IR rewrite pipeline.
    Rewrite,
    /// Node-test resolution (`CompiledQuery` construction).
    Compile,
    /// Arena evaluation of a compiled query.
    Evaluate,
    /// One-pass streaming evaluation over XML text.
    Stream,
    /// One served request, end to end (queue wait included).
    Serve,
}

impl Phase {
    /// Stable lowercase name (JSON-lines `phase` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Rewrite => "rewrite",
            Phase::Compile => "compile",
            Phase::Evaluate => "evaluate",
            Phase::Stream => "stream",
            Phase::Serve => "serve",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One finished span, as delivered to a [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub phase: Phase,
    pub duration: Duration,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// The value of attribute `key`, if the span carries it.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Receives finished spans.  Implementations must tolerate concurrent
/// calls (spans finish on whatever thread ran the phase).
pub trait Sink: Send + Sync {
    fn record(&self, span: SpanRecord);
}

/// A handle instrumented code keeps; disabled by default everywhere.
/// Cloning shares the sink.
#[derive(Clone, Default)]
pub struct Recorder {
    sink: Option<Arc<dyn Sink>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: spans cost one untaken branch.
    pub fn disabled() -> Recorder {
        Recorder { sink: None }
    }

    /// A recorder delivering finished spans to `sink`.
    pub fn to_sink(sink: Arc<dyn Sink>) -> Recorder {
        Recorder { sink: Some(sink) }
    }

    /// Whether spans are actually recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span for `phase`.  Disabled recorders return an inert
    /// span without reading the clock.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span {
        Span {
            data: self.sink.as_ref().map(|sink| SpanData {
                sink: Arc::clone(sink),
                phase,
                start: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    }
}

struct SpanData {
    sink: Arc<dyn Sink>,
    phase: Phase,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// An in-flight span; reports itself to the recorder's sink on drop.
/// All methods are no-ops on a disabled recorder's span.
pub struct Span {
    data: Option<SpanData>,
}

impl Span {
    /// Attaches an integer attribute.
    #[inline]
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(d) = &mut self.data {
            d.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a string attribute, evaluating `value` only when the
    /// span is live (so disabled paths never format).
    #[inline]
    pub fn attr_str(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(d) = &mut self.data {
            d.attrs.push((key, AttrValue::Str(value())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let duration = d.start.elapsed();
            d.sink.record(SpanRecord {
                phase: d.phase,
                duration,
                attrs: d.attrs,
            });
        }
    }
}

/// A test/diagnostics sink that collects spans in memory.
#[derive(Debug, Default)]
pub struct CollectSink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl CollectSink {
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Drains the collected spans.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock().expect("collect sink poisoned"))
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("collect sink poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectSink {
    fn record(&self, span: SpanRecord) {
        self.spans.lock().expect("collect sink poisoned").push(span);
    }
}

/// A JSON-lines event sink with 1-in-N sampling — the serve request
/// log.  Each recorded span becomes one line:
///
/// ```json
/// {"phase":"serve","us":1234,"outcome":"ok","query":"count(//a)"}
/// ```
///
/// Sampling happens at record time on an atomic sequence counter, so a
/// hot service logs every Nth request with no locking on skipped ones.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
    /// Record spans whose sequence number is ≡ 0 (mod `sample_every`).
    sample_every: u64,
    seq: AtomicU64,
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("sample_every", &self.sample_every)
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonLinesSink {
    /// Logs every span to `out`.
    pub fn new(out: impl Write + Send + 'static) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(Box::new(out)),
            sample_every: 1,
            seq: AtomicU64::new(0),
        }
    }

    /// Logs one span in `every` (clamped to at least 1).
    pub fn with_sampling(mut self, every: u64) -> JsonLinesSink {
        self.sample_every = every.max(1);
        self
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, span: SpanRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if seq % self.sample_every != 0 {
            return;
        }
        use std::fmt::Write as _;
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{{\"phase\":\"{}\",\"us\":{}",
            span.phase.as_str(),
            span.duration.as_micros()
        );
        for (k, v) in &span.attrs {
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(line, ",\"{}\":{n}", json_escape(k));
                }
                AttrValue::Str(s) => {
                    let _ = write!(line, ",\"{}\":\"{}\"", json_escape(k), json_escape(s));
                }
            }
        }
        line.push('}');
        line.push('\n');
        let mut out = self.out.lock().expect("json-lines sink poisoned");
        let _ = out.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_produces_inert_spans() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        let mut s = r.span(Phase::Evaluate);
        s.attr_u64("n", 1);
        s.attr_str("q", || unreachable!("disabled spans must not format"));
        drop(s);
    }

    #[test]
    fn spans_report_phase_duration_and_attrs() {
        let sink = Arc::new(CollectSink::new());
        let r = Recorder::to_sink(Arc::clone(&sink) as Arc<dyn Sink>);
        assert!(r.enabled());
        {
            let mut s = r.span(Phase::Parse);
            s.attr_u64("len", 7);
            s.attr_str("query", || "//a".to_string());
        }
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Parse);
        assert_eq!(spans[0].attr("len"), Some(&AttrValue::U64(7)));
        assert_eq!(
            spans[0].attr("query"),
            Some(&AttrValue::Str("//a".to_string()))
        );
        assert_eq!(spans[0].attr("absent"), None);
    }

    /// Shared buffer a JsonLinesSink can write into while the test reads.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_sink_samples_one_in_n() {
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(buf.clone()).with_sampling(3);
        for i in 0..9u64 {
            let mut span = SpanRecord {
                phase: Phase::Serve,
                duration: Duration::from_micros(10),
                attrs: vec![("seq", AttrValue::U64(i))],
            };
            span.attrs.push(("outcome", AttrValue::Str("ok".into())));
            sink.record(span);
        }
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Sequence numbers 0, 3, 6 of 0..9.
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"phase\":\"serve\",\"us\":10"));
            assert!(line.ends_with("\"outcome\":\"ok\"}"));
        }
        assert!(lines[1].contains("\"seq\":3"));
    }

    #[test]
    fn phase_names_are_stable() {
        for (p, s) in [
            (Phase::Parse, "parse"),
            (Phase::Rewrite, "rewrite"),
            (Phase::Compile, "compile"),
            (Phase::Evaluate, "evaluate"),
            (Phase::Stream, "stream"),
            (Phase::Serve, "serve"),
        ] {
            assert_eq!(p.as_str(), s);
            assert_eq!(p.to_string(), s);
        }
    }
}

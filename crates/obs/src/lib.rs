//! # minctx-obs — metrics, tracing and profiling substrate
//!
//! The workspace's zero-dependency observability core, sitting below
//! every other crate (it depends on `std` alone):
//!
//! * [`registry`] — named [`Counter`]s, [`Gauge`]s and lock-free
//!   fixed-bucket [`Histogram`]s behind a get-or-register [`Registry`],
//!   with point-in-time snapshots, a Prometheus-style text exposition
//!   renderer and a JSON renderer.  [`global()`] is the process-wide
//!   registry (`minctx-xml` / `minctx-index` counters live there);
//!   `minctx-serve` builds one registry per engine.
//! * [`trace`] — the [`Recorder`]/[`Span`] API instrumented code emits
//!   query-lifecycle phases through (parse → rewrite → compile →
//!   evaluate/stream → serve).  Disabled recorders (the default
//!   everywhere) cost one untaken branch per span; [`JsonLinesSink`]
//!   with sampling is the serve request log, [`CollectSink`] the test
//!   harness.
//!
//! The paper's claims are quantitative (context-set sizes, memo hit
//! rates, per-step sweep volumes); this crate is how the rest of the
//! workspace reports those numbers from the inside instead of inferring
//! them from wall clocks.  See DESIGN.md's "Observability" section for
//! the overhead budget and format stability promises.

#![forbid(unsafe_code)]

pub mod registry;
pub mod trace;

pub use registry::{
    global, metrics_text, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
    HISTOGRAM_BUCKETS,
};
pub use trace::{AttrValue, CollectSink, JsonLinesSink, Phase, Recorder, Sink, Span, SpanRecord};

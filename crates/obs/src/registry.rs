//! The metrics registry: named [`Counter`]s, [`Gauge`]s and fixed-bucket
//! lock-free [`Histogram`]s, with point-in-time snapshots and two stable
//! renderers (Prometheus-style text exposition and JSON).
//!
//! # Concurrency model
//!
//! Every instrument is a handle around shared atomics; recording is a
//! `Relaxed` RMW on the hot path — no locks, no allocation, no ordering
//! stronger than the monotonicity of each individual cell.  The registry
//! maps (a `RwLock<BTreeMap>` per instrument kind) are touched only at
//! *registration* time; steady-state code resolves its handles once and
//! increments forever after.
//!
//! A [`Histogram`] keeps its observation count implicit: the count **is**
//! the sum of the bucket cells.  A snapshot therefore conserves
//! observations exactly — every recorded value landed in exactly one
//! bucket, so `sum(buckets) == records` holds at every quiescent point
//! (the concurrency suite hammers this from many threads).  `sum` and
//! `max` are separate cells updated after the bucket, so a mid-flight
//! snapshot may momentarily see a bucket increment whose `sum` update has
//! not landed yet; both are monotone, which is the invariant snapshots
//! rely on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotone event counter.  Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, pool sizes, …).  Cloning
/// shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: 4 unit buckets for 0..=3, then 4 sub-buckets per power
/// of two up to `u64::MAX` (two significant bits, so any bucket's bounds
/// are within 25% of each other).
pub const HISTOGRAM_BUCKETS: usize = 4 + 62 * 4;

/// The bucket index a value lands in.  Exact for 0..=3; above that,
/// log2 exponent `e` selects a group of four sub-buckets keyed on the
/// two bits below the leading one.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (e - 2)) & 3) as usize;
    4 + (e - 2) * 4 + sub
}

/// The smallest value that lands in bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let e = (idx - 4) / 4 + 2;
    let sub = ((idx - 4) % 4) as u64;
    (4 + sub) << (e - 2)
}

/// The largest value that lands in bucket `idx` (the Prometheus `le`
/// upper bound).
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= HISTOGRAM_BUCKETS {
        return u64::MAX;
    }
    bucket_lower(idx + 1) - 1
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of recorded values (wraps only after ~58 000 years of
    /// microsecond latencies; acceptable).
    sum: AtomicU64,
    /// Exact maximum recorded value.
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket latency/size histogram.  Recording is three `Relaxed`
/// atomic RMWs (bucket, sum, max) — lock-free and allocation-free.
/// Cloning shares the underlying cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `Duration` in microseconds (the workspace's latency
    /// convention: `*_us` histogram names).
    #[inline]
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((bucket_upper(i), n));
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of one histogram: the non-empty buckets as
/// `(inclusive upper bound, count)` pairs in ascending order, plus the
/// derived totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(u64, u64)>,
    /// Total observations — by construction the sum of bucket counts.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`), estimated as the upper bound of
    /// the bucket containing the target rank, clamped to the exact
    /// maximum.  `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count != 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// A point-in-time copy of every instrument in a [`Registry`], in stable
/// (lexicographic) name order.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A named collection of instruments.  `counter`/`gauge`/`histogram` are
/// get-or-register: the first call under a name creates the instrument,
/// later calls return a handle to the same cells — so independent
/// subsystems can meet at a shared name without coordination.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().expect("registry poisoned").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every instrument, in name order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Prometheus-style text exposition of a fresh snapshot.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// JSON rendering of a fresh snapshot.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`); the workspace's `/`-namespaced names become
/// `_`-separated.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

/// Minimal JSON string escaping (names and attr values are ASCII in
/// practice, but correctness is cheap).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// Prometheus-style text exposition: one `TYPE` header per metric,
    /// cumulative `_bucket{le="…"}` series plus `_sum`/`_count`/`_max`
    /// for histograms.  Line order is deterministic (name order), so the
    /// output is diffable and golden-testable.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for &(upper, count) in &h.buckets {
                cum += count;
                if upper == u64::MAX {
                    continue; // folded into the +Inf bucket below
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let _ = writeln!(out, "{n}_max {}", h.max);
        }
        out
    }

    /// JSON rendering: counters and gauges as numbers, histograms as
    /// `{count, sum, max, p50, p99}` summaries.  Key order is the
    /// registry's stable name order.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            );
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry most instrumentation hangs off (the serve
/// layer builds per-engine registries instead, so two pools' stats never
/// mix).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Prometheus-style text exposition of the [`global`] registry.
pub fn metrics_text() -> String {
    global().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        // Every representable value has exactly one bucket, boundaries
        // included, and indices never decrease with the value.
        let mut prev = 0usize;
        for v in 0u64..=4096 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
            prev = i;
        }
        for e in 2..64u32 {
            for off in [0u64, 1] {
                let v = (1u64 << e).wrapping_add(off.wrapping_sub(1));
                let i = bucket_index(v);
                assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_bounds_are_within_25_percent() {
        for i in 4..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower(i) as f64;
            let hi = bucket_upper(i) as f64;
            assert!(hi / lo <= 1.25, "bucket {i}: {lo}..{hi}");
        }
    }

    #[test]
    fn histogram_snapshot_totals_are_consistent() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 5, 100, 1000, u64::MAX / 2] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), s.count);
        assert_eq!(s.max, u64::MAX / 2);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(1.0), Some(u64::MAX / 2));
        // p50 of 9 values is the 5th smallest (4); its bucket is exact.
        assert_eq!(s.quantile(0.5), Some(4));
        assert!(s.mean().unwrap() > 0.0);
        assert_eq!(Histogram::detached().snapshot().quantile(0.5), None);
    }

    #[test]
    fn registry_get_or_register_shares_cells() {
        let r = Registry::new();
        r.counter("a/b").inc();
        r.counter("a/b").add(2);
        assert_eq!(r.counter("a/b").get(), 3);
        r.gauge("g").set(-7);
        assert_eq!(r.gauge("g").get(), -7);
        r.histogram("h").record(10);
        assert_eq!(r.histogram("h").snapshot().count, 1);
    }

    #[test]
    fn prometheus_rendering_is_stable_and_sanitized() {
        let r = Registry::new();
        r.counter("serve/requests").add(5);
        r.gauge("serve/queue_depth").set(2);
        let h = r.histogram("serve/latency_us");
        h.record(3);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 5\n"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_latency_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("serve_latency_us_sum 303"));
        assert!(text.contains("serve_latency_us_count 2"));
        assert!(text.contains("serve_latency_us_max 300"));
        // Deterministic: rendering twice gives the same bytes.
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let r = Registry::new();
        r.counter("xml/docs").inc();
        r.histogram("lat_us").record(42);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"xml/docs\":1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":42") || json.contains("\"p50\":43"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("obs/self_test");
        let before = c.get();
        global().counter("obs/self_test").inc();
        assert_eq!(c.get(), before + 1);
        assert!(metrics_text().contains("obs_self_test"));
    }
}

//! Registry concurrency suite: a seeded multi-thread hammer proving
//! exact observation conservation across histogram buckets, plus a
//! `protocol_model.rs`-style exhaustive interleaving check (cf.
//! `crates/serve/tests/protocol_model.rs`) for snapshot-vs-increment
//! consistency.
//!
//! The load-bearing design fact under test: a [`Histogram`] has **no
//! separate count cell** — the count is derived as the sum of the bucket
//! cells, and every `record` lands in exactly one bucket.  Conservation
//! (`sum(buckets) == count`) therefore holds at *every* point any
//! snapshot can observe, not just at quiescence.  The negative control
//! shows the checker has teeth: a model with a separate count cell is
//! caught violating conservation under some interleaving.

use minctx_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// The workspace's seeded PRNG idiom (cf. `minctx-bench`): deterministic,
/// dependency-free, good enough to scatter values across buckets.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn histogram_hammer_conserves_counts_exactly() {
    const THREADS: u64 = 8;
    const RECORDS: u64 = 20_000;
    let reg = Arc::new(Registry::new());
    let hist = reg.histogram("hammer/values");
    let ctr = reg.counter("hammer/records");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = hist.clone();
            let ctr = ctr.clone();
            thread::spawn(move || {
                let mut state = 0x9e37_79b9_7f4a_7c15 ^ (t + 1);
                let mut sum = 0u128;
                let mut max = 0u64;
                for _ in 0..RECORDS {
                    // Spread magnitudes across the whole bucket range.
                    let shift = (xorshift(&mut state) % 64) as u32;
                    let v = xorshift(&mut state) >> shift;
                    hist.record(v);
                    ctr.inc();
                    sum += v as u128;
                    max = max.max(v);
                }
                (sum, max)
            })
        })
        .collect();
    let mut want_sum = 0u128;
    let mut want_max = 0u64;
    for h in handles {
        let (sum, max) = h.join().unwrap();
        want_sum += sum;
        want_max = want_max.max(max);
    }
    let snap = hist.snapshot();
    // Exact conservation: every record landed in exactly one bucket.
    assert_eq!(snap.count, THREADS * RECORDS);
    assert_eq!(
        snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        THREADS * RECORDS,
        "bucket counts must sum to the observation count"
    );
    assert_eq!(snap.sum as u128, want_sum & (u128::from(u64::MAX)));
    assert_eq!(snap.max, want_max);
    assert_eq!(ctr.get(), THREADS * RECORDS);
    // Quantiles are sane on a full histogram.
    let p50 = snap.quantile(0.5).unwrap();
    let p99 = snap.quantile(0.99).unwrap();
    assert!(p50 <= p99 && p99 <= snap.max);
}

#[test]
fn snapshots_during_hammer_are_monotone_and_conserving() {
    // One observer snapshots continuously while writers hammer; every
    // snapshot it takes must be internally conserving (count == sum of
    // buckets, by construction of `snapshot`) and monotone in count,
    // sum, and max against the previous one.
    const WRITERS: u64 = 4;
    const RECORDS: u64 = 30_000;
    let hist = Histogram::detached();
    let ctr = Counter::detached();
    let done = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let hist = hist.clone();
            let ctr = ctr.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut state = 0xdead_beef ^ (t + 1);
                for _ in 0..RECORDS {
                    hist.record(xorshift(&mut state) % 10_000);
                    ctr.inc();
                }
                done.fetch_add(1, Ordering::Release);
            })
        })
        .collect();
    let mut prev_count = 0u64;
    let mut prev_sum = 0u64;
    let mut prev_max = 0u64;
    let mut observations = 0u64;
    while done.load(Ordering::Acquire) < WRITERS || observations == 0 {
        let snap = hist.snapshot();
        // Internal conservation at every mid-flight observation point:
        // the count *is* the bucket sum, so no interleaving can show a
        // count the buckets don't account for.  (Cross-cell bounds
        // against the counter are deliberately not asserted: the cells
        // are independent Relaxed atomics with no visibility order.)
        assert_eq!(
            snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            snap.count,
        );
        assert!(snap.count <= WRITERS * RECORDS, "count overshot the total");
        assert!(snap.count >= prev_count, "count went backwards");
        assert!(snap.sum >= prev_sum, "sum went backwards");
        assert!(snap.max >= prev_max, "max went backwards");
        (prev_count, prev_sum, prev_max) = (snap.count, snap.sum, snap.max);
        observations += 1;
    }
    for w in writers {
        w.join().unwrap();
    }
    let final_snap = hist.snapshot();
    assert_eq!(final_snap.count, WRITERS * RECORDS);
    assert_eq!(ctr.get(), WRITERS * RECORDS);
}

// ---- exhaustive interleaving checks (protocol_model.rs style) --------

/// Drives `explore` over every interleaving of threads with the given
/// program lengths, preserving each thread's program order.  Returns the
/// number of schedules visited.
fn for_each_schedule(lens: &[usize], mut explore: impl FnMut(&[usize])) -> usize {
    fn rec(
        lens: &[usize],
        done: &mut [usize],
        schedule: &mut Vec<usize>,
        count: &mut usize,
        explore: &mut impl FnMut(&[usize]),
    ) {
        if schedule.len() == lens.iter().sum() {
            *count += 1;
            explore(schedule);
            return;
        }
        for t in 0..lens.len() {
            if done[t] < lens[t] {
                done[t] += 1;
                schedule.push(t);
                rec(lens, done, schedule, count, explore);
                schedule.pop();
                done[t] -= 1;
            }
        }
    }
    let mut count = 0;
    rec(
        lens,
        &mut vec![0; lens.len()],
        &mut Vec::new(),
        &mut count,
        &mut explore,
    );
    count
}

#[test]
fn schedule_enumeration_is_exhaustive() {
    assert_eq!(for_each_schedule(&[2, 2], |_| {}), 6);
    assert_eq!(for_each_schedule(&[2, 2, 2], |_| {}), 90);
}

/// One atomic step of a histogram-model thread.  `Record` is a single
/// step because a bucket increment is one atomic RMW — the derived count
/// changes exactly when the bucket cell does.
#[derive(Clone, Copy)]
enum Op {
    Record(u64),
    Snapshot,
}

/// Replays `programs` under `schedule` against a fresh **real**
/// [`Histogram`], checking every snapshot any observer could take.
fn replay_histogram(programs: &[Vec<Op>], schedule: &[usize]) {
    let hist = Histogram::detached();
    let mut pc = vec![0usize; programs.len()];
    let mut recorded = 0u64;
    let mut recorded_sum = 0u64;
    let mut prev_count = 0u64;
    for &t in schedule {
        let op = programs[t][pc[t]];
        pc[t] += 1;
        match op {
            Op::Record(v) => {
                hist.record(v);
                recorded += 1;
                recorded_sum += v;
            }
            Op::Snapshot => {
                let snap = hist.snapshot();
                // Conservation at every observable point: count is the
                // bucket sum by construction, and both equal the records
                // completed so far.
                assert_eq!(snap.count, recorded);
                assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), recorded);
                assert_eq!(snap.sum, recorded_sum);
                assert!(snap.count >= prev_count, "snapshot count regressed");
                prev_count = snap.count;
            }
        }
    }
    assert_eq!(hist.snapshot().count, recorded);
}

#[test]
fn snapshot_vs_increment_is_consistent_under_every_interleaving() {
    // Two recorders (two records each, values in different buckets) and
    // one observer snapshotting three times: 7!/(2!·2!·3!) = 210
    // schedules, each replayed against the real histogram.
    let programs = vec![
        vec![Op::Record(1), Op::Record(100)],
        vec![Op::Record(5000), Op::Record(1)],
        vec![Op::Snapshot; 3],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let n = for_each_schedule(&lens, |s| replay_histogram(&programs, s));
    assert_eq!(n, 210);
}

/// Negative control: a histogram whose count lives in a *separate* cell
/// incremented before the bucket — the design [`Histogram`] deliberately
/// avoids.  Its two-step record is modeled as two schedule steps; the
/// checker must catch a schedule where a snapshot sees the count and the
/// buckets disagree, proving the conservation assertions above have
/// teeth.
#[test]
fn separate_count_cell_would_break_conservation_and_the_checker_sees_it() {
    #[derive(Clone, Copy)]
    enum BadOp {
        BumpCount,
        BumpBucket,
        Snapshot,
    }
    struct BadHistogram {
        count: AtomicU64,
        bucket: AtomicU64,
    }
    let programs = [
        vec![BadOp::BumpCount, BadOp::BumpBucket],
        vec![BadOp::Snapshot; 2],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut violation_found = false;
    for_each_schedule(&lens, |schedule| {
        let h = BadHistogram {
            count: AtomicU64::new(0),
            bucket: AtomicU64::new(0),
        };
        let mut pc = vec![0usize; programs.len()];
        for &t in schedule {
            let op = programs[t][pc[t]];
            pc[t] += 1;
            match op {
                BadOp::BumpCount => {
                    h.count.fetch_add(1, Ordering::Relaxed);
                }
                BadOp::BumpBucket => {
                    h.bucket.fetch_add(1, Ordering::Relaxed);
                }
                BadOp::Snapshot => {
                    if h.count.load(Ordering::Relaxed) != h.bucket.load(Ordering::Relaxed) {
                        violation_found = true;
                    }
                }
            }
        }
    });
    assert!(
        violation_found,
        "the checker failed to expose the separate-count-cell race"
    );
}

#[test]
fn registry_registration_races_resolve_to_one_cell() {
    // Many threads get-or-register the same names concurrently; every
    // handle must land on the same cells (no lost increments).
    const THREADS: u64 = 8;
    const NAMES: u64 = 16;
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..NAMES {
                    reg.counter(&format!("race/c{i}")).inc();
                    reg.histogram(&format!("race/h{i}")).record(i);
                    reg.gauge(&format!("race/g{i}")).add(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counters.len(), NAMES as usize);
    assert_eq!(snap.histograms.len(), NAMES as usize);
    for (name, v) in &snap.counters {
        assert_eq!(*v, THREADS, "{name} lost increments");
    }
    for (name, h) in &snap.histograms {
        assert_eq!(h.count, THREADS, "{name} lost observations");
    }
    for (name, g) in &snap.gauges {
        assert_eq!(*g, THREADS as i64, "{name} lost adjustments");
    }
}

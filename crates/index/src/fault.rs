//! Deterministic I/O fault injection for crash-safety tests.
//!
//! [`write_snapshot`](crate::write_snapshot) consults a **thread-local**
//! [`FaultPlan`] at every byte it writes and at each durability step
//! (data `sync_all`, atomic rename, directory fsync).  With no plan
//! installed — the production state — every check is a branch on an
//! empty `Option` and nothing else.
//!
//! The plan is thread-local on purpose: a test can tear its own writes
//! at a chosen byte without perturbing concurrent tests (or worker
//! threads) in the same process, and a run is reproducible from the
//! plan alone — there is no randomness in here.  Seeds live in the test
//! harnesses that *choose* plans, not in the injection machinery.
//!
//! Two failure shapes are distinguished:
//!
//! * **Crash** ([`FaultPlan::tear_after`]) — the writer stops mid-byte
//!   as if the process died: the torn temp file is left on disk (no
//!   cleanup runs, exactly like a kill) and the caller gets an injected
//!   I/O error standing in for "the process is gone".  The atomic-write
//!   protocol must keep the *final* path pristine through this.
//! * **Error** ([`FaultPlan::fail_sync`] / [`FaultPlan::fail_rename`] /
//!   [`FaultPlan::fail_dir_sync`]) — the syscall reports failure but the
//!   process lives, so the writer's own cleanup (temp removal) runs.

use std::cell::RefCell;
use std::io;

/// What to inject into the next [`write_snapshot`](crate::write_snapshot)
/// call on this thread.  A plan stays installed (and keeps firing) until
/// [`clear`] — crash tests typically install, write, assert, clear.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Simulate a kill after exactly this many bytes have reached the
    /// temp file (section bytes and the header patch both count): the
    /// write stops, the temp file is **left behind** torn, and the call
    /// errors.  `Some(0)` crashes before the first byte.
    pub tear_after: Option<u64>,
    /// Fail the temp file's `sync_all` with an injected error.
    pub fail_sync: bool,
    /// Fail the atomic rename with an injected error.
    pub fail_rename: bool,
    /// Fail the directory fsync *after* the rename.  The rename itself
    /// survives, modeling a crash window where the new file is visible
    /// but its directory entry may not be durable yet.
    pub fail_dir_sync: bool,
}

/// A durability step [`check`] can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    Sync,
    Rename,
    DirSync,
}

struct Active {
    plan: FaultPlan,
    /// Bytes written so far by the current write call.
    written: u64,
    /// A `tear_after` crash has fired (cleanup must be skipped).
    crashed: bool,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Installs `plan` for subsequent snapshot writes on this thread.
pub fn install(plan: FaultPlan) {
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(Active {
            plan,
            written: 0,
            crashed: false,
        });
    });
}

/// Removes any installed plan (production behavior resumes).
pub fn clear() {
    ACTIVE.with(|a| *a.borrow_mut() = None);
}

/// Whether the installed plan's crash already fired.
pub fn crash_fired() -> bool {
    ACTIVE.with(|a| a.borrow().as_ref().is_some_and(|x| x.crashed))
}

/// Resets the per-call byte counter; called at the top of each write.
pub(crate) fn begin_write() {
    ACTIVE.with(|a| {
        if let Some(x) = a.borrow_mut().as_mut() {
            x.written = 0;
            x.crashed = false;
        }
    });
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// How many of the next `len` bytes the writer may put down.  A return
/// below `len` means the planned crash point falls inside this write:
/// the caller writes the permitted prefix, then dies with
/// [`crash_error`].
pub(crate) fn permit(len: usize) -> usize {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let Some(x) = a.as_mut() else { return len };
        let Some(cut) = x.plan.tear_after else {
            x.written += len as u64;
            return len;
        };
        let room = cut.saturating_sub(x.written).min(len as u64) as usize;
        x.written += room as u64;
        if room < len {
            x.crashed = true;
        }
        room
    })
}

/// The error a torn write surfaces in place of the dead process.
pub(crate) fn crash_error() -> io::Error {
    injected("simulated crash: torn write")
}

/// Fails the given durability step when the plan says so.
pub(crate) fn check(step: Step) -> io::Result<()> {
    ACTIVE.with(|a| {
        let a = a.borrow();
        let Some(x) = a.as_ref() else { return Ok(()) };
        match step {
            Step::Sync if x.plan.fail_sync => Err(injected("sync_all on the temp file")),
            Step::Rename if x.plan.fail_rename => Err(injected("atomic rename")),
            Step::DirSync if x.plan.fail_dir_sync => Err(injected("directory fsync")),
            _ => Ok(()),
        }
    })
}

//! # minctx-index — persistent, mmap-able document snapshots
//!
//! The persistent half of the index-backed backend: a built
//! [`Document`]'s flat columns (pre-order structure links, packed kinds,
//! CSR label postings, text heap, id index — see `minctx-xml`'s `store`
//! module and DESIGN.md "Persistent index") are written to disk once
//! with [`write_snapshot`] and reopened **zero-copy** with
//! [`open_snapshot`]: the file is memory-mapped and the columns are
//! adopted in place, so reopening a stored corpus costs an integrity
//! scan instead of an XML re-parse (≥5× cheaper at the 10⁶-element
//! bench tier; the `index/*` rows in `BENCH_baseline.json` record the
//! gap).  The axis kernels and all four arena evaluators run unchanged
//! on the mapped columns.
//!
//! ```
//! use minctx_index::{open_snapshot, write_snapshot};
//!
//! let doc = minctx_xml::parse(r#"<a id="k"><b>hi</b></a>"#).unwrap();
//! let path = std::env::temp_dir().join(format!("minctx-doc-{}.mctx", std::process::id()));
//! write_snapshot(&doc, &path).unwrap();
//!
//! let reopened = open_snapshot(&path).unwrap();
//! assert_eq!(reopened.string_value(reopened.root()), "hi");
//! assert_eq!(reopened.element_by_id("k"), Some(reopened.document_element()));
//! // Reopening yields the *same* stamp every time, so compiled-query
//! // caches keyed on it stay valid across opens (and processes).
//! assert_eq!(reopened.stamp(), open_snapshot(&path).unwrap().stamp());
//! # std::fs::remove_file(&path).ok();
//! ```
//!
//! ## Format
//!
//! A versioned little-endian container (`format.rs` documents the byte
//! layout): a 104-byte header (magic, endianness canary, version,
//! section counts, stamp, file length, and two [`FastHash`](crate::hash)
//! checksums — one over the header, one over every section byte),
//! followed by 8-byte-aligned sections.  `open_snapshot` validates all
//! of it — magic/version/endianness, both checksums, the computed
//! layout against the real file size, and every document invariant
//! (monotone offsets, UTF-8, sorted postings, in-range links) — before
//! adopting a single column, so truncated, bit-flipped or handcrafted
//! files fail with an actionable [`SnapshotError`], never a panic or
//! worse.
//!
//! ## Stamps
//!
//! [`Document::stamp`] values from the builder are process-local counter
//! values (high bit clear).  A snapshot instead carries a
//! *content-derived* stamp — the section checksum with the high bit set
//! — written once at [`write_snapshot`] time.  The two namespaces are
//! disjoint, so a compiled-query cache can never confuse a mapped
//! document with a freshly built one, while every reopen of the same
//! snapshot (in any process) presents the same stamp and therefore hits
//! the same cache entries.
//!
//! ## Caveats
//!
//! The mapping is read-only and private, but POSIX gives no protection
//! against the *file* being truncated while mapped (later page accesses
//! would fault).  Snapshots are treated as immutable artifacts, and
//! [`write_snapshot`] enforces that discipline itself: it writes a
//! hidden temp file, fsyncs it, atomically renames it over the target
//! and fsyncs the directory — so the path always holds a complete
//! snapshot, a concurrent reader's mapping keeps its (now anonymous)
//! old inode, and a writer killed at any byte leaves only a stale temp
//! for the next writer to reap.  Files that fail validation can be
//! moved aside with [`quarantine_snapshot`] (or automatically via
//! [`open_snapshot_or_quarantine`]); the [`fault`] module injects torn
//! writes and step failures so these guarantees stay tested.

use minctx_xml::{Document, NameTable, RawColumns, StableBytes};
use std::fmt;
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod fault;
mod format;
mod hash;
mod map;

use format::{Header, Layout, Sect, ENDIAN_TAG, HEADER_LEN, MAGIC, SECTION_ALIGN, VERSION};
use hash::{hash_bytes, FastHash};

/// High bit of snapshot stamps; builder stamps keep it clear.
const SNAPSHOT_STAMP_BIT: u64 = 1 << 63;

/// Everything that can go wrong writing or opening a snapshot.  The
/// messages name the failing region and what to do about it (usually:
/// the file is not a snapshot, was cut short, or decayed — regenerate it
/// with [`write_snapshot`]).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    NotASnapshot {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The endianness canary did not read back — the file was written on
    /// (or is being read on) a big-endian machine, which the zero-copy
    /// format does not support.
    UnsupportedEndianness,
    /// The file is a snapshot of a different format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file is shorter or longer than its header claims.
    Truncated { expected: u64, actual: u64 },
    /// A checksum over `region` did not match — the bytes decayed or
    /// were modified after writing.
    ChecksumMismatch {
        region: &'static str,
        expected: u64,
        actual: u64,
    },
    /// A `u32` section starts at a byte offset that is not 4-aligned —
    /// the zero-copy reinterpret view would be undefined behaviour, so
    /// the open is refused before any cast happens.
    Misaligned {
        /// Which section (e.g. `"parent"`, `"text_off"`).
        section: &'static str,
        /// The absolute byte offset the section starts at.
        offset: usize,
    },
    /// A text region (the text heap or the name bytes) is not valid
    /// UTF-8 — a crafted or decayed file must never reach the
    /// zero-copy `from_utf8_unchecked` path.
    InvalidUtf8 {
        /// Which region (`"text heap"` or `"name bytes"`).
        region: &'static str,
        /// How many leading bytes were valid.
        valid_up_to: usize,
    },
    /// The file decodes structurally but violates a format or document
    /// invariant.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::NotASnapshot { found } => write!(
                f,
                "not a minctx snapshot (file starts with {found:02x?}, expected {MAGIC:02x?})"
            ),
            SnapshotError::UnsupportedEndianness => write!(
                f,
                "snapshot endianness mismatch: the format is little-endian and zero-copy; \
                 regenerate the snapshot on (and for) a little-endian machine"
            ),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 version {supported}); regenerate with write_snapshot"
            ),
            SnapshotError::Truncated { expected, actual } => write!(
                f,
                "snapshot is {actual} bytes but declares {expected}: the file was \
                 truncated or padded after writing; regenerate with write_snapshot"
            ),
            SnapshotError::ChecksumMismatch {
                region,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {region} checksum mismatch (stored {expected:#018x}, computed \
                 {actual:#018x}): the bytes decayed or were modified; regenerate with \
                 write_snapshot"
            ),
            SnapshotError::Misaligned { section, offset } => write!(
                f,
                "snapshot section `{section}` starts at byte {offset}, which is not \
                 4-byte aligned: the zero-copy u32 view would be unsound; regenerate \
                 with write_snapshot"
            ),
            SnapshotError::InvalidUtf8 {
                region,
                valid_up_to,
            } => write!(
                f,
                "snapshot {region} is not valid UTF-8 after byte {valid_up_to}: the \
                 file was crafted or decayed; regenerate with write_snapshot"
            ),
            SnapshotError::Corrupt(msg) => {
                write!(
                    f,
                    "snapshot is corrupt: {msg}; regenerate with write_snapshot"
                )
            }
        }
    }
}

/// Structural equality; [`SnapshotError::Io`] compares by
/// [`std::io::ErrorKind`] (the payload itself is not comparable).
impl PartialEq for SnapshotError {
    fn eq(&self, other: &Self) -> bool {
        use SnapshotError::*;
        match (self, other) {
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (NotASnapshot { found: a }, NotASnapshot { found: b }) => a == b,
            (UnsupportedEndianness, UnsupportedEndianness) => true,
            (
                UnsupportedVersion {
                    found: a,
                    supported: sa,
                },
                UnsupportedVersion {
                    found: b,
                    supported: sb,
                },
            ) => a == b && sa == sb,
            (
                Truncated {
                    expected: a,
                    actual: aa,
                },
                Truncated {
                    expected: b,
                    actual: ba,
                },
            ) => a == b && aa == ba,
            (
                ChecksumMismatch {
                    region: ra,
                    expected: ea,
                    actual: aa,
                },
                ChecksumMismatch {
                    region: rb,
                    expected: eb,
                    actual: ab,
                },
            ) => ra == rb && ea == eb && aa == ab,
            (
                Misaligned {
                    section: sa,
                    offset: oa,
                },
                Misaligned {
                    section: sb,
                    offset: ob,
                },
            ) => sa == sb && oa == ob,
            (
                InvalidUtf8 {
                    region: ra,
                    valid_up_to: va,
                },
                InvalidUtf8 {
                    region: rb,
                    valid_up_to: vb,
                },
            ) => ra == rb && va == vb,
            (Corrupt(a), Corrupt(b)) => a == b,
            _ => false,
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// What [`write_snapshot`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Total bytes written.
    pub file_len: u64,
    /// The content-derived stamp the reopened document will carry (high
    /// bit set; equal for byte-identical documents).
    pub stamp: u64,
}

/// Process-wide registry cell for successfully written snapshots
/// (`index/snapshots_written` in [`minctx_obs::global`]).
fn snapshots_written_counter() -> &'static minctx_obs::Counter {
    static C: std::sync::OnceLock<minctx_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("index/snapshots_written"))
}

/// Process-wide count of snapshots successfully committed by
/// [`write_snapshot`] — the increment happens only after the durable
/// rename, so a crashed or failed write is not counted.
pub fn snapshots_written() -> u64 {
    snapshots_written_counter().get()
}

/// Process-wide registry cell for successfully opened snapshots
/// (`index/snapshots_opened` in [`minctx_obs::global`]).
fn snapshots_opened_counter() -> &'static minctx_obs::Counter {
    static C: std::sync::OnceLock<minctx_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("index/snapshots_opened"))
}

/// Process-wide count of snapshots that passed full validation in
/// [`open_snapshot`]; rejected or quarantined files are not counted.
pub fn snapshots_opened() -> u64 {
    snapshots_opened_counter().get()
}

/// Serializes `doc` into the snapshot container at `path`.  The write is
/// a single sequential pass; the header — including the content-derived
/// stamp — is patched in afterwards.
///
/// The write is **crash-safe**: bytes go to a hidden temp file in the
/// target directory (`.<name>.tmp-<pid>-<n>`), which is `fsync`ed and
/// then atomically renamed over `path`, followed by an fsync of the
/// directory so the rename itself is durable.  A reader (or a concurrent
/// [`open_snapshot`]) therefore sees either the previous complete
/// snapshot or the new complete snapshot — never a partial file — and a
/// writer killed at any byte leaves `path` untouched.  Temp files left
/// behind by crashed writers of the *same* target are reaped on the next
/// successful write (see [`stale_temps`]).  Concurrent writers of one
/// target path are not coordinated: last rename wins.
pub fn write_snapshot(
    doc: &Document,
    path: impl AsRef<Path>,
) -> Result<SnapshotInfo, SnapshotError> {
    #[cfg(target_endian = "big")]
    {
        let _ = (doc, path);
        Err(SnapshotError::UnsupportedEndianness)
    }
    #[cfg(target_endian = "little")]
    {
        let r = write_snapshot_le(doc, path.as_ref());
        if r.is_ok() {
            snapshots_written_counter().inc();
        }
        r
    }
}

/// Opens the snapshot at `path` as a zero-copy, memory-mapped
/// [`Document`] after full integrity validation (see the crate docs).
/// The returned document behaves exactly like a built one — same
/// accessors, same evaluators, same axis kernels — and holds the mapping
/// alive for as long as it (or any clone) exists.
pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Document, SnapshotError> {
    #[cfg(target_endian = "big")]
    {
        let _ = path;
        Err(SnapshotError::UnsupportedEndianness)
    }
    #[cfg(target_endian = "little")]
    {
        let r = open_snapshot_le(path.as_ref());
        if r.is_ok() {
            snapshots_opened_counter().inc();
        }
        r
    }
}

/// Reads just the stamp of the snapshot at `path` — the content-derived
/// key a serving layer's snapshot cache is indexed by — without mapping
/// or validating the sections.  Only the 104-byte header is read and
/// checked (magic, endianness, version, header checksum), so peeking a
/// stamp costs one small read instead of a full open's `O(file)`
/// integrity scan.  A subsequent [`open_snapshot`] still performs the
/// complete validation.
pub fn snapshot_stamp(path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
    #[cfg(target_endian = "big")]
    {
        let _ = path;
        Err(SnapshotError::UnsupportedEndianness)
    }
    #[cfg(target_endian = "little")]
    {
        snapshot_stamp_le(path.as_ref())
    }
}

#[cfg(target_endian = "little")]
fn snapshot_stamp_le(path: &Path) -> Result<u64, SnapshotError> {
    use std::io::Read;
    let mut file = File::open(path)?;
    let actual = file.metadata()?.len();
    if actual < HEADER_LEN as u64 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            actual,
        });
    }
    let mut bytes = [0u8; HEADER_LEN];
    file.read_exact(&mut bytes)?;
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::NotASnapshot {
            found: bytes[..8].try_into().expect("8 bytes"),
        });
    }
    if u32::from_le_bytes(bytes[8..12].try_into().expect("4")) != ENDIAN_TAG {
        return Err(SnapshotError::UnsupportedEndianness);
    }
    let version = u32::from_le_bytes(bytes[12..16].try_into().expect("4"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let header = Header::from_bytes(&bytes);
    let header_hash = hash_bytes(&bytes[..88]);
    if header_hash != header.header_hash {
        return Err(SnapshotError::ChecksumMismatch {
            region: "header",
            expected: header.header_hash,
            actual: header_hash,
        });
    }
    if header.stamp & SNAPSHOT_STAMP_BIT == 0 {
        return Err(SnapshotError::Corrupt(
            "stamp is missing the snapshot namespace bit".into(),
        ));
    }
    Ok(header.stamp)
}

/// Reinterprets a `u32` column as raw bytes (little-endian hosts only:
/// the in-memory representation *is* the on-disk representation — this
/// cast is what makes both the write and the open zero-copy).
#[cfg(target_endian = "little")]
fn u32s_as_bytes(s: &[u32]) -> &[u8] {
    // SAFETY: u32 has no padding; alignment only decreases.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Distinguishes temp files of concurrent in-process writers.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The hidden-temp-file prefix every writer of `file_name` uses.
fn temp_prefix(file_name: &std::ffi::OsStr) -> String {
    format!(".{}.tmp-", file_name.to_string_lossy())
}

/// The directory a snapshot path lives in (`.` for bare file names).
fn snapshot_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Temp files left behind by killed writers of `path`'s snapshot —
/// `.<name>.tmp-*` entries in its directory.  [`write_snapshot`] reaps
/// them automatically before each write; this is the inspection hook for
/// tests and operators.
pub fn stale_temps(path: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
    let path = path.as_ref();
    let Some(file_name) = path.file_name() else {
        return Ok(Vec::new());
    };
    let prefix = temp_prefix(file_name);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(snapshot_dir(path))? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().starts_with(&prefix) {
            out.push(entry.path());
        }
    }
    Ok(out)
}

/// Best-effort removal of every stale temp for `path` (crashed writers
/// never clean up — the next writer does).
fn reap_stale_temps(path: &Path) {
    if let Ok(temps) = stale_temps(path) {
        for t in temps {
            let _ = std::fs::remove_file(t);
        }
    }
}

/// Renames `path` to `<path>.corrupt`, returning the quarantine path.
/// The decayed bytes stay available for post-mortems while retry loops
/// (and snapshot caches) stop re-validating a file that can never open;
/// a subsequent [`write_snapshot`] recreates `path` from scratch.
pub fn quarantine_snapshot(path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
    let path = path.as_ref();
    let Some(file_name) = path.file_name() else {
        return Err(std::io::Error::other("snapshot path has no file name"));
    };
    let mut name = file_name.to_os_string();
    name.push(".corrupt");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest)?;
    Ok(dest)
}

/// [`open_snapshot`], with invalid files quarantined: when the file
/// exists but fails validation (wrong magic or version, checksum
/// mismatch, truncation, violated invariants — every error except
/// [`SnapshotError::Io`]), it is renamed to `<path>.corrupt` before the
/// error is returned, so a serving loop's next attempt sees a missing
/// file instead of re-scanning garbage forever.  The quarantine rename
/// is best-effort; the returned error is the validation failure either
/// way.
pub fn open_snapshot_or_quarantine(path: impl AsRef<Path>) -> Result<Document, SnapshotError> {
    let path = path.as_ref();
    match open_snapshot(path) {
        Err(e) if !matches!(e, SnapshotError::Io(_)) => {
            let _ = quarantine_snapshot(path);
            Err(e)
        }
        r => r,
    }
}

#[cfg(target_endian = "little")]
fn write_snapshot_le(doc: &Document, path: &Path) -> Result<SnapshotInfo, SnapshotError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| SnapshotError::Corrupt("snapshot path has no file name".into()))?;
    reap_stale_temps(path);
    let tmp = snapshot_dir(path).join(format!(
        "{}{}-{}",
        temp_prefix(file_name),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    fault::begin_write();
    let r = write_sections_then_commit(doc, &tmp, path);
    if r.is_err() && !fault::crash_fired() {
        // A clean error path removes its temp; a simulated kill leaves
        // it torn on disk, exactly like a real one (the next writer
        // reaps it).
        let _ = std::fs::remove_file(&tmp);
    }
    r
}

/// Make the rename of a snapshot durable: fsync its directory.
#[cfg(all(target_endian = "little", unix))]
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(all(target_endian = "little", not(unix)))]
fn sync_dir(_dir: &Path) -> std::io::Result<()> {
    Ok(())
}

/// The sequential section pass into `tmp`, then the durable commit:
/// temp `sync_all` → atomic rename onto `path` → directory fsync.
#[cfg(target_endian = "little")]
fn write_sections_then_commit(
    doc: &Document,
    tmp: &Path,
    path: &Path,
) -> Result<SnapshotInfo, SnapshotError> {
    let cols = doc.raw_columns();
    // Serialize the name table as CSR offsets + concatenated UTF-8.
    let mut name_off: Vec<u32> = Vec::with_capacity(doc.names().len() + 1);
    let mut name_bytes: Vec<u8> = Vec::new();
    name_off.push(0);
    for s in doc.names().strings() {
        name_bytes.extend_from_slice(s.as_bytes());
        let off = u32::try_from(name_bytes.len())
            .map_err(|_| SnapshotError::Corrupt("name table exceeds 4 GiB".into()))?;
        name_off.push(off);
    }

    let mut header = Header {
        node_count: cols.kinds.len() as u64,
        name_count: doc.names().len() as u64,
        text_heap_len: cols.text_heap.len() as u64,
        elem_post_len: cols.elem_post.len() as u64,
        attr_post_len: cols.attr_post.len() as u64,
        id_count: cols.id_attrs.len() as u64,
        names_bytes_len: name_bytes.len() as u64,
        stamp: 0,
        file_len: 0,
        header_hash: 0,
        section_hash: 0,
    };
    let lay = format::layout(&header).ok_or_else(|| {
        SnapshotError::Corrupt("document too large for the snapshot format".into())
    })?;
    header.file_len = lay.total as u64;

    let mut file = File::create(tmp)?;
    {
        let mut w = HashWrite {
            w: std::io::BufWriter::new(&mut file),
            hash: FastHash::new(),
            pos: HEADER_LEN,
        };
        // Header placeholder (zeros); patched after the section pass.
        faulted_write(&mut w.w, &[0u8; HEADER_LEN])?;
        for (sect, bytes) in section_bytes(&lay, &cols, &name_off, &name_bytes) {
            w.pad_to(sect.off)?;
            debug_assert_eq!(sect.off % SECTION_ALIGN, 0);
            w.write(bytes)?;
        }
        w.pad_to(lay.total)?;
        header.section_hash = w.hash.finish();
        w.w.flush()?;
    }
    header.stamp = SNAPSHOT_STAMP_BIT | (header.section_hash & !SNAPSHOT_STAMP_BIT);
    let mut hb = header.to_bytes();
    header.header_hash = hash_bytes(&hb[..88]);
    hb = header.to_bytes();
    file.seek(SeekFrom::Start(0))?;
    faulted_write(&mut file, &hb)?;
    file.flush()?;
    // Durable commit: the temp's bytes reach the platter, then the
    // rename atomically swings `path` from the old complete snapshot to
    // the new one (a concurrently mapped old file keeps its inode), then
    // the directory entry itself is made durable.
    fault::check(fault::Step::Sync)?;
    file.sync_all()?;
    drop(file);
    fault::check(fault::Step::Rename)?;
    std::fs::rename(tmp, path)?;
    fault::check(fault::Step::DirSync)?;
    sync_dir(snapshot_dir(path))?;
    Ok(SnapshotInfo {
        file_len: header.file_len,
        stamp: header.stamp,
    })
}

/// Writes `bytes` through the thread-local fault plan: the permitted
/// prefix goes down (and is flushed, so a simulated kill leaves exactly
/// the planned byte count on disk), then the injected crash surfaces.
fn faulted_write(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    let n = fault::permit(bytes.len());
    w.write_all(&bytes[..n])?;
    if n < bytes.len() {
        w.flush()?;
        return Err(fault::crash_error());
    }
    Ok(())
}

/// The sections in on-disk order, paired with their layout slots.
#[cfg(target_endian = "little")]
fn section_bytes<'a>(
    lay: &Layout,
    cols: &RawColumns<'a>,
    name_off: &'a [u32],
    name_bytes: &'a [u8],
) -> [(Sect, &'a [u8]); 17] {
    [
        (lay.kinds, u32s_as_bytes(cols.kinds)),
        (lay.parent, u32s_as_bytes(cols.parent)),
        (lay.first_child, u32s_as_bytes(cols.first_child)),
        (lay.last_child, u32s_as_bytes(cols.last_child)),
        (lay.next_sibling, u32s_as_bytes(cols.next_sibling)),
        (lay.prev_sibling, u32s_as_bytes(cols.prev_sibling)),
        (lay.subtree_end, u32s_as_bytes(cols.subtree_end)),
        (lay.text_off, u32s_as_bytes(cols.text_off)),
        (lay.elem_off, u32s_as_bytes(cols.elem_off)),
        (lay.elem_post, u32s_as_bytes(cols.elem_post)),
        (lay.attr_off, u32s_as_bytes(cols.attr_off)),
        (lay.attr_post, u32s_as_bytes(cols.attr_post)),
        (lay.id_attrs, u32s_as_bytes(cols.id_attrs)),
        (lay.id_elems, u32s_as_bytes(cols.id_elems)),
        (lay.name_off, u32s_as_bytes(name_off)),
        (lay.name_bytes, name_bytes),
        (lay.text_heap, cols.text_heap),
    ]
}

/// A writer that feeds every section byte (padding included) through the
/// checksum while tracking the absolute file position.
struct HashWrite<W: Write> {
    w: W,
    hash: FastHash,
    pos: usize,
}

impl<W: Write> HashWrite<W> {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        faulted_write(&mut self.w, bytes)?;
        self.hash.write(bytes);
        self.pos += bytes.len();
        Ok(())
    }

    fn pad_to(&mut self, target: usize) -> std::io::Result<()> {
        const ZEROS: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];
        debug_assert!(target >= self.pos && target - self.pos < SECTION_ALIGN + 1);
        while self.pos < target {
            let n = (target - self.pos).min(SECTION_ALIGN);
            self.write(&ZEROS[..n])?;
        }
        Ok(())
    }
}

/// Bounds- and alignment-checked `u32` view of the section named
/// `section` (the name only feeds the error).
#[cfg(target_endian = "little")]
#[expect(
    clippy::cast_ptr_alignment,
    reason = "the alignment-raising cast is guarded by the explicit check above it"
)]
fn u32_slice<'a>(
    bytes: &'a [u8],
    s: Sect,
    section: &'static str,
) -> Result<&'a [u32], SnapshotError> {
    let sl = byte_slice(bytes, s.off, s.count.checked_mul(4).ok_or_else(overflow)?)?;
    if sl.as_ptr() as usize % std::mem::align_of::<u32>() != 0 {
        return Err(SnapshotError::Misaligned {
            section,
            offset: s.off,
        });
    }
    // SAFETY: bounds and alignment checked; u32 tolerates any bit
    // pattern; the host is little-endian (checked by the caller).
    Ok(unsafe { std::slice::from_raw_parts(sl.as_ptr().cast::<u32>(), s.count) })
}

fn byte_slice(bytes: &[u8], off: usize, len: usize) -> Result<&[u8], SnapshotError> {
    off.checked_add(len)
        .and_then(|end| bytes.get(off..end))
        .ok_or_else(|| {
            SnapshotError::Corrupt(format!(
                "section {off}..+{len} exceeds the {}-byte file",
                bytes.len()
            ))
        })
}

fn overflow() -> SnapshotError {
    SnapshotError::Corrupt("section size overflows".into())
}

#[cfg(target_endian = "little")]
fn open_snapshot_le(path: &Path) -> Result<Document, SnapshotError> {
    let mut file = File::open(path)?;
    let actual = file.metadata()?.len();
    if actual < HEADER_LEN as u64 {
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN as u64,
            actual,
        });
    }
    let len = usize::try_from(actual)
        .map_err(|_| SnapshotError::Corrupt("snapshot exceeds the address space".into()))?;
    let keep: Arc<dyn StableBytes> = Arc::new(map::map_file(&mut file, len)?);
    let bytes = keep.bytes();

    // ---- Container validation: identity, hashes, geometry -------------
    if bytes[..8] != MAGIC {
        return Err(SnapshotError::NotASnapshot {
            found: bytes[..8].try_into().expect("8 bytes"),
        });
    }
    if u32::from_le_bytes(bytes[8..12].try_into().expect("4")) != ENDIAN_TAG {
        return Err(SnapshotError::UnsupportedEndianness);
    }
    let version = u32::from_le_bytes(bytes[12..16].try_into().expect("4"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let header = Header::from_bytes(bytes[..HEADER_LEN].try_into().expect("header length"));
    let header_hash = hash_bytes(&bytes[..88]);
    if header_hash != header.header_hash {
        return Err(SnapshotError::ChecksumMismatch {
            region: "header",
            expected: header.header_hash,
            actual: header_hash,
        });
    }
    if header.file_len != actual {
        return Err(SnapshotError::Truncated {
            expected: header.file_len,
            actual,
        });
    }
    let lay = format::layout(&header)
        .ok_or_else(|| SnapshotError::Corrupt("header counts overflow the layout".into()))?;
    if lay.total as u64 != actual {
        return Err(SnapshotError::Truncated {
            expected: lay.total as u64,
            actual,
        });
    }
    let section_hash = hash_bytes(&bytes[HEADER_LEN..]);
    if section_hash != header.section_hash {
        return Err(SnapshotError::ChecksumMismatch {
            region: "section",
            expected: header.section_hash,
            actual: section_hash,
        });
    }
    if header.stamp & SNAPSHOT_STAMP_BIT == 0 {
        return Err(SnapshotError::Corrupt(
            "stamp is missing the snapshot namespace bit".into(),
        ));
    }

    // ---- Name table ---------------------------------------------------
    let name_off = u32_slice(bytes, lay.name_off, "name_off")?;
    let name_bytes = byte_slice(bytes, lay.name_bytes.off, lay.name_bytes.count)?;
    // Reject invalid bytes wholesale before per-entry slicing, so the
    // error names the region even when entry offsets are also wrong.
    if let Err(e) = std::str::from_utf8(name_bytes) {
        return Err(SnapshotError::InvalidUtf8 {
            region: "name bytes",
            valid_up_to: e.valid_up_to(),
        });
    }
    let mut names = NameTable::new();
    let mut prev = 0u32;
    for (i, w) in name_off.windows(2).enumerate() {
        let (s, e) = (w[0], w[1]);
        if s != prev || e < s || e as usize > name_bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "name table offsets are not monotone at entry {i}"
            )));
        }
        prev = e;
        let str_ = std::str::from_utf8(&name_bytes[s as usize..e as usize])
            .map_err(|e| SnapshotError::Corrupt(format!("name {i} is not valid UTF-8: {e}")))?;
        if names.intern(str_).index() != i {
            return Err(SnapshotError::Corrupt(format!(
                "name table contains a duplicate entry at {i}"
            )));
        }
    }
    if name_off.last().copied().unwrap_or(0) as usize != name_bytes.len() {
        return Err(SnapshotError::Corrupt(
            "name table offsets do not cover the name bytes".into(),
        ));
    }

    // ---- Columns (validated in depth by from_mapped_columns) ----------
    // The text heap backs `from_utf8_unchecked` views for the life of
    // the document: validate it here, at the trust boundary, so no
    // crafted or checksum-colliding file can smuggle invalid bytes past
    // the unsafe decode (from_mapped_columns re-checks in depth).
    let text_heap = byte_slice(bytes, lay.text_heap.off, lay.text_heap.count)?;
    if let Err(e) = std::str::from_utf8(text_heap) {
        return Err(SnapshotError::InvalidUtf8 {
            region: "text heap",
            valid_up_to: e.valid_up_to(),
        });
    }
    let cols = RawColumns {
        kinds: u32_slice(bytes, lay.kinds, "kinds")?,
        parent: u32_slice(bytes, lay.parent, "parent")?,
        first_child: u32_slice(bytes, lay.first_child, "first_child")?,
        last_child: u32_slice(bytes, lay.last_child, "last_child")?,
        next_sibling: u32_slice(bytes, lay.next_sibling, "next_sibling")?,
        prev_sibling: u32_slice(bytes, lay.prev_sibling, "prev_sibling")?,
        subtree_end: u32_slice(bytes, lay.subtree_end, "subtree_end")?,
        text_off: u32_slice(bytes, lay.text_off, "text_off")?,
        text_heap,
        elem_off: u32_slice(bytes, lay.elem_off, "elem_off")?,
        elem_post: u32_slice(bytes, lay.elem_post, "elem_post")?,
        attr_off: u32_slice(bytes, lay.attr_off, "attr_off")?,
        attr_post: u32_slice(bytes, lay.attr_post, "attr_post")?,
        id_attrs: u32_slice(bytes, lay.id_attrs, "id_attrs")?,
        id_elems: u32_slice(bytes, lay.id_elems, "id_elems")?,
    };
    Document::from_mapped_columns(cols, names, header.stamp, Arc::clone(&keep))
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("minctx-index-{}-{name}.mctx", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let doc = minctx_xml::parse(
            r#"<lib x="1"><b id="b1">t1</b><!--c--><?p d?><b id="b2" y="2">t2<i/></b></lib>"#,
        )
        .unwrap();
        let path = temp("roundtrip");
        let info = write_snapshot(&doc, &path).unwrap();
        let re = open_snapshot(&path).unwrap();
        assert_eq!(re.len(), doc.len());
        assert_eq!(re.debug_tree(), doc.debug_tree());
        assert_eq!(re.string_value(re.root()), doc.string_value(doc.root()));
        assert_eq!(re.element_count(), doc.element_count());
        assert_eq!(re.size(), doc.size());
        for (a, b) in doc.all_nodes().zip(re.all_nodes()) {
            assert_eq!(doc.kind(a), re.kind(b));
            assert_eq!(doc.content(a), re.content(b));
            assert_eq!(doc.subtree_end(a), re.subtree_end(b));
        }
        // Postings survive: name-test lookups agree.
        let b_owned = doc.find_name("b").unwrap();
        let b_mapped = re.find_name("b").unwrap();
        assert_eq!(doc.element_postings(b_owned), re.element_postings(b_mapped));
        // Id index survives as a binary-searchable column.
        assert_eq!(
            doc.element_by_id("b2").map(|n| n.index()),
            re.element_by_id("b2").map(|n| n.index())
        );
        assert_eq!(re.element_by_id("zz"), None);
        // Stamp: content-derived, high bit set, stable across opens.
        assert_eq!(re.stamp(), info.stamp);
        assert_eq!(re.stamp() >> 63, 1);
        assert_ne!(re.stamp(), doc.stamp());
        assert_eq!(open_snapshot(&path).unwrap().stamp(), info.stamp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u32_slice_refuses_misaligned_sections_with_a_typed_error() {
        // An 8-aligned heap region, sliced at an odd offset: the typed
        // `Misaligned` error must fire before any reinterpret cast.
        let region = vec![0u64; 4];
        let bytes: &[u8] = bytemuck_view(&region);
        let ok = u32_slice(bytes, Sect { off: 4, count: 2 }, "probe").unwrap();
        assert_eq!(ok.len(), 2);
        let err = u32_slice(bytes, Sect { off: 2, count: 2 }, "probe").unwrap_err();
        assert_eq!(
            err,
            SnapshotError::Misaligned {
                section: "probe",
                offset: 2
            }
        );
        assert!(err.to_string().contains("probe"), "{err}");
    }

    /// Test-only safe view of a `u64` buffer as bytes.
    fn bytemuck_view(v: &[u64]) -> &[u8] {
        // SAFETY: (test) u64 -> u8 view; alignment only decreases and
        // every bit pattern is a valid u8.
        unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
    }

    #[test]
    fn identical_documents_share_a_stamp_distinct_documents_do_not() {
        let d1 = minctx_xml::parse("<a><b/></a>").unwrap();
        let d2 = minctx_xml::parse("<a><b/></a>").unwrap();
        let d3 = minctx_xml::parse("<a><c/></a>").unwrap();
        let (p1, p2, p3) = (temp("s1"), temp("s2"), temp("s3"));
        let s1 = write_snapshot(&d1, &p1).unwrap().stamp;
        let s2 = write_snapshot(&d2, &p2).unwrap().stamp;
        let s3 = write_snapshot(&d3, &p3).unwrap().stamp;
        assert_eq!(s1, s2, "byte-identical documents must share a stamp");
        assert_ne!(s1, s3);
        for p in [p1, p2, p3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn clones_of_mapped_documents_share_the_mapping() {
        let doc = minctx_xml::parse("<a>text</a>").unwrap();
        let path = temp("clone");
        write_snapshot(&doc, &path).unwrap();
        let re = open_snapshot(&path).unwrap();
        let cl = re.clone();
        drop(re);
        // The clone keeps the mapping alive.
        assert_eq!(cl.string_value(cl.root()), "text");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let e = open_snapshot(temp("nonexistent")).unwrap_err();
        assert!(matches!(e, SnapshotError::Io(_)), "{e}");
    }

    #[test]
    fn snapshot_stamp_peeks_the_header_only() {
        let doc = minctx_xml::parse("<a><b/>x</a>").unwrap();
        let path = temp("stamp-peek");
        let info = write_snapshot(&doc, &path).unwrap();
        assert_eq!(snapshot_stamp(&path).unwrap(), info.stamp);
        assert_eq!(
            snapshot_stamp(&path).unwrap(),
            open_snapshot(&path).unwrap().stamp()
        );
        // A flipped bit in the header is caught by the header checksum…
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            snapshot_stamp(&path).unwrap_err(),
            SnapshotError::ChecksumMismatch {
                region: "header",
                ..
            }
        ));
        // …but a section flip is deliberately not: the peek reads only the
        // header (open_snapshot still rejects the file).
        bytes[20] ^= 0x01;
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(snapshot_stamp(&path).unwrap(), info.stamp);
        assert!(open_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

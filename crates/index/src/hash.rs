//! The snapshot checksum: a fast, seeded, 8-bytes-per-round streaming
//! hash (xxHash-flavoured multiply/rotate rounds with a murmur-style
//! finalizer).
//!
//! Requirements — in order of importance:
//!
//! 1. **Deterministic across platforms and processes**: chunks are read
//!    little-endian, no pointer- or layout-dependence.  The snapshot
//!    *stamp* is derived from this hash, so it must be reproducible.
//! 2. **Fast enough that `open_snapshot` stays far below parse cost**:
//!    one multiply + rotate per 8 bytes streams at several GB/s, which
//!    keeps full-file verification a small fraction of the ≥5×
//!    open-vs-parse budget (see the `index/*` bench rows).
//! 3. **Catches every single-bit flip** (and any realistic corruption) —
//!    it is an integrity check, not a cryptographic MAC; snapshots are
//!    trusted local files.

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const PRIME: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Streaming hasher; identical output regardless of how the input is
/// split across [`FastHash::write`] calls.
#[derive(Debug, Clone)]
pub(crate) struct FastHash {
    state: u64,
    /// Carry for a partial 8-byte chunk between writes.
    buf: [u8; 8],
    buf_len: usize,
    total: u64,
}

impl FastHash {
    pub(crate) fn new() -> FastHash {
        FastHash {
            state: SEED,
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    #[inline]
    fn round(state: u64, chunk: u64) -> u64 {
        (state ^ chunk).wrapping_mul(PRIME).rotate_left(31)
    }

    pub(crate) fn write(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        // Top up a pending partial chunk first.
        if self.buf_len > 0 {
            let take = (8 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 8 {
                self.state = Self::round(self.state, u64::from_le_bytes(self.buf));
                self.buf_len = 0;
            }
        }
        if data.is_empty() {
            // Nothing beyond the (possibly still partial) carry — don't
            // clobber it with an empty remainder below.
            return;
        }
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            self.state = Self::round(self.state, u64::from_le_bytes(c.try_into().expect("8")));
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    pub(crate) fn finish(mut self) -> u64 {
        if self.buf_len > 0 {
            // Zero-pad the tail; the mixed-in total length disambiguates
            // padding from genuine zero bytes.
            self.buf[self.buf_len..].fill(0);
            self.state = Self::round(self.state, u64::from_le_bytes(self.buf));
        }
        let mut h = self.state ^ self.total;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        h
    }
}

/// One-shot convenience over [`FastHash`].
pub(crate) fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = FastHash::new();
    h.write(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_invariant() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let whole = hash_bytes(&data);
        for split in [1, 3, 7, 8, 9, 64, 999] {
            let mut h = FastHash::new();
            for c in data.chunks(split) {
                h.write(c);
            }
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn sensitive_to_every_bit_and_to_length() {
        let data = vec![0u8; 64];
        let base = hash_bytes(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(hash_bytes(&d), base, "flip {byte}.{bit} undetected");
            }
        }
        // Zero padding must not collide with explicit zeros.
        assert_ne!(hash_bytes(&[0; 3]), hash_bytes(&[0; 8]));
        assert_ne!(hash_bytes(b""), hash_bytes(&[0]));
    }

    #[test]
    fn known_stability() {
        // Snapshot checksums and stamps depend on this hash staying put
        // for format version 1: pinned literal vectors, so any edit to
        // SEED, PRIME, the round, or the finalizer — which would orphan
        // every existing snapshot file — fails loudly here (such a
        // change requires a format version bump).
        assert_eq!(hash_bytes(b""), 0x9ca0_66f1_a4ab_2eea);
        assert_eq!(hash_bytes(b"minctx"), 0x075c_8422_a7e1_e7f2);
        let ramp: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hash_bytes(&ramp), 0xa70d_3d5e_2090_8d37);
    }
}

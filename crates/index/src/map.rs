//! File mapping: the [`StableBytes`] backing that keeps an open snapshot's
//! columns valid for the life of the `Document`.
//!
//! On Unix the file is `mmap`ed read-only (`MAP_PRIVATE`) — opening a
//! snapshot then costs page-table setup plus the integrity scan, not a
//! copy of the file.  The raw syscalls are declared directly against the
//! C library the Rust runtime already links (the workspace is
//! dependency-free by design, so no `libc` crate).  Where `mmap` is
//! unavailable (non-Unix targets, or a map failure at runtime) the file
//! is read into an 8-byte-aligned heap buffer instead; both backings
//! satisfy the same alignment guarantees the `u32` column casts rely on.
//!
//! Under Miri (`cfg(miri)`) the mmap path is compiled out entirely —
//! the interpreter cannot execute foreign functions — so every snapshot
//! open goes through the heap fallback and the whole unsafe surface
//! stays Miri-executable.

use minctx_xml::StableBytes;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// A read-only byte region backing a mapped snapshot.
pub(crate) enum Mapping {
    #[cfg(all(unix, not(miri)))]
    Mmap { ptr: *const u8, len: usize },
    /// 8-byte-aligned heap copy (fallback); `.1` is the byte length.
    Heap(Vec<u64>, usize),
}

// SAFETY: the mapped region is read-only and never changes address for
// the life of the Mapping; the heap variant is an ordinary owned buffer.
unsafe impl Send for Mapping {}
// SAFETY: as for Send — the region is immutable, so concurrent reads
// through shared references are sound.
unsafe impl Sync for Mapping {}

// SAFETY: `bytes` returns the same pointer/length every call, and the
// region is unmapped/freed only on drop.
unsafe impl StableBytes for Mapping {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, not(miri)))]
            Mapping::Mmap { ptr, len } => {
                // SAFETY: `ptr` is what mmap returned, valid for `len`
                // bytes, and stays mapped until this value drops.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Mapping::Heap(buf, len) => {
                // SAFETY: the buffer holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

#[cfg(all(unix, not(miri)))]
impl Drop for Mapping {
    fn drop(&mut self) {
        if let Mapping::Mmap { ptr, len } = *self {
            // SAFETY: ptr/len are exactly what mmap returned.
            unsafe { sys::munmap(ptr as *mut core::ffi::c_void, len) };
        }
    }
}

#[cfg(all(unix, not(miri)))]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        // Declared against the platform C library std already links; the
        // signatures match POSIX with 64-bit `off_t` (all Tier-1 Unix
        // targets build with 64-bit file offsets).
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Maps (or, failing that, reads) `len` bytes of `file`.
pub(crate) fn map_file(file: &mut File, len: usize) -> std::io::Result<Mapping> {
    #[cfg(all(unix, not(miri)))]
    {
        use std::os::unix::io::AsRawFd;
        if len > 0 {
            // SAFETY: mapping a readable fd read-only/private; the result
            // is checked against MAP_FAILED before use.
            let p = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if p as isize != -1 {
                return Ok(Mapping::Mmap {
                    ptr: p as *const u8,
                    len,
                });
            }
            // Fall through to the heap read on any mmap failure.
        }
    }
    read_to_aligned_heap(file, len)
}

/// The portable fallback: the whole file in an 8-byte-aligned buffer.
fn read_to_aligned_heap(file: &mut File, len: usize) -> std::io::Result<Mapping> {
    let mut buf = vec![0u64; len.div_ceil(8)];
    // SAFETY: viewing the zero-initialized u64 buffer as bytes.
    let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(bytes)?;
    Ok(Mapping::Heap(buf, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("minctx-map-{}-{name}", std::process::id()))
    }

    #[test]
    fn mapping_reflects_file_contents() {
        let path = temp("contents");
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let m = map_file(&mut f, data.len()).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0, "base not 8-aligned");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_matches() {
        let path = temp("heap");
        let data = b"0123456789abc"; // deliberately not a multiple of 8
        std::fs::File::create(&path)
            .unwrap()
            .write_all(data)
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let m = read_to_aligned_heap(&mut f, data.len()).unwrap();
        assert_eq!(m.bytes(), data);
        std::fs::remove_file(&path).ok();
    }
}

//! The snapshot file format: header layout and section placement.
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MCTXSNP\x01"
//!      8     4  endian tag 0x0A0B0C0D (little-endian on disk; a reader
//!                on the wrong byte order sees a scrambled tag)
//!     12     4  format version (1)
//!     16     8  node_count
//!     24     8  name_count
//!     32     8  text_heap_len        (bytes)
//!     40     8  elem_post_len        (entries)
//!     48     8  attr_post_len        (entries)
//!     56     8  id_count             (entries)
//!     64     8  names_bytes_len      (bytes)
//!     72     8  stamp                (high bit set; see `lib.rs`)
//!     80     8  file_len             (bytes, whole file)
//!     88     8  header_hash          (FastHash of bytes 0..88)
//!     96     8  section_hash         (FastHash of bytes 104..file_len)
//!    104     —  sections, each 8-byte aligned, zero-padded between
//! ```
//!
//! Sections appear in the fixed order of [`Layout`]: the seven node
//! columns, the text-offset column, the postings CSR arrays, the id
//! index, the name table (CSR offsets + UTF-8 bytes), and the text heap
//! last (the `u8` sections trail the `u32` ones so every `u32` section
//! is naturally aligned; alignment is nevertheless re-checked at open).
//! All integers little-endian.  Section offsets are *computed from the
//! header counts*, not stored — `file_len` plus the two hashes make any
//! disagreement detectable.

/// Magic bytes; the final byte doubles as a coarse format generation.
pub(crate) const MAGIC: [u8; 8] = *b"MCTXSNP\x01";
/// Byte-order canary (reads back scrambled under the wrong endianness).
pub(crate) const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
/// Current format version.
pub(crate) const VERSION: u32 = 1;
/// Total header bytes; sections start here (8-aligned).
pub(crate) const HEADER_LEN: usize = 104;
/// Alignment of every section start.
pub(crate) const SECTION_ALIGN: usize = 8;

/// The decoded header counts (see the module docs for field meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Header {
    pub node_count: u64,
    pub name_count: u64,
    pub text_heap_len: u64,
    pub elem_post_len: u64,
    pub attr_post_len: u64,
    pub id_count: u64,
    pub names_bytes_len: u64,
    pub stamp: u64,
    pub file_len: u64,
    pub header_hash: u64,
    pub section_hash: u64,
}

impl Header {
    /// Serializes the header (used by the writer; `header_hash` must be
    /// patched in afterwards over bytes `0..88`).
    pub(crate) fn to_bytes(self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..8].copy_from_slice(&MAGIC);
        b[8..12].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
        b[12..16].copy_from_slice(&VERSION.to_le_bytes());
        for (i, v) in [
            self.node_count,
            self.name_count,
            self.text_heap_len,
            self.elem_post_len,
            self.attr_post_len,
            self.id_count,
            self.names_bytes_len,
            self.stamp,
            self.file_len,
            self.header_hash,
            self.section_hash,
        ]
        .into_iter()
        .enumerate()
        {
            b[16 + i * 8..24 + i * 8].copy_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Decodes the fixed-width fields (magic/endian/version are checked
    /// by the caller, which owns the error reporting).
    pub(crate) fn from_bytes(b: &[u8; HEADER_LEN]) -> Header {
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        Header {
            node_count: u64_at(16),
            name_count: u64_at(24),
            text_heap_len: u64_at(32),
            elem_post_len: u64_at(40),
            attr_post_len: u64_at(48),
            id_count: u64_at(56),
            names_bytes_len: u64_at(64),
            stamp: u64_at(72),
            file_len: u64_at(80),
            header_hash: u64_at(88),
            section_hash: u64_at(96),
        }
    }
}

/// One section: byte offset and *element* count (elements are `u32` for
/// the column sections, bytes for `name_bytes` / `text_heap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Sect {
    pub off: usize,
    pub count: usize,
}

/// The computed placement of every section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Layout {
    pub kinds: Sect,
    pub parent: Sect,
    pub first_child: Sect,
    pub last_child: Sect,
    pub next_sibling: Sect,
    pub prev_sibling: Sect,
    pub subtree_end: Sect,
    pub text_off: Sect,
    pub elem_off: Sect,
    pub elem_post: Sect,
    pub attr_off: Sect,
    pub attr_post: Sect,
    pub id_attrs: Sect,
    pub id_elems: Sect,
    pub name_off: Sect,
    pub name_bytes: Sect,
    pub text_heap: Sect,
    /// Total file length implied by the counts.
    pub total: usize,
}

/// Computes the layout from header counts; `None` when any count is
/// implausible enough to overflow the address computation (a corrupt or
/// adversarial header must not panic).
pub(crate) fn layout(h: &Header) -> Option<Layout> {
    // Columns index nodes/names with u32, so anything larger is garbage.
    let n = usize::try_from(h.node_count)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let names = usize::try_from(h.name_count)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let heap = usize::try_from(h.text_heap_len)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let eposts = usize::try_from(h.elem_post_len)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let aposts = usize::try_from(h.attr_post_len)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let ids = usize::try_from(h.id_count)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;
    let name_bytes = usize::try_from(h.names_bytes_len)
        .ok()
        .filter(|&v| v <= u32::MAX as usize)?;

    let mut cursor = HEADER_LEN;
    let mut sect = |count: usize, elem_size: usize| -> Option<Sect> {
        cursor = cursor.checked_add(SECTION_ALIGN - 1)? / SECTION_ALIGN * SECTION_ALIGN;
        let s = Sect { off: cursor, count };
        cursor = cursor.checked_add(count.checked_mul(elem_size)?)?;
        Some(s)
    };
    let lay = Layout {
        kinds: sect(n, 4)?,
        parent: sect(n, 4)?,
        first_child: sect(n, 4)?,
        last_child: sect(n, 4)?,
        next_sibling: sect(n, 4)?,
        prev_sibling: sect(n, 4)?,
        subtree_end: sect(n, 4)?,
        text_off: sect(n.checked_add(1)?, 4)?,
        elem_off: sect(names.checked_add(1)?, 4)?,
        elem_post: sect(eposts, 4)?,
        attr_off: sect(names.checked_add(1)?, 4)?,
        attr_post: sect(aposts, 4)?,
        id_attrs: sect(ids, 4)?,
        id_elems: sect(ids, 4)?,
        name_off: sect(names.checked_add(1)?, 4)?,
        name_bytes: sect(name_bytes, 1)?,
        text_heap: sect(heap, 1)?,
        total: 0,
    };
    Some(Layout {
        total: cursor,
        ..lay
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(n: u64) -> Header {
        Header {
            node_count: n,
            name_count: 3,
            text_heap_len: 13,
            elem_post_len: 5,
            attr_post_len: 2,
            id_count: 1,
            names_bytes_len: 9,
            stamp: 0,
            file_len: 0,
            header_hash: 0,
            section_hash: 0,
        }
    }

    #[test]
    fn header_round_trips() {
        let mut h = header(42);
        h.stamp = 0x8000_0000_0000_0001;
        h.file_len = 12345;
        h.header_hash = 7;
        h.section_hash = 9;
        assert_eq!(Header::from_bytes(&h.to_bytes()), h);
    }

    #[test]
    fn sections_are_aligned_and_non_overlapping() {
        let lay = layout(&header(1000)).unwrap();
        let sects = [
            (lay.kinds, 4),
            (lay.parent, 4),
            (lay.first_child, 4),
            (lay.last_child, 4),
            (lay.next_sibling, 4),
            (lay.prev_sibling, 4),
            (lay.subtree_end, 4),
            (lay.text_off, 4),
            (lay.elem_off, 4),
            (lay.elem_post, 4),
            (lay.attr_off, 4),
            (lay.attr_post, 4),
            (lay.id_attrs, 4),
            (lay.id_elems, 4),
            (lay.name_off, 4),
            (lay.name_bytes, 1),
            (lay.text_heap, 1),
        ];
        let mut prev_end = HEADER_LEN;
        for (s, elem) in sects {
            assert_eq!(s.off % SECTION_ALIGN, 0);
            assert!(s.off >= prev_end);
            prev_end = s.off + s.count * elem;
        }
        assert_eq!(lay.total, prev_end);
    }

    #[test]
    fn absurd_counts_do_not_panic() {
        let mut h = header(u64::MAX);
        assert_eq!(layout(&h), None);
        h.node_count = 10;
        h.text_heap_len = u64::MAX - 3;
        assert_eq!(layout(&h), None);
    }
}

//! Corruption robustness: truncated, bit-flipped, version-skewed and
//! handcrafted snapshot files must come back as [`SnapshotError`]s with
//! actionable messages — never a panic, and certainly never a document
//! built on garbage columns.

use minctx_index::{open_snapshot, write_snapshot, SnapshotError};
use std::io::Write;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("minctx-corrupt-{}-{name}.mctx", std::process::id()))
}

/// A small but representative snapshot: attributes, ids, text, comments,
/// PIs, several names.
fn sample_bytes() -> Vec<u8> {
    let doc = minctx_xml::parse(
        r#"<lib x="1"><b id="b1">text one</b><!--c--><?p d?><b id="b2" y="2">two<i/></b></lib>"#,
    )
    .unwrap();
    let path = temp("sample");
    write_snapshot(&doc, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

fn open_raw(name: &str, bytes: &[u8]) -> Result<minctx_xml::Document, SnapshotError> {
    let path = temp(name);
    std::fs::File::create(&path)
        .unwrap()
        .write_all(bytes)
        .unwrap();
    let r = open_snapshot(&path);
    std::fs::remove_file(&path).ok();
    r
}

#[test]
fn truncations_at_every_region_error_out() {
    let bytes = sample_bytes();
    // Empty file, partial header, partial sections, one byte short.
    for cut in [0, 1, 50, 103, 104, 200, bytes.len() / 2, bytes.len() - 1] {
        let e = open_raw("trunc", &bytes[..cut]).expect_err("truncated file opened");
        assert!(
            matches!(e, SnapshotError::Truncated { .. }),
            "cut at {cut}: unexpected error {e}"
        );
        // Messages must be actionable.
        assert!(e.to_string().contains("write_snapshot"), "cut {cut}: {e}");
    }
}

#[test]
fn appended_garbage_errors_out() {
    let mut bytes = sample_bytes();
    bytes.extend_from_slice(b"tail");
    let e = open_raw("tail", &bytes).expect_err("padded file opened");
    assert!(matches!(e, SnapshotError::Truncated { .. }), "{e}");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "whole-file bit-flip sweep is minutes-long under the interpreter"
)]
fn every_sampled_bit_flip_is_detected() {
    let bytes = sample_bytes();
    // Flip a byte at a spread of positions covering the header, every
    // section region, and the very last byte.  All must error; none may
    // panic or yield a document.
    let mut positions: Vec<usize> = (0..bytes.len()).step_by(13).collect();
    positions.push(bytes.len() - 1);
    for pos in positions {
        let mut b = bytes.clone();
        b[pos] ^= 0x40;
        match open_raw("flip", &b) {
            Err(_) => {}
            Ok(_) => panic!("bit flip at byte {pos} went undetected"),
        }
    }
}

#[test]
fn wrong_magic_version_and_endianness_are_distinct_errors() {
    let bytes = sample_bytes();

    let mut b = bytes.clone();
    b[0..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(
        open_raw("magic", &b).unwrap_err(),
        SnapshotError::NotASnapshot { .. }
    ));

    // Magic, endianness and version are checked *before* the header
    // hash, in that order, so flipping them reports the dedicated error
    // rather than a generic checksum mismatch.
    let mut b = bytes.clone();
    b[8..12].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    assert!(matches!(
        open_raw("endian", &b).unwrap_err(),
        SnapshotError::UnsupportedEndianness
    ));

    let mut b = bytes.clone();
    b[12..16].copy_from_slice(&999u32.to_le_bytes());
    let e = open_raw("version", &b).unwrap_err();
    assert!(
        matches!(
            e,
            SnapshotError::UnsupportedVersion {
                found: 999,
                supported: 1
            }
        ),
        "{e}"
    );
}

#[test]
fn header_and_section_corruption_name_their_region() {
    let bytes = sample_bytes();

    // A count field flip (inside the hashed header region).
    let mut b = bytes.clone();
    b[16] ^= 0x01; // node_count low byte
    let e = open_raw("hdr", &b).unwrap_err();
    assert!(
        matches!(
            e,
            SnapshotError::ChecksumMismatch {
                region: "header",
                ..
            }
        ),
        "{e}"
    );

    // A section byte flip.
    let mut b = bytes.clone();
    let last = b.len() - 1;
    b[last] ^= 0x80;
    let e = open_raw("sect", &b).unwrap_err();
    assert!(
        matches!(
            e,
            SnapshotError::ChecksumMismatch {
                region: "section",
                ..
            }
        ),
        "{e}"
    );
}

/// Re-implementation of the format-version-1 FastHash (pinned by
/// `hash.rs::known_stability`, so it cannot drift silently) and of the
/// documented header/section layout — enough to *re-sign* a mutated
/// snapshot so it passes both checksums and exercises the semantic
/// column validation behind them.
mod craft {
    fn hash(data: &[u8]) -> u64 {
        const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
        const PRIME: u64 = 0xC2B2_AE3D_27D4_EB4F;
        let mut state = SEED;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            state = (state ^ u64::from_le_bytes(c.try_into().unwrap()))
                .wrapping_mul(PRIME)
                .rotate_left(31);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            state = (state ^ u64::from_le_bytes(buf))
                .wrapping_mul(PRIME)
                .rotate_left(31);
        }
        let mut h = state ^ data.len() as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        h
    }

    /// Recomputes stamp + both checksums after a section mutation.
    pub fn resign(bytes: &mut [u8]) {
        let section = hash(&bytes[104..]);
        let stamp = (1u64 << 63) | (section & !(1u64 << 63));
        bytes[72..80].copy_from_slice(&stamp.to_le_bytes());
        bytes[96..104].copy_from_slice(&section.to_le_bytes());
        let header = hash(&bytes[..88]);
        bytes[88..96].copy_from_slice(&header.to_le_bytes());
    }

    /// Byte offset of a `u32` section entry, walking the documented
    /// layout: sections in fixed order, each 8-byte aligned.
    /// `section` indexes the order kinds=0, parent=1, first_child=2,
    /// last_child=3, next_sibling=4, prev_sibling=5, subtree_end=6,
    /// text_off=7, elem_off=8, elem_post=9.
    pub fn u32_entry_offset(bytes: &[u8], section: usize, entry: usize) -> usize {
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()) as usize;
        let n = u64_at(16);
        let names = u64_at(24);
        let counts = [n, n, n, n, n, n, n, n + 1, names + 1, u64_at(40)];
        let mut cursor = 104usize;
        for (i, &count) in counts.iter().enumerate() {
            cursor = cursor.div_ceil(8) * 8;
            if i == section {
                return cursor + entry * 4;
            }
            cursor += count * 4;
        }
        unreachable!("section index out of range");
    }

    /// Which byte region to locate with [`byte_region_offset`].
    #[derive(Clone, Copy)]
    pub enum ByteRegion {
        NameBytes,
        TextHeap,
    }

    /// Byte offset (and length) of one of the two `u8` sections,
    /// walking the full documented layout: the `u32` sections in fixed
    /// order, then `name_bytes`, then `text_heap`, each 8-byte aligned.
    pub fn byte_region_offset(bytes: &[u8], region: ByteRegion) -> (usize, usize) {
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()) as usize;
        let n = u64_at(16);
        let names = u64_at(24);
        // (count, width) in on-disk order; see `format.rs`.
        let sections = [
            (n, 4),          // kinds
            (n, 4),          // parent
            (n, 4),          // first_child
            (n, 4),          // last_child
            (n, 4),          // next_sibling
            (n, 4),          // prev_sibling
            (n, 4),          // subtree_end
            (n + 1, 4),      // text_off
            (names + 1, 4),  // elem_off
            (u64_at(40), 4), // elem_post
            (names + 1, 4),  // attr_off
            (u64_at(48), 4), // attr_post
            (u64_at(56), 4), // id_attrs
            (u64_at(56), 4), // id_elems
            (names + 1, 4),  // name_off
            (u64_at(64), 1), // name_bytes
            (u64_at(32), 1), // text_heap
        ];
        let want = match region {
            ByteRegion::NameBytes => 15,
            ByteRegion::TextHeap => 16,
        };
        let mut cursor = 104usize;
        for (i, &(count, width)) in sections.iter().enumerate() {
            cursor = cursor.div_ceil(8) * 8;
            if i == want {
                return (cursor, count);
            }
            cursor += count * width;
        }
        unreachable!("region index out of range");
    }
}

#[test]
fn resigned_link_cycle_is_rejected_not_hung() {
    // A checksum-consistent snapshot whose next_sibling column contains
    // a self-loop: without the pre-order direction validation this
    // would open fine and hang the first `children()` traversal.
    let mut bytes = sample_bytes();
    let off = craft::u32_entry_offset(&bytes, 4, 1); // next_sibling[1]
    bytes[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
    craft::resign(&mut bytes);
    let e = open_raw("cycle", &bytes).expect_err("cyclic snapshot opened");
    assert!(
        matches!(e, SnapshotError::Corrupt(_)) && e.to_string().contains("pre-order"),
        "{e}"
    );
}

#[test]
fn resigned_postings_mismatch_is_rejected() {
    // A checksum-consistent snapshot whose first element posting points
    // at node 0 (the root): membership validation must refuse it, so
    // name-test fast paths can never silently disagree with the kind
    // sweeps.
    let mut bytes = sample_bytes();
    let off = craft::u32_entry_offset(&bytes, 9, 0); // elem_post[0]
    bytes[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
    craft::resign(&mut bytes);
    let e = open_raw("postings", &bytes).expect_err("bad postings opened");
    assert!(
        matches!(e, SnapshotError::Corrupt(_)) && e.to_string().contains("postings"),
        "{e}"
    );
}

#[test]
fn resigned_invalid_utf8_in_the_text_heap_is_rejected() {
    // A checksum-consistent snapshot whose text heap holds a lone
    // continuation byte: the heap backs `from_utf8_unchecked` views for
    // the life of the document, so open must refuse it with the typed
    // error *before* any string is ever materialized.
    let mut bytes = sample_bytes();
    let (off, len) = craft::byte_region_offset(&bytes, craft::ByteRegion::TextHeap);
    assert!(len > 0, "sample document must have text content");
    bytes[off] = 0xFF; // never valid anywhere in UTF-8
    craft::resign(&mut bytes);
    let e = open_raw("heap-utf8", &bytes).expect_err("mojibake heap opened");
    assert!(
        matches!(
            e,
            SnapshotError::InvalidUtf8 {
                region: "text heap",
                valid_up_to: 0
            }
        ),
        "{e}"
    );
    assert!(e.to_string().contains("text heap"), "{e}");
}

#[test]
fn resigned_invalid_utf8_in_the_name_bytes_is_rejected() {
    // Same trust boundary, other region: the interned tag/attribute
    // names must be UTF-8 as a whole region, reported with the typed
    // error (not a per-name Corrupt message).
    let mut bytes = sample_bytes();
    let (off, len) = craft::byte_region_offset(&bytes, craft::ByteRegion::NameBytes);
    assert!(len > 0, "sample document must intern names");
    bytes[off] = 0xC0; // an overlong-encoding lead byte, always invalid
    craft::resign(&mut bytes);
    let e = open_raw("names-utf8", &bytes).expect_err("mojibake names opened");
    assert!(
        matches!(
            e,
            SnapshotError::InvalidUtf8 {
                region: "name bytes",
                valid_up_to: 0
            }
        ),
        "{e}"
    );
    assert!(e.to_string().contains("name bytes"), "{e}");
}

#[test]
fn resigning_without_mutation_still_opens() {
    // Sanity for the crafting harness itself: re-signing an unmodified
    // file reproduces a valid snapshot (same stamp, same answers).
    let bytes = sample_bytes();
    let mut resigned = bytes.clone();
    craft::resign(&mut resigned);
    assert_eq!(bytes, resigned, "resign must be a fixpoint on valid files");
    assert!(open_raw("fixpoint", &resigned).is_ok());
}

#[test]
fn non_snapshot_files_error_cleanly() {
    for (name, content) in [
        ("empty", &b""[..]),
        ("xml", &br#"<a><b/></a>"#[..]),
        ("zeros", &[0u8; 4096][..]),
    ] {
        match open_raw(name, content) {
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::NotASnapshot { .. }) => {}
            other => panic!("{name}: {other:?}"),
        }
    }
}

#[test]
fn error_display_is_actionable() {
    let e = open_raw("msg", &sample_bytes()[..60]).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("truncated") || msg.contains("bytes"), "{msg}");
    let e = open_snapshot(temp("does-not-exist")).unwrap_err();
    assert!(matches!(e, SnapshotError::Io(_)));
    assert!(e.to_string().contains("I/O"), "{e}");
}

// ---------------------------------------------------------------------
// Crash simulation: the atomic write protocol (temp file → fsync →
// rename → dir fsync) must keep the *final* path pristine through a
// kill at any byte and through a failure at any durability step.
// Fault plans are thread-local, so these tests can't perturb each
// other (or anything else in this process).

mod crash {
    use super::temp;
    use minctx_index::fault::{self, FaultPlan};
    use minctx_index::{
        open_snapshot, open_snapshot_or_quarantine, quarantine_snapshot, stale_temps,
        write_snapshot, SnapshotError,
    };
    use std::io::Write;

    /// Ensures `fault::clear()` runs even when an assertion unwinds.
    struct ClearFaults;
    impl Drop for ClearFaults {
        fn drop(&mut self) {
            fault::clear();
        }
    }

    fn doc_v1() -> minctx_xml::Document {
        minctx_xml::parse(r#"<v1 id="a"><x>one</x></v1>"#).unwrap()
    }

    fn doc_v2() -> minctx_xml::Document {
        minctx_xml::parse(r#"<v2 id="b"><y>two</y><y>three</y></v2>"#).unwrap()
    }

    #[test]
    fn kill_at_every_byte_never_exposes_a_partial_snapshot() {
        let _clear = ClearFaults;
        let path = temp("crash-every-byte");
        write_snapshot(&doc_v1(), &path).unwrap();
        let v1_stamp = open_snapshot(&path).unwrap().stamp();
        let v2 = doc_v2();

        // Walk the kill point forward one byte at a time until the
        // write stops dying — every section boundary (and every byte
        // between them) is covered on the way.
        let mut cut = 0u64;
        let mut kills = 0u32;
        loop {
            fault::install(FaultPlan {
                tear_after: Some(cut),
                ..FaultPlan::default()
            });
            match write_snapshot(&v2, &path) {
                Err(e) => {
                    assert!(matches!(e, SnapshotError::Io(_)), "cut {cut}: {e:?}");
                    // The final path still holds the complete previous
                    // snapshot...
                    let d = open_snapshot(&path)
                        .unwrap_or_else(|e| panic!("cut {cut}: final path corrupted: {e:?}"));
                    assert_eq!(d.stamp(), v1_stamp, "cut {cut}: wrong survivor");
                    // ...and the kill left its torn temp behind, like a
                    // real dead process (reaped by the next attempt).
                    assert_eq!(
                        stale_temps(&path).unwrap().len(),
                        1,
                        "cut {cut}: temp bookkeeping"
                    );
                    kills += 1;
                    cut += 1;
                }
                Ok(_) => break,
            }
        }
        fault::clear();

        assert!(kills > 0, "the fault plan never fired");
        // The surviving write is complete, correct, and reaped the
        // previous kill's torn temp.
        let d = open_snapshot(&path).unwrap();
        assert_ne!(d.stamp(), v1_stamp);
        assert_eq!(d.string_value(d.root()), "twothree");
        assert!(stale_temps(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_sync_and_rename_failures_keep_target_and_remove_temp() {
        let _clear = ClearFaults;
        for (name, plan) in [
            (
                "crash-sync",
                FaultPlan {
                    fail_sync: true,
                    ..FaultPlan::default()
                },
            ),
            (
                "crash-rename",
                FaultPlan {
                    fail_rename: true,
                    ..FaultPlan::default()
                },
            ),
        ] {
            let path = temp(name);
            write_snapshot(&doc_v1(), &path).unwrap();
            let v1_stamp = open_snapshot(&path).unwrap().stamp();

            fault::install(plan);
            let err = write_snapshot(&doc_v2(), &path).unwrap_err();
            fault::clear();

            assert!(matches!(err, SnapshotError::Io(_)), "{name}: {err:?}");
            // An error the process *survives* cleans up its own temp.
            assert!(
                stale_temps(&path).unwrap().is_empty(),
                "{name}: temp leaked"
            );
            assert_eq!(open_snapshot(&path).unwrap().stamp(), v1_stamp, "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn dir_sync_failure_reports_error_but_the_rename_stuck() {
        let _clear = ClearFaults;
        let path = temp("crash-dirsync");
        write_snapshot(&doc_v1(), &path).unwrap();
        let v1_stamp = open_snapshot(&path).unwrap().stamp();

        fault::install(FaultPlan {
            fail_dir_sync: true,
            ..FaultPlan::default()
        });
        let err = write_snapshot(&doc_v2(), &path).unwrap_err();
        fault::clear();

        // The caller sees a failure (durability of the directory entry
        // is unproven), but the rename happened: the final path holds
        // the *complete* new snapshot, never a partial one.
        assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
        let d = open_snapshot(&path).unwrap();
        assert_ne!(d.stamp(), v1_stamp);
        assert_eq!(d.string_value(d.root()), "twothree");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_temps_from_dead_writers_are_reaped_by_the_next_write() {
        let _clear = ClearFaults;
        let path = temp("crash-reap");
        // Forge two leftovers of "other processes" that died mid-write.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for n in ["99991-0", "99992-7"] {
            let t = path.with_file_name(format!(".{name}.tmp-{n}"));
            std::fs::File::create(&t)
                .unwrap()
                .write_all(b"torn")
                .unwrap();
        }
        assert_eq!(stale_temps(&path).unwrap().len(), 2);

        write_snapshot(&doc_v1(), &path).unwrap();
        assert!(stale_temps(&path).unwrap().is_empty());
        assert!(open_snapshot(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_snapshots_are_quarantined_aside() {
        let path = temp("crash-quarantine");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"not a snapshot at all")
            .unwrap();

        let err = open_snapshot_or_quarantine(&path).unwrap_err();
        // 21 bytes can't even hold the header: Truncated.  (A ≥104-byte
        // impostor would fail the magic check as NotASnapshot; both are
        // validation failures and both must quarantine.)
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. } | SnapshotError::NotASnapshot { .. }
            ),
            "{err:?}"
        );
        // The bad bytes moved aside for post-mortem; the path is free
        // for a rewrite.
        assert!(!path.exists());
        let quarantined = path.with_file_name(format!(
            "{}.corrupt",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert_eq!(
            std::fs::read(&quarantined).unwrap(),
            b"not a snapshot at all"
        );

        write_snapshot(&doc_v1(), &path).unwrap();
        assert!(open_snapshot_or_quarantine(&path).is_ok());
        assert!(path.exists(), "a valid snapshot must never be quarantined");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&quarantined).ok();
    }

    #[test]
    fn io_errors_do_not_quarantine() {
        let path = temp("crash-no-quarantine-io");
        let err = open_snapshot_or_quarantine(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
        // Nothing existed, nothing may appear.
        assert!(!path
            .with_file_name("crash-no-quarantine-io.corrupt")
            .exists());
    }

    #[test]
    fn explicit_quarantine_names_the_corpse() {
        let path = temp("crash-explicit-quarantine");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"bytes")
            .unwrap();
        let dest = quarantine_snapshot(&path).unwrap();
        assert!(!path.exists());
        assert!(dest.to_string_lossy().ends_with(".corrupt"), "{dest:?}");
        assert_eq!(std::fs::read(&dest).unwrap(), b"bytes");
        std::fs::remove_file(&dest).ok();
    }
}

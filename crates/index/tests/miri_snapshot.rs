//! Miri-tier snapshot round trip: `write → open → evaluate` over the
//! heap-backed mapping.
//!
//! Under Miri the `mmap` path is compiled out (`map.rs` gates it with
//! `cfg(not(miri))`), so this exercises the exact code a non-Unix or
//! map-failure open runs: the 8-aligned heap read, the `u32` section
//! reinterpret casts, and the borrowed-column document on top — all
//! interpreter-checked.  File I/O under Miri needs
//! `-Zmiri-disable-isolation`, which the CI job sets.
//!
//! In the ordinary tier the same test doubles as coverage that a
//! snapshot written by this build reopens correctly.

use minctx_index::{open_snapshot, write_snapshot};

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("minctx-miri-{}-{name}.mctx", std::process::id()))
}

#[test]
fn snapshot_write_open_evaluate_round_trip() {
    let doc = minctx_xml::parse(r#"<r a="1"><x id="i1">héllo</x><x>world</x></r>"#).unwrap();
    let path = temp("roundtrip");
    let info = write_snapshot(&doc, &path).unwrap();
    let re = open_snapshot(&path).unwrap();
    assert_eq!(re.stamp(), info.stamp);
    assert_eq!(re.debug_tree(), doc.debug_tree());
    assert_eq!(re.string_value(re.root()), "hélloworld");
    // Postings + id index read through the reinterpret casts.
    let x = re.find_name("x").unwrap();
    assert_eq!(re.element_postings(x).len(), 2);
    assert!(re.element_by_id("i1").is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn reopened_snapshot_outlives_its_open_scope() {
    // The document must keep the backing region (heap mapping under
    // Miri) alive on its own — reads after the path and every other
    // handle are gone are the use-after-free probe.
    let doc = minctx_xml::parse("<a><b>t</b></a>").unwrap();
    let re = {
        let path = temp("keepalive");
        write_snapshot(&doc, &path).unwrap();
        let re = open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        re
    };
    assert_eq!(re.string_value(re.root()), "t");
    assert_eq!(re.element_count(), 2);
}

//! The query-IR rewrite pipeline: semantics-preserving [`Query`]
//! transformations run before compilation (cf. *XPath Whole Query
//! Optimization*, PAPERS.md).
//!
//! [`rewrite`] rebuilds the arena bottom-up through a hash-consing
//! [`QueryBuilder`] and iterates to a fixpoint.  One pass applies:
//!
//! * **Step fusion** — `descendant-or-self::node()/child::a` (the expansion
//!   of `//a`) fuses to `descendant::a`, and likewise for a following
//!   `descendant(-or-self)` step; predicate-free `self::node()` steps are
//!   dropped.  Fusion changes each candidate's proximity position (children
//!   are numbered per parent, descendants per fused origin), so it applies
//!   **only when every predicate of the fused step is position-free** —
//!   checked via the [`Relev`](minctx_syntax::Relev) sets computed at
//!   lowering: a predicate that reads `position()` or `last()` carries the
//!   corresponding relevance bit (number predicates were normalized to
//!   `position() = e`, so they are covered).
//! * **Reverse-axis normalization** — `child::a/parent::node()` (and the
//!   `attribute` variant) flips into the forward existence test
//!   `self::node()[child::a]`, exact because `parent` inverts exactly those
//!   axes.  Under *existential* contexts — a path that is the direct
//!   argument of `boolean()`, which is where the normalizer puts every
//!   truth-valued path — trailing predicate-free total steps
//!   (`self`/`descendant-or-self`/`ancestor-or-self` `::node()`, which
//!   relate every node to itself) are dropped, and a trailing predicate-free
//!   reverse step is folded into an existence predicate on the previous step
//!   (`a[p]/ancestor::b` → `a[p][ancestor::b]`), where OPTMINCONTEXT answers
//!   it with one forward preimage sweep.  The reverse-step fold is applied
//!   only when an earlier step already carries a predicate: a fully
//!   predicate-free path is left intact for OPTMINCONTEXT's single
//!   whole-path backward pass.
//! * **Predicate hoisting + constant folding** — pure literal
//!   subexpressions are evaluated at rewrite time through the *same*
//!   conversion/function library the evaluators use ([`funcs::apply`],
//!   [`value::compare_scalars`](crate::value::compare_scalars)), `[true()]`
//!   predicates are dropped, and context-independent predicates
//!   (`Relev = ∅`, e.g. a folded `[1 = 2]` or a doc-dependent
//!   `[count(/log) > 5]`) are hoisted from inner steps to the front of the
//!   first step, so a constant-false filter kills the path before any axis
//!   walking.  Hoisting an all-or-nothing predicate never disturbs the
//!   positions later predicates observe.
//! * **Common-subexpression sharing** — the builder interns structurally
//!   identical nodes to one `ExprId`, so duplicated subtrees across union
//!   branches (or anywhere else) collapse; evaluators that memoize or
//!   materialize per node id then do the shared work once.
//!
//! Rewriting happens on the document-independent IR, *before*
//! [`CompiledQuery`](crate::CompiledQuery) resolves node tests — the
//! rewritten query is what gets compiled, so fused steps resolve their
//! tests like any others and the compiled-query cache keeps keying on the
//! original query's stamp.  The [`Engine`](crate::Engine) runs the pipeline
//! by default; `Engine::with_optimizer(false)` (or the `MINCTX_NO_OPTIMIZER`
//! environment variable) disables it, which is how the differential suite
//! evaluates every corpus query both raw and rewritten.

use crate::funcs;
use crate::naive::arith;
use crate::value::{compare_scalars, Value};
use minctx_syntax::{CmpOp, ExprId, Func, Node, PathStart, Query, QueryBuilder, Step, ValueType};
use minctx_xml::axes::{Axis, NodeTest};
use minctx_xml::Document;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Upper bound on passes; each pass only shrinks or normalizes, so real
/// queries reach the fixpoint in two or three.
const MAX_PASSES: usize = 8;

/// The rewrite rules, as stable names the EXPLAIN/profile surface
/// reports.  Each variant corresponds to one transformation site in the
/// rewriter; [`RewriteTrace`] counts how often each fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Predicate-free `self::node()` steps dropped (the identity step).
    DropSelfStep,
    /// The 3-step spec expansion of `following`/`preceding` fused onto
    /// one sliced-postings step.
    FuseFollowingChain,
    /// `following::node()/descendant-or-self::t` folded to `following::t`
    /// (dually `preceding`).
    FuseFollowingOrSelf,
    /// `descendant-or-self::node()/child::t` → `descendant::t` — the `//`
    /// fusion (and the following `descendant(-or-self)` variants).
    FuseDescendant,
    /// `child::t[p]/parent::node()` flipped to `self::node()[child::t[p]]`.
    FlipChildParent,
    /// Trailing total or-self steps dropped under existential contexts.
    DropExistentialTail,
    /// A trailing reverse step folded into an existence predicate.
    FoldReverseTail,
    /// A context-independent predicate hoisted to the first step.
    HoistConstantPredicate,
    /// A predicate that folded to literal `true()` dropped.
    DropTruePredicate,
    /// Constant folding: literal compare/arith/neg/call evaluation and
    /// boolean absorption in `or`/`and`.
    FoldConstant,
    /// `count(π) RelOp c` existence shapes rewritten to `boolean(π)`.
    CountExistence,
    /// Structurally identical union branches collapsed to one.
    DedupUnion,
}

impl Rule {
    /// All rules, in the stable order EXPLAIN reports them.
    pub const ALL: [Rule; 12] = [
        Rule::DropSelfStep,
        Rule::FuseFollowingChain,
        Rule::FuseFollowingOrSelf,
        Rule::FuseDescendant,
        Rule::FlipChildParent,
        Rule::DropExistentialTail,
        Rule::FoldReverseTail,
        Rule::HoistConstantPredicate,
        Rule::DropTruePredicate,
        Rule::FoldConstant,
        Rule::CountExistence,
        Rule::DedupUnion,
    ];

    /// A short stable kebab-case name (plan text, metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::DropSelfStep => "drop-self-step",
            Rule::FuseFollowingChain => "fuse-following-chain",
            Rule::FuseFollowingOrSelf => "fuse-following-or-self",
            Rule::FuseDescendant => "fuse-descendant",
            Rule::FlipChildParent => "flip-child-parent",
            Rule::DropExistentialTail => "drop-existential-tail",
            Rule::FoldReverseTail => "fold-reverse-tail",
            Rule::HoistConstantPredicate => "hoist-constant-predicate",
            Rule::DropTruePredicate => "drop-true-predicate",
            Rule::FoldConstant => "fold-constant",
            Rule::CountExistence => "count-existence",
            Rule::DedupUnion => "dedup-union",
        }
    }

    fn index(self) -> usize {
        Rule::ALL.iter().position(|&r| r == self).expect("in ALL")
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a [`rewrite_traced`] run did: how many fixpoint passes ran and
/// how often each [`Rule`] fired across them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteTrace {
    /// Arena rebuild passes run, including the final no-change pass that
    /// detects the fixpoint.
    pub passes: usize,
    counts: [u32; Rule::ALL.len()],
}

impl RewriteTrace {
    fn fire(&mut self, rule: Rule) {
        self.counts[rule.index()] += 1;
    }

    /// How many times `rule` fired.
    pub fn count(&self, rule: Rule) -> u32 {
        self.counts[rule.index()]
    }

    /// The rules that fired at least once, with their counts, in the
    /// stable [`Rule::ALL`] order.
    pub fn fired(&self) -> Vec<(Rule, u32)> {
        Rule::ALL
            .into_iter()
            .filter_map(|r| match self.count(r) {
                0 => None,
                n => Some((r, n)),
            })
            .collect()
    }

    /// Total firings across all rules.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Rewrites a query to its optimization fixpoint.  The result evaluates to
/// the same [`Value`](crate::Value) as the input at every context, under
/// every strategy — the differential and property suites assert exactly
/// that.
pub fn rewrite(query: &Query) -> Query {
    rewrite_traced(query).0
}

/// [`rewrite`], also reporting which rules fired how often — the
/// EXPLAIN/profile surface's view of the pipeline.  Tracing is a handful
/// of array increments; `rewrite` itself is implemented on top of this.
pub fn rewrite_traced(query: &Query) -> (Query, RewriteTrace) {
    let mut trace = RewriteTrace::default();
    let mut cur = rewrite_once(query, &mut trace);
    trace.passes = 1;
    for _ in 1..MAX_PASSES {
        let next = rewrite_once(&cur, &mut trace);
        trace.passes += 1;
        if next == cur {
            break;
        }
        cur = next;
    }
    (cur, trace)
}

/// One rebuild of the arena with all local transforms applied.
fn rewrite_once(q: &Query, trace: &mut RewriteTrace) -> Query {
    let mut rw = Rewriter {
        q,
        b: QueryBuilder::new(),
        map: HashMap::new(),
        trace,
    };
    let root = rw.rebuild(q.root());
    rw.b.finish(root)
}

struct Rewriter<'q, 't> {
    q: &'q Query,
    b: QueryBuilder,
    /// Old id → rebuilt id (non-existential rebuilds only; existential
    /// variants are rebuilt at their `boolean()` use sites and rely on the
    /// builder's interning for sharing).
    map: HashMap<ExprId, ExprId>,
    /// Rule-firing counters for the EXPLAIN surface.
    trace: &'t mut RewriteTrace,
}

impl Rewriter<'_, '_> {
    fn rebuild(&mut self, id: ExprId) -> ExprId {
        if let Some(&new) = self.map.get(&id) {
            return new;
        }
        let new = self.rebuild_uncached(id);
        self.map.insert(id, new);
        new
    }

    fn rebuild_uncached(&mut self, id: ExprId) -> ExprId {
        match self.q.node(id) {
            Node::Or(a, b) | Node::And(a, b) => {
                let is_or = matches!(self.q.node(id), Node::Or(..));
                let (a, b) = (*a, *b);
                let a2 = self.rebuild(a);
                // `x or true()` → `true()` etc.; operands are pure, so the
                // untaken side can be dropped (or never rebuilt at all).
                let absorbing = is_or; // `or` short-circuits on true, `and` on false
                match self.literal_bool(a2) {
                    Some(v) if v == absorbing => {
                        self.trace.fire(Rule::FoldConstant);
                        self.push_bool(absorbing)
                    }
                    Some(_) => {
                        self.trace.fire(Rule::FoldConstant);
                        self.rebuild(b)
                    }
                    None => {
                        let b2 = self.rebuild(b);
                        match self.literal_bool(b2) {
                            Some(v) if v == absorbing => {
                                self.trace.fire(Rule::FoldConstant);
                                self.push_bool(absorbing)
                            }
                            Some(_) => {
                                self.trace.fire(Rule::FoldConstant);
                                a2
                            }
                            None if is_or => self.b.push(Node::Or(a2, b2)),
                            None => self.b.push(Node::And(a2, b2)),
                        }
                    }
                }
            }
            Node::Compare(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let a2 = self.rebuild(a);
                let b2 = self.rebuild(b);
                if let Some(folded) = self.count_existence(op, a2, b2) {
                    return folded;
                }
                match (
                    literal_value(self.b.node(a2)),
                    literal_value(self.b.node(b2)),
                ) {
                    (Some(va), Some(vb)) => {
                        self.trace.fire(Rule::FoldConstant);
                        self.push_bool(compare_scalars(op, &va, &vb))
                    }
                    _ => self.b.push(Node::Compare(op, a2, b2)),
                }
            }
            Node::Arith(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let a2 = self.rebuild(a);
                let b2 = self.rebuild(b);
                match (self.b.node(a2), self.b.node(b2)) {
                    (Node::Number(x), Node::Number(y)) => {
                        let v = arith(op, *x, *y);
                        self.trace.fire(Rule::FoldConstant);
                        self.b.push(Node::Number(v))
                    }
                    _ => self.b.push(Node::Arith(op, a2, b2)),
                }
            }
            Node::Neg(a) => {
                let a2 = self.rebuild(*a);
                match self.b.node(a2) {
                    Node::Number(x) => {
                        let v = -*x;
                        self.trace.fire(Rule::FoldConstant);
                        self.b.push(Node::Number(v))
                    }
                    _ => self.b.push(Node::Neg(a2)),
                }
            }
            Node::Union(a, b) => {
                let (a, b) = (*a, *b);
                let a2 = self.rebuild(a);
                let b2 = self.rebuild(b);
                if a2 == b2 {
                    // Set union is idempotent; interning already proved the
                    // branches identical.
                    self.trace.fire(Rule::DedupUnion);
                    a2
                } else {
                    self.b.push(Node::Union(a2, b2))
                }
            }
            Node::Path(..) => self.rebuild_path(id, false),
            Node::Call(func, args) => {
                let func = *func;
                let args = args.clone();
                let new_args: Vec<ExprId> = args
                    .iter()
                    .map(|&a| {
                        if func == Func::Boolean && matches!(self.q.node(a), Node::Path(..)) {
                            // The argument's value is only tested for
                            // nonemptiness: rebuild it with the existential
                            // tail rules enabled.
                            self.rebuild_path(a, true)
                        } else {
                            self.rebuild(a)
                        }
                    })
                    .collect();
                match self.fold_call(func, &new_args) {
                    Some(folded) => {
                        self.trace.fire(Rule::FoldConstant);
                        self.b.push(folded)
                    }
                    None => self.b.push(Node::Call(func, new_args)),
                }
            }
            Node::Number(n) => self.b.push(Node::Number(*n)),
            Node::Literal(s) => self.b.push(Node::Literal(s.clone())),
        }
    }

    /// Rebuilds a path node: predicates rebuilt (literal `true()` dropped),
    /// steps fused and normalized, constant predicates hoisted.
    fn rebuild_path(&mut self, id: ExprId, existential: bool) -> ExprId {
        let Node::Path(start, steps) = self.q.node(id) else {
            unreachable!("rebuild_path on a non-path node");
        };
        let (start, steps) = (start.clone(), steps.clone());
        let start = match start {
            PathStart::Root => PathStart::Root,
            PathStart::Context => PathStart::Context,
            PathStart::Filter {
                primary,
                predicates,
            } => {
                let primary = self.rebuild(primary);
                let predicates = self.rebuild_predicates(&predicates);
                PathStart::Filter {
                    primary,
                    predicates,
                }
            }
        };
        let mut steps: Vec<Step> = steps
            .into_iter()
            .map(|s| Step {
                axis: s.axis,
                test: s.test,
                predicates: self.rebuild_predicates(&s.predicates),
            })
            .collect();
        self.optimize_steps(&start, &mut steps);
        if existential {
            self.existential_tail(&mut steps);
        }
        self.hoist_constant_predicates(&mut steps);
        self.b.push(Node::Path(start, steps))
    }

    /// Rebuilds a predicate list, dropping predicates that folded to
    /// literal `true()` (filtering by a constant-true predicate keeps every
    /// candidate and every later position unchanged).
    fn rebuild_predicates(&mut self, preds: &[ExprId]) -> Vec<ExprId> {
        let mut out = Vec::with_capacity(preds.len());
        for &p in preds {
            let p = self.rebuild(p);
            if self.literal_bool(p) == Some(true) {
                self.trace.fire(Rule::DropTruePredicate);
            } else {
                out.push(p);
            }
        }
        out
    }

    /// The step-level rules: `self::node()` elimination, `//`-fusion, the
    /// `child/parent` flip, and the `following`/`preceding` chain fusions.
    /// Loops until no rule fires.
    fn optimize_steps(&mut self, start: &PathStart, steps: &mut Vec<Step>) {
        loop {
            // A predicate-free `self::node()` step is the identity.
            if let Some(i) = steps.iter().position(|s| {
                s.axis == Axis::SelfAxis && s.test == NodeTest::AnyNode && s.predicates.is_empty()
            }) {
                steps.remove(i);
                self.trace.fire(Rule::DropSelfStep);
                continue;
            }
            let mut changed = false;
            for i in 0..steps.len().saturating_sub(1) {
                // `ancestor-or-self::node()/following-sibling::node()/
                // descendant-or-self::t[p…]` is the spec's expansion of
                // `following::t[p…]` (dually `preceding-sibling` /
                // `preceding`): fusing it onto one step lands the name
                // test on the sliced postings kernel.  Exact only for
                // non-attribute origins — this document model gives an
                // attribute's `following` the whole tail after the
                // attribute itself, which the chain (routed through the
                // owner element's siblings) cannot see — so the preceding
                // step (or a `Root` start) must rule attributes out.
                // Position-free predicates only: the fused step renumbers
                // proximity positions (one merged candidate list instead
                // of per-`descendant-or-self`-origin lists).
                if i + 2 < steps.len() {
                    let (a, b, c) = (&steps[i], &steps[i + 1], &steps[i + 2]);
                    if a.axis == Axis::AncestorOrSelf
                        && a.test == NodeTest::AnyNode
                        && a.predicates.is_empty()
                        && matches!(b.axis, Axis::FollowingSibling | Axis::PrecedingSibling)
                        && b.test == NodeTest::AnyNode
                        && b.predicates.is_empty()
                        && c.axis == Axis::DescendantOrSelf
                        && c.predicates.iter().all(|&p| self.position_free(p))
                        && origin_excludes_attributes(start, steps, i)
                    {
                        let axis = if b.axis == Axis::FollowingSibling {
                            Axis::Following
                        } else {
                            Axis::Preceding
                        };
                        steps[i] = Step {
                            axis,
                            test: c.test.clone(),
                            predicates: c.predicates.clone(),
                        };
                        steps.drain(i + 1..i + 3);
                        self.trace.fire(Rule::FuseFollowingChain);
                        changed = true;
                        break;
                    }
                }
                let (a, b) = (&steps[i], &steps[i + 1]);
                // `following::node()/descendant-or-self::t` ≡ `following::t`:
                // the `following` set is closed under descendants and every
                // member is its own descendant-or-self (dually `preceding`).
                // Unconditional — the or-self step applies to the already
                // attribute-free `following` result.
                if matches!(a.axis, Axis::Following | Axis::Preceding)
                    && a.test == NodeTest::AnyNode
                    && a.predicates.is_empty()
                    && b.axis == Axis::DescendantOrSelf
                    && b.predicates.iter().all(|&p| self.position_free(p))
                {
                    steps[i] = Step {
                        axis: a.axis,
                        test: b.test.clone(),
                        predicates: b.predicates.clone(),
                    };
                    steps.remove(i + 1);
                    self.trace.fire(Rule::FuseFollowingOrSelf);
                    changed = true;
                    break;
                }
                // `descendant-or-self::node()/child::t` ≡ `descendant::t`
                // (every proper descendant is a child of a descendant-or-
                // self node and vice versa); same argument fuses a following
                // `descendant(-or-self)` step.  Only for position-free
                // predicates — fusion renumbers proximity positions.
                if a.axis == Axis::DescendantOrSelf
                    && a.test == NodeTest::AnyNode
                    && a.predicates.is_empty()
                    && matches!(
                        b.axis,
                        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
                    )
                    && b.predicates.iter().all(|&p| self.position_free(p))
                {
                    let axis = match b.axis {
                        Axis::DescendantOrSelf => Axis::DescendantOrSelf,
                        _ => Axis::Descendant,
                    };
                    steps[i] = Step {
                        axis,
                        test: b.test.clone(),
                        predicates: b.predicates.clone(),
                    };
                    steps.remove(i + 1);
                    self.trace.fire(Rule::FuseDescendant);
                    changed = true;
                    break;
                }
                // `child::t[p]/parent::node()` ≡ `self::node()[child::t[p]]`
                // (`parent` exactly inverts `child` and `attribute`): the
                // reverse step becomes a forward existence predicate, with
                // identical inner positions.
                if matches!(a.axis, Axis::Child | Axis::Attribute)
                    && b.axis == Axis::Parent
                    && b.test == NodeTest::AnyNode
                    && b.predicates.is_empty()
                {
                    let inner = self.b.push(Node::Path(PathStart::Context, vec![a.clone()]));
                    let pred = self.b.push(Node::Call(Func::Boolean, vec![inner]));
                    steps[i] = Step {
                        axis: Axis::SelfAxis,
                        test: NodeTest::AnyNode,
                        predicates: vec![pred],
                    };
                    steps.remove(i + 1);
                    self.trace.fire(Rule::FlipChildParent);
                    changed = true;
                    break;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Tail rules for paths whose value is only tested for nonemptiness.
    fn existential_tail(&mut self, steps: &mut Vec<Step>) {
        while let Some(last) = steps.last() {
            if !last.predicates.is_empty() {
                break;
            }
            // `self`, `descendant-or-self` and `ancestor-or-self` relate
            // every node (attributes included) to itself, so under an
            // existential context a trailing `::node()` step of one of them
            // never changes nonemptiness.
            if last.test == NodeTest::AnyNode
                && matches!(
                    last.axis,
                    Axis::SelfAxis | Axis::DescendantOrSelf | Axis::AncestorOrSelf
                )
            {
                steps.pop();
                self.trace.fire(Rule::DropExistentialTail);
                continue;
            }
            // `…/s[p]/ancestor::b` (existential) ≡ `…/s[p][ancestor::b]`:
            // the reverse step becomes a per-node existence predicate the
            // backward pass answers with one forward preimage sweep.  Only
            // when an earlier predicate already rules out OPTMINCONTEXT's
            // whole-path backward propagation — a fully predicate-free path
            // is better left to that single pass.
            if last.axis.is_reverse()
                && steps.len() >= 2
                && steps[..steps.len() - 1]
                    .iter()
                    .any(|s| !s.predicates.is_empty())
            {
                let last = steps.pop().expect("checked non-empty");
                let inner = self.b.push(Node::Path(PathStart::Context, vec![last]));
                let pred = self.b.push(Node::Call(Func::Boolean, vec![inner]));
                steps
                    .last_mut()
                    .expect("len >= 2 before pop")
                    .predicates
                    .push(pred);
                self.trace.fire(Rule::FoldReverseTail);
                continue;
            }
            break;
        }
    }

    /// Moves context-independent (`Relev = ∅`) predicates from inner steps
    /// to the front of the first step.  Such a predicate has one value for
    /// the whole evaluation, so it filters all candidates or none wherever
    /// it sits — moving it earlier never changes the positions other
    /// predicates observe, and a constant-false one now short-circuits the
    /// path before any axis walking.
    fn hoist_constant_predicates(&mut self, steps: &mut [Step]) {
        if steps.len() < 2 {
            return;
        }
        let mut hoisted: Vec<ExprId> = Vec::new();
        for s in steps.iter_mut().skip(1) {
            let mut kept = Vec::with_capacity(s.predicates.len());
            for &p in &s.predicates {
                if self.b.relev(p).is_empty() {
                    hoisted.push(p);
                } else {
                    kept.push(p);
                }
            }
            s.predicates = kept;
        }
        if hoisted.is_empty() {
            return;
        }
        for _ in &hoisted {
            self.trace.fire(Rule::HoistConstantPredicate);
        }
        hoisted.append(&mut steps[0].predicates);
        steps[0].predicates = hoisted;
    }

    /// Folds a call whose arguments are all literals, through the shared
    /// function library.  Only functions that are pure and document-
    /// independent on scalar arguments are eligible; `position()`/`last()`
    /// read the context, `lang()` the context node, and the node-set
    /// functions their document.
    fn fold_call(&mut self, func: Func, args: &[ExprId]) -> Option<Node> {
        let foldable = matches!(
            func,
            Func::String
                | Func::Concat
                | Func::StartsWith
                | Func::Contains
                | Func::SubstringBefore
                | Func::SubstringAfter
                | Func::Substring
                | Func::StringLength
                | Func::NormalizeSpace
                | Func::Translate
                | Func::Boolean
                | Func::Not
                | Func::Number
                | Func::Floor
                | Func::Ceiling
                | Func::Round
        );
        if !foldable {
            return None;
        }
        let vals: Vec<Value> = args
            .iter()
            .map(|&a| literal_value(self.b.node(a)))
            .collect::<Option<_>>()?;
        // The document parameter is only read for node-set arguments, which
        // `literal_value` never produces; a static placeholder satisfies
        // the signature.
        let doc = placeholder_doc();
        let v = funcs::apply(doc, func, &vals, doc.root()).ok()?;
        Some(value_to_node(v))
    }

    /// Rewrites the existence shapes of `count(π) RelOp c` (ROADMAP
    /// leftover from PR 3): a cardinality that is only compared against
    /// an existence threshold never needs counting —
    ///
    /// ```text
    /// count(π) > 0   count(π) != 0   count(π) >= 1   →  boolean(π)
    /// count(π) = 0   count(π) <  1   count(π) <= 0   →  not(boolean(π))
    /// ```
    ///
    /// (and the mirrored `c RelOp count(π)` forms via the swapped
    /// operator).  Sound because `count` of a node-set is a non-negative
    /// integer and both sides are position-independent; guarded on the
    /// argument's *static* type being a node-set, so an ill-typed
    /// `count('x')` keeps its runtime error instead of becoming a
    /// successful `boolean('x')`.  Besides skipping the count, the
    /// `boolean(π)` form is exactly the shape OPTMINCONTEXT answers with
    /// one backward pass and the fixpoint's existential-tail rules
    /// simplify further.
    fn count_existence(&mut self, op: CmpOp, lhs: ExprId, rhs: ExprId) -> Option<ExprId> {
        let count_arg = |rw: &Self, id: ExprId| match rw.b.node(id) {
            Node::Call(Func::Count, args) => match args[..] {
                [arg] if rw.b.value_type(arg) == ValueType::NodeSet => Some(arg),
                _ => None,
            },
            _ => None,
        };
        let (op, arg, c) = match (count_arg(self, lhs), literal_value(self.b.node(rhs))) {
            (Some(arg), Some(Value::Number(c))) => (op, arg, c),
            _ => match (literal_value(self.b.node(lhs)), count_arg(self, rhs)) {
                (Some(Value::Number(c)), Some(arg)) => (op.swapped(), arg, c),
                _ => return None,
            },
        };
        // `c == 0.0` also accepts -0.0, for which the shapes hold just
        // the same; NaN thresholds satisfy neither comparison and are
        // left alone.
        let exists = if c == 0.0 {
            match op {
                CmpOp::Gt | CmpOp::Neq => true,
                CmpOp::Eq | CmpOp::Le => false,
                _ => return None,
            }
        } else if c == 1.0 {
            match op {
                CmpOp::Ge => true,
                CmpOp::Lt => false,
                _ => return None,
            }
        } else {
            return None;
        };
        self.trace.fire(Rule::CountExistence);
        let boolean = self.b.push(Node::Call(Func::Boolean, vec![arg]));
        Some(if exists {
            boolean
        } else {
            self.b.push(Node::Call(Func::Not, vec![boolean]))
        })
    }

    fn literal_bool(&self, id: ExprId) -> Option<bool> {
        match self.b.node(id) {
            Node::Call(Func::True, _) => Some(true),
            Node::Call(Func::False, _) => Some(false),
            _ => None,
        }
    }

    fn push_bool(&mut self, v: bool) -> ExprId {
        let f = if v { Func::True } else { Func::False };
        self.b.push(Node::Call(f, Vec::new()))
    }

    /// Whether a (rebuilt) predicate ignores `position()` and `last()`.
    fn position_free(&self, pred: ExprId) -> bool {
        let r = self.b.relev(pred);
        !r.position() && !r.size()
    }
}

/// Whether the origin set feeding `steps[i]` can contain attribute nodes.
/// `false` is required for the `following`/`preceding` chain fusion: the
/// fusion is exact on non-attribute origins only.
fn origin_excludes_attributes(start: &PathStart, steps: &[Step], i: usize) -> bool {
    if i > 0 {
        step_excludes_attributes(&steps[i - 1])
    } else {
        // An absolute path starts at the root node; a relative or filter
        // start could be (or contain) an attribute node.
        matches!(start, PathStart::Root)
    }
}

/// Whether a step's result set can never contain attribute nodes.  The
/// tree axes exclude attributes outright; the or-self and `self` axes
/// pass an attribute origin through `node()` tests (name and kind tests
/// on non-attribute axes only ever match elements/text/comments/PIs).
fn step_excludes_attributes(s: &Step) -> bool {
    match s.axis {
        Axis::Attribute => false,
        Axis::SelfAxis | Axis::DescendantOrSelf | Axis::AncestorOrSelf => {
            s.test != NodeTest::AnyNode
        }
        _ => true,
    }
}

/// The constant value of a literal node, if it is one.
fn literal_value(node: &Node) -> Option<Value> {
    match node {
        Node::Number(n) => Some(Value::Number(*n)),
        Node::Literal(s) => Some(Value::String(s.to_string())),
        Node::Call(Func::True, _) => Some(Value::Boolean(true)),
        Node::Call(Func::False, _) => Some(Value::Boolean(false)),
        _ => None,
    }
}

fn value_to_node(v: Value) -> Node {
    match v {
        Value::Number(n) => Node::Number(n),
        Value::String(s) => Node::Literal(s.into_boxed_str()),
        Value::Boolean(true) => Node::Call(Func::True, Vec::new()),
        Value::Boolean(false) => Node::Call(Func::False, Vec::new()),
        Value::NodeSet(_) => unreachable!("foldable functions never return node-sets"),
    }
}

fn placeholder_doc() -> &'static Document {
    static DOC: OnceLock<Document> = OnceLock::new();
    DOC.get_or_init(|| minctx_xml::parse("<x/>").expect("static placeholder parses"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;

    fn rw(src: &str) -> Query {
        rewrite(&parse_xpath(src).unwrap())
    }

    /// Rewriting `a` must yield exactly the query `b` lowers to (up to
    /// stamps, which [`Query`]'s `PartialEq` ignores).
    fn assert_rewrites_to(a: &str, b: &str) {
        let got = rw(a);
        let want = parse_xpath(b).unwrap();
        assert_eq!(got, want, "{a:?} rewrote to {got:#?}, expected {b:?}");
    }

    /// Queries outside every rule's shape must come back unchanged.
    fn assert_fixed(src: &str) {
        assert_rewrites_to(src, src);
    }

    #[test]
    fn double_slash_fuses_to_descendant() {
        assert_rewrites_to("//a", "/descendant::a");
        assert_rewrites_to("//a//b", "/descendant::a/descendant::b");
        assert_rewrites_to("//*", "/descendant::*");
        assert_rewrites_to("//text()", "/descendant::text()");
        assert_rewrites_to("a//b", "child::a/descendant::b");
        // The headline serving query: the predicate is position-free.
        assert_rewrites_to("//item[@id]", "/descendant::item[@id]");
        // A following descendant-or-self step also fuses.
        assert_rewrites_to(
            "/descendant-or-self::node()/descendant-or-self::a",
            "/descendant-or-self::a",
        );
    }

    #[test]
    fn positional_predicates_block_fusion() {
        assert_fixed("/descendant-or-self::node()/child::a[position() = 2]");
        assert_fixed("/descendant-or-self::node()/child::a[(position() = last())]");
        // Mixed predicates: one positional predicate vetoes the fusion.
        assert_fixed("/descendant-or-self::node()/child::a[b][(position() = 2)]");
        // Predicates on the descendant-or-self step itself also block.
        assert_fixed("/descendant-or-self::node()[b]/child::a");
    }

    #[test]
    fn self_node_steps_are_dropped() {
        assert_rewrites_to("./a", "child::a");
        assert_rewrites_to("a/./b", "child::a/child::b");
        // `self::*` is a real filter, not the identity.
        assert_fixed("child::a/self::*");
        // A predicated self step is a real filter too.
        assert_fixed("self::node()[b]");
    }

    #[test]
    fn child_parent_flips_to_self_predicate() {
        assert_rewrites_to("a/parent::node()", "self::node()[a]");
        assert_rewrites_to("@id/..", "self::node()[@id]");
        // Positional inner predicates survive the flip verbatim.
        assert_rewrites_to("a[2]/parent::node()", "self::node()[a[2]]");
        // `parent::a` names its parent: not the pure inverse, left alone.
        assert_fixed("child::b/parent::a");
    }

    #[test]
    fn existential_tails_are_normalized() {
        // Trailing total or-self steps under boolean() are dropped…
        assert_rewrites_to(
            "count(//a[b/descendant-or-self::node()])",
            "count(/descendant::a[b])",
        );
        assert_rewrites_to("boolean(a/ancestor-or-self::node())", "boolean(a)");
        // …but not outside an existential context.
        assert_fixed("child::a/ancestor-or-self::node()");
        // A trailing reverse step folds into a predicate when an earlier
        // step already has one (backward propagation was off the table).
        assert_rewrites_to("//x[a[b]/ancestor::c]", "/descendant::x[a[b][ancestor::c]]");
        // Fully predicate-free paths stay whole for OPTMINCONTEXT.
        assert_fixed("child::x[boolean(child::a/ancestor::c)]");
    }

    #[test]
    fn following_and_preceding_chains_fuse_onto_one_step() {
        // The spec expansion of `following::t` fuses back onto the single
        // sliced-postings step (ROADMAP leftover from PR 2/3).
        assert_rewrites_to(
            "/a/ancestor-or-self::node()/following-sibling::node()/descendant-or-self::item",
            "/child::a/following::item",
        );
        assert_rewrites_to(
            "/a/b/ancestor-or-self::node()/preceding-sibling::node()/descendant-or-self::*",
            "/child::a/child::b/preceding::*",
        );
        // An explicit or-self hop after following/preceding folds in too.
        assert_rewrites_to(
            "/a/following::node()/descendant-or-self::item",
            "/child::a/following::item",
        );
        assert_rewrites_to(
            "/a/preceding::node()/descendant-or-self::text()",
            "/child::a/preceding::text()",
        );
        // Position-free predicates ride along…
        assert_rewrites_to(
            "/a/ancestor-or-self::node()/following-sibling::node()/descendant-or-self::item[@id]",
            "/child::a/following::item[@id]",
        );
        // …but positional ones veto the fusion (positions renumber).
        assert_fixed(
            "/child::a/ancestor-or-self::node()\
             /following-sibling::node()/descendant-or-self::item[(position() = 2)]",
        );
        // Chains whose origin may be an attribute stay put: this model
        // gives an attribute's `following` the whole tail after the
        // attribute, which the sibling chain cannot express.
        assert_fixed(
            "/child::a/attribute::x/ancestor-or-self::node()\
             /following-sibling::node()/descendant-or-self::item",
        );
        assert_fixed("ancestor-or-self::node()/following-sibling::node()/descendant-or-self::item");
        // The root start is attribute-free, so a leading chain fuses.
        assert_rewrites_to(
            "/ancestor-or-self::node()/following-sibling::node()/descendant-or-self::item",
            "/following::item",
        );
    }

    #[test]
    fn constants_fold_through_the_shared_library() {
        let q = rw("1 + 2 * 3");
        assert!(matches!(q.node(q.root()), Node::Number(n) if *n == 7.0));
        let q = rw("string(1 div 0)");
        assert!(matches!(q.node(q.root()), Node::Literal(s) if &**s == "Infinity"));
        let q = rw("number('x') = number('x')");
        // NaN ≠ NaN, folded at rewrite time.
        assert!(matches!(q.node(q.root()), Node::Call(Func::False, _)));
        let q = rw("substring('12345', 1.5, 2.6)");
        assert!(matches!(q.node(q.root()), Node::Literal(s) if &**s == "234"));
        // The round() spec fix is visible to the folder too.
        let q = rw("1 div round(-0.2)");
        assert!(matches!(q.node(q.root()), Node::Number(n) if *n == f64::NEG_INFINITY));
        // `or`/`and` absorb literal booleans and keep the live side.
        let q = rw("a or true()");
        assert!(matches!(q.node(q.root()), Node::Call(Func::True, _)));
        let q = rw("false() or a");
        assert!(matches!(q.node(q.root()), Node::Call(Func::Boolean, _)));
        let q = rw("count(a) > 1 and false()");
        assert!(matches!(q.node(q.root()), Node::Call(Func::False, _)));
    }

    #[test]
    fn count_existence_shapes_rewrite_to_boolean_or_not() {
        // Positive shapes → boolean(π) (which is what OPTMINCONTEXT's
        // backward pass answers); the targets are spelled in their own
        // fully rewritten forms.
        assert_rewrites_to("count(//a) > 0", "boolean(/descendant::a)");
        assert_rewrites_to("count(//a) != 0", "boolean(/descendant::a)");
        assert_rewrites_to("count(//a) >= 1", "boolean(/descendant::a)");
        assert_rewrites_to("0 < count(//a)", "boolean(/descendant::a)");
        assert_rewrites_to("1 <= count(//a)", "boolean(/descendant::a)");
        assert_rewrites_to("0 != count(//a)", "boolean(/descendant::a)");
        // Negative shapes → not(π).
        assert_rewrites_to("count(//a) = 0", "not(/descendant::a)");
        assert_rewrites_to("count(//a) < 1", "not(/descendant::a)");
        assert_rewrites_to("count(//a) <= 0", "not(/descendant::a)");
        assert_rewrites_to("0 = count(//a)", "not(/descendant::a)");
        assert_rewrites_to("1 > count(//a)", "not(/descendant::a)");
        // Inside predicates, and composed with the existential tail rules
        // (the boolean() argument drops its trailing total or-self step).
        assert_rewrites_to("//x[count(a) > 0]", "/descendant::x[a]");
        assert_rewrites_to(
            "//x[count(a/descendant-or-self::node()) != 0]",
            "/descendant::x[a]",
        );
        // -0.0 thresholds behave like 0.0.
        assert_rewrites_to("count(//a) > -0", "boolean(/descendant::a)");
        // Non-existence thresholds are left alone…
        assert_fixed("count(/descendant::a) > 1");
        assert_fixed("count(/descendant::a) = 2");
        assert_fixed("count(/descendant::a) >= 0"); // constant true, but not an existence shape
                                                    // …as are comparisons of two counts.
        assert_fixed("count(/descendant::a) = count(/descendant::b)");
    }

    #[test]
    fn count_existence_rewriting_is_idempotent() {
        for src in ["count(//a) > 0", "count(//a) = 0", "//x[count(a) >= 1]"] {
            let once = rw(src);
            assert_eq!(once, rewrite(&once), "{src:?} not idempotent");
        }
    }

    #[test]
    fn true_predicates_vanish_and_constants_hoist() {
        assert_rewrites_to("a[true()]", "child::a");
        assert_rewrites_to("a[1 = 1]/b[not(false())]", "child::a/child::b");
        // A context-independent predicate moves to the first step (the
        // count-existence pass also rewrites it to `not(/c)` en route).
        assert_rewrites_to("a/b[count(/c) = 0]", "child::a[not(/c)]/child::b");
        assert_rewrites_to("a/b[count(/c) > 1]", "child::a[count(/c) > 1]/child::b");
        // Context-dependent predicates stay put.
        assert_fixed("child::a/child::b[c]");
    }

    #[test]
    fn union_branches_share_subexpressions() {
        let raw = parse_xpath("a[x = 1]/b | a[x = 1]/c").unwrap();
        let opt = rewrite(&raw);
        // The duplicated `a[x = 1]` predicate machinery is interned once.
        assert!(
            opt.len() < raw.len(),
            "no sharing: {} -> {} nodes",
            raw.len(),
            opt.len()
        );
        // Identical union branches collapse to one.
        let q = rw("a | a");
        assert!(matches!(q.node(q.root()), Node::Path(..)));
    }

    #[test]
    fn rewriting_is_idempotent_on_the_corpus_shapes() {
        for src in [
            "//a//b[c]",
            "//item[@id]",
            "(//a)[2]/b",
            "a[2]/parent::node()",
            "count(//a[b/ancestor::c])",
            "//book[@year = 2000][2]",
            "self::node()[a]",
            "1 div round(-0.2)",
        ] {
            let once = rw(src);
            let twice = rewrite(&once);
            assert_eq!(once, twice, "{src:?} not idempotent");
        }
    }

    #[test]
    fn rewrite_trace_reports_fired_rules() {
        // The headline serving query: `//` fusion fires exactly once, and
        // the trace names it; nothing else fires.
        let (q, tr) = rewrite_traced(&parse_xpath("//item[@id]").unwrap());
        assert_eq!(q, parse_xpath("/descendant::item[@id]").unwrap());
        assert_eq!(tr.count(Rule::FuseDescendant), 1);
        assert_eq!(tr.fired(), vec![(Rule::FuseDescendant, 1)]);
        assert!(tr.passes >= 2, "fixpoint needs a confirming pass");
        // A richer query fires several rules, reported in Rule::ALL order.
        let (_, tr) = rewrite_traced(&parse_xpath("//x[count(a) > 0]/./b[true()]").unwrap());
        let fired: Vec<Rule> = tr.fired().iter().map(|&(r, _)| r).collect();
        assert!(fired.contains(&Rule::FuseDescendant));
        assert!(fired.contains(&Rule::DropSelfStep));
        assert!(fired.contains(&Rule::DropTruePredicate));
        assert!(fired.contains(&Rule::CountExistence));
        let order: Vec<usize> = fired
            .iter()
            .map(|r| Rule::ALL.iter().position(|a| a == r).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "unstable order");
        // A fixed-point query fires nothing at all.
        let (_, tr) = rewrite_traced(&parse_xpath("child::a[b]").unwrap());
        assert_eq!(tr.total(), 0);
        assert!(tr.fired().is_empty());
        // Every rule has a distinct stable name.
        let names: std::collections::BTreeSet<_> = Rule::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    #[test]
    fn rebuilt_arenas_keep_children_before_parents() {
        for src in ["//a[b = 1] | //c[b = 1]", "//x[a[b]/ancestor::c]", "a/.."] {
            let q = rw(src);
            assert_eq!(q.root().index(), q.len() - 1, "{src:?}: root not last");
            for (id, node) in q.iter() {
                let check = |c: ExprId| assert!(c < id, "{src:?}: child {c} not before {id}");
                match node {
                    Node::Or(a, b)
                    | Node::And(a, b)
                    | Node::Compare(_, a, b)
                    | Node::Arith(_, a, b)
                    | Node::Union(a, b) => {
                        check(*a);
                        check(*b);
                    }
                    Node::Neg(a) => check(*a),
                    Node::Call(_, args) => args.iter().copied().for_each(check),
                    Node::Path(start, steps) => {
                        if let PathStart::Filter {
                            primary,
                            predicates,
                        } = start
                        {
                            check(*primary);
                            predicates.iter().copied().for_each(check);
                        }
                        for st in steps {
                            st.predicates.iter().copied().for_each(check);
                        }
                    }
                    Node::Number(_) | Node::Literal(_) => {}
                }
            }
        }
    }
}

//! A small least-recently-used map, shared by the [`Engine`](crate::Engine)'s
//! compiled-query cache and the `minctx-serve` sharded caches.
//!
//! Deliberately simple (std-only, no intrusive list): entries carry a
//! monotone use tick and eviction scans for the minimum.  Lookups and
//! hits are `O(1)`; eviction is `O(len)` — fine for the capacities these
//! caches run at (tens to a few hundred entries), where eviction is rare
//! and a scan over a small flat map is cheaper than maintaining linked
//! structure on every hit.  The previous `Engine` policy — clear the
//! whole map when full — threw away every hot compilation whenever churn
//! (ad-hoc query strings, rotating corpora) filled the cache; LRU keeps
//! the hot set resident instead.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    used: u64,
}

impl<K: Eq + Hash, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (clamped to a
    /// minimum of 1 — a zero-capacity cache would make every insert a
    /// self-eviction).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            tick: 0,
        }
    }

    /// Looks up `key`, marking the entry most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.used = tick;
            &e.value
        })
    }

    /// Whether `key` is resident, without touching its recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

// `insert` needs to clone the evicted key out of the map before removal,
// hence the extra `Clone` bound.
impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry first when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                used: self.tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
    }

    #[test]
    fn replacing_a_resident_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert!(c.contains(&"b"));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.len(), 1);
        assert!(c.contains(&2));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }
}

//! The deliberately naive evaluator: Section 1's exponential baseline.
//!
//! This models the XPath engines the paper benchmarks against (XALAN, XT,
//! IE6): location paths are evaluated *context node at a time*, recursing
//! into every subexpression afresh for every context, and — crucially —
//! intermediate node lists are **not deduplicated**.  On the paper's query
//! family
//!
//! ```text
//! //b, //b/parent::a/child::b, //b/parent::a/child::b/parent::a/child::b, …
//! ```
//!
//! over the two-`<b/>` document, each `parent::a/child::b` pair doubles the
//! context list, so running time is `Θ(2^(|Q|/2))`.  The evaluator charges
//! an abstract work unit per expression visit and per candidate node
//! against the caller's [`BudgetMeter`], and aborts with
//! [`EvalError::BudgetExhausted`] once the fuel or deadline is spent —
//! which is how the test suite demonstrates the blow-up without waiting
//! for it.
//!
//! The final value of a path is deduplicated into a proper [`NodeSet`], so
//! the naive strategy is *correct*, just exponentially slow.

use crate::budget::BudgetMeter;
use crate::compile::CompiledQuery;
use crate::engine::{Context, Evaluator, Strategy};
use crate::error::EvalError;
use crate::funcs;
use crate::value::{compare, Value};
use minctx_syntax::{ArithOp, ExprId, Func, Node, PathStart, Step};
use minctx_xml::{Document, NodeId, NodeSet, Scratch};

/// The exponential-time baseline evaluator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Evaluator for Naive {
    fn strategy(&self) -> Strategy {
        Strategy::Naive
    }

    fn evaluate(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        ctx: Context,
        _scratch: &mut Scratch,
        meter: &mut BudgetMeter,
    ) -> Result<Value, EvalError> {
        let mut run = Run { doc, query, meter };
        run.eval(query.query().root(), ctx)
    }
}

struct Run<'d, 'q, 'm> {
    doc: &'d Document,
    query: &'q CompiledQuery,
    meter: &'m mut BudgetMeter,
}

impl Run<'_, '_, '_> {
    fn charge(&mut self, units: u64) -> Result<(), EvalError> {
        self.meter.charge(units)
    }

    fn eval(&mut self, id: ExprId, ctx: Context) -> Result<Value, EvalError> {
        self.charge(1)?;
        Ok(match self.query.query().node(id) {
            Node::Or(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() || self.eval(*b, ctx)?.boolean())
            }
            Node::And(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() && self.eval(*b, ctx)?.boolean())
            }
            Node::Compare(op, a, b) => {
                let va = self.eval(*a, ctx)?;
                let vb = self.eval(*b, ctx)?;
                Value::Boolean(compare(self.doc, *op, &va, &vb))
            }
            Node::Arith(op, a, b) => {
                let x = self.eval(*a, ctx)?.number(self.doc);
                let y = self.eval(*b, ctx)?.number(self.doc);
                Value::Number(arith(*op, x, y))
            }
            Node::Neg(a) => Value::Number(-self.eval(*a, ctx)?.number(self.doc)),
            Node::Union(a, b) => {
                let x = self.eval(*a, ctx)?.into_node_set()?;
                let y = self.eval(*b, ctx)?.into_node_set()?;
                Value::NodeSet(x.union(&y))
            }
            Node::Path(start, steps) => self.eval_path(id, start, steps, ctx)?,
            Node::Call(Func::Position, _) => Value::Number(ctx.position as f64),
            Node::Call(Func::Last, _) => Value::Number(ctx.size as f64),
            Node::Call(func, args) => {
                let vals = args
                    .iter()
                    .map(|&a| self.eval(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                funcs::apply(self.doc, *func, &vals, ctx.node)?
            }
            Node::Number(n) => Value::Number(*n),
            Node::Literal(s) => Value::String(s.to_string()),
        })
    }

    fn eval_path(
        &mut self,
        path_id: ExprId,
        start: &PathStart,
        steps: &[Step],
        ctx: Context,
    ) -> Result<Value, EvalError> {
        // The context *list*: duplicates deliberately retained.
        let mut cur: Vec<NodeId> = match start {
            PathStart::Root => vec![self.doc.root()],
            PathStart::Context => vec![ctx.node],
            PathStart::Filter {
                primary,
                predicates,
            } => {
                let primary = self.eval(*primary, ctx)?.into_node_set()?;
                let mut list: Vec<NodeId> = primary.into_vec();
                for &p in predicates {
                    list = self.filter_candidates(p, list)?;
                }
                list
            }
        };
        for (si, step) in steps.iter().enumerate() {
            // Node tests were resolved at compile time; no per-origin name
            // lookups even in the deliberately slow baseline.
            let test = self.query.step_test(path_id, si);
            let mut next = Vec::new();
            let mut cands = Vec::new();
            for &x in &cur {
                self.charge(1)?;
                self.doc.axis_nodes_into(step.axis, x, test, &mut cands);
                self.charge(cands.len() as u64)?;
                let mut kept = std::mem::take(&mut cands);
                for &p in &step.predicates {
                    kept = self.filter_candidates(p, kept)?;
                }
                next.extend_from_slice(&kept);
                cands = kept;
            }
            cur = next;
        }
        Ok(Value::NodeSet(NodeSet::from_unsorted_with_capacity(
            self.doc.len(),
            cur,
        )))
    }

    /// Applies one predicate to a candidate list, renumbering proximity
    /// positions among the candidates (axis order is already baked into the
    /// list order).
    fn filter_candidates(
        &mut self,
        pred: ExprId,
        cands: Vec<NodeId>,
    ) -> Result<Vec<NodeId>, EvalError> {
        let size = cands.len();
        let mut kept = Vec::with_capacity(size);
        for (i, &y) in cands.iter().enumerate() {
            let inner = Context {
                node: y,
                position: i + 1,
                size,
            };
            if self.eval(pred, inner)?.boolean() {
                kept.push(y);
            }
        }
        Ok(kept)
    }
}

pub(crate) fn arith(op: ArithOp, a: f64, b: f64) -> f64 {
    match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        // XPath `div`/`mod` are IEEE: div by zero gives ±Infinity, and mod
        // takes the sign of the dividend — both match Rust's `f64` ops.
        ArithOp::Div => a / b,
        ArithOp::Mod => a % b,
    }
}

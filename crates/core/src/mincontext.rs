//! MINCONTEXT and OPTMINCONTEXT (Sections 3 and 4 of the paper).
//!
//! The algorithmic content of the paper, in two layers:
//!
//! **MINCONTEXT** (Section 3).  Location paths are evaluated *set at a
//! time* with deduplication (so step chains stay linear in `|D|` instead of
//! exploding like the naive context-at-a-time loop), and every expression
//! node `N` memoizes its value keyed on the *relevant context* `Relev(N)`
//! computed during lowering: a predicate such as `position() != last()`
//! (`Relev = {position, size}`) is evaluated once per distinct `(k, n)`
//! pair *across all context nodes*, a predicate path such as `child::b`
//! (`Relev = {node}`) once per distinct context node regardless of the
//! positional context, and an absolute path exactly once per document.
//! Since each node is evaluated at most once per distinct relevant context
//! and only contexts that actually arise are ever touched (the top-down
//! recursion is the paper's context-propagation), total work is polynomial
//! — `O(|D|·|Q|)` on Core XPath and the Extended Wadler fragment
//! (Theorems 7 and 10).
//!
//! **OPTMINCONTEXT** (Section 4, plus the backward-propagation rule of the
//! VLDB'02 predecessor's Section 6).  On top of MINCONTEXT, predicates of
//! the shapes
//!
//! ```text
//! boolean(π)        π RelOp c        c RelOp π
//! ```
//!
//! where `π` is a predicate-free relative path and `c` a constant scalar,
//! are answered from a single *backward pass*: the node-level comparison
//! set `T = {y | strval(y) op c}` is propagated through the inverse axes
//! `χ⁻¹` (one `O(|D|)` [`axis_preimage`] sweep per step, including the
//! id-"axis" of Section 4), yielding the set of context nodes for which
//! the predicate holds.  Every subsequent predicate check is then an
//! `O(log |D|)` membership test instead of a fresh `O(|D|)` forward walk.

use crate::budget::BudgetMeter;
use crate::compile::CompiledQuery;
use crate::engine::{Context, Evaluator, Strategy};
use crate::error::EvalError;
use crate::explain::{ProfileCollector, StepObservation};
use crate::funcs;
use crate::naive::arith;
use crate::value::{compare, node_scalar_compare, Value};
use minctx_syntax::{ExprId, Func, Node, PathStart, Relev, Step};
use minctx_xml::axes::{
    axis_image_into, axis_image_into_par, axis_nodes_into_par, axis_preimage_into,
    axis_preimage_into_par, classify_image_route, classify_single_route, Axis, ResolvedTest,
};
use minctx_xml::par::chunk_bounds;
use minctx_xml::{Document, NodeId, NodeSet, ParConfig, Scratch, WorkerPool};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Parallel-evaluation settings threaded from the engine
/// ([`Engine::with_threads`](crate::Engine::with_threads)): the shared
/// work-splitting pool plus the size gating for the chunked kernels and
/// the per-context fan-out.
#[derive(Debug, Clone)]
pub struct ParSettings {
    /// The engine's worker pool (shared across engine clones; regions are
    /// serialized inside the pool).
    pub pool: Arc<WorkerPool>,
    /// When the chunked paths engage and how finely they split.
    pub config: ParConfig,
}

fn fanout_counter() -> &'static minctx_obs::Counter {
    static C: OnceLock<minctx_obs::Counter> = OnceLock::new();
    C.get_or_init(|| minctx_obs::global().counter("par/fanout_regions"))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The MINCONTEXT evaluator; with `optimized` set, OPTMINCONTEXT.
#[derive(Debug, Clone, Default)]
pub struct MinContext {
    /// Enables the Section-4 backward-propagation optimizations.
    pub optimized: bool,
    /// With parallel settings attached, large axis sweeps run on the
    /// chunked kernels and predicated steps fan the context set out
    /// across the pool — results stay bit-identical to sequential
    /// evaluation (chunks merge by pre-order ordinal).  `None` (the
    /// default) is the exact sequential code path.
    pub parallel: Option<ParSettings>,
}

impl Evaluator for MinContext {
    fn strategy(&self) -> Strategy {
        if self.optimized {
            Strategy::OptMinContext
        } else {
            Strategy::MinContext
        }
    }

    fn evaluate(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        ctx: Context,
        scratch: &mut Scratch,
        meter: &mut BudgetMeter,
    ) -> Result<Value, EvalError> {
        let mut run = Run {
            doc,
            query,
            opt: self.optimized,
            memo: vec![HashMap::new(); query.query().len()],
            backward: vec![None; query.query().len()],
            scratch,
            meter,
            prof: None,
            par: self.parallel.clone(),
        };
        run.eval(query.query().root(), ctx)
    }
}

impl MinContext {
    /// [`Evaluator::evaluate`] with a [`ProfileCollector`] attached: the
    /// instrumented entry point behind [`Engine::explain`]. Identical
    /// semantics and fuel accounting; the profiled run additionally reads
    /// the clock once per path step.
    ///
    /// [`Engine::explain`]: crate::Engine::explain
    pub(crate) fn evaluate_profiled(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        ctx: Context,
        scratch: &mut Scratch,
        meter: &mut BudgetMeter,
        prof: &mut ProfileCollector,
    ) -> Result<Value, EvalError> {
        let mut run = Run {
            doc,
            query,
            opt: self.optimized,
            memo: vec![HashMap::new(); query.query().len()],
            backward: vec![None; query.query().len()],
            scratch,
            meter,
            prof: Some(prof),
            par: self.parallel.clone(),
        };
        run.eval(query.query().root(), ctx)
    }
}

struct Run<'d, 'q, 's, 'm, 'p> {
    doc: &'d Document,
    query: &'q CompiledQuery,
    opt: bool,
    /// Per expression node: relevant-context key → value.
    memo: Vec<HashMap<u128, Value>>,
    /// OPTMINCONTEXT: per predicate node, the set of context nodes for
    /// which the predicate holds (computed by one backward pass).
    backward: Vec<Option<NodeSet>>,
    /// Reusable axis-kernel working memory (engine-owned).
    scratch: &'s mut Scratch,
    /// Fuel/deadline accounting: charged per memo-miss compute, per axis
    /// sweep (proportional to the context set), per candidate filtered,
    /// and per backward-propagation pass (proportional to the document).
    meter: &'m mut BudgetMeter,
    /// EXPLAIN instrumentation; `None` (the common case) costs one branch
    /// per hook and never reads the clock.
    prof: Option<&'p mut ProfileCollector>,
    /// Parallel settings; `None` keeps every kernel and loop on the exact
    /// sequential path.  Fan-out workers always run with `None` — nested
    /// regions would serialize on the pool's region lock for no benefit.
    par: Option<ParSettings>,
}

/// What one fan-out chunk hands back to the parent run.
struct ChunkOutcome {
    /// Kept candidates, concatenated in origin order.
    acc: Vec<NodeId>,
    /// The worker's memo tables, merged back after the region.
    memo: Vec<HashMap<u128, Value>>,
    /// The worker's backward sets (OPTMINCONTEXT), merged back likewise.
    backward: Vec<Option<NodeSet>>,
    /// The first evaluation error the worker hit, if any.
    err: Option<EvalError>,
}

/// Packs the *relevant* components of a context into a memo key; the
/// irrelevant components are zeroed so contexts that agree on `Relev(N)`
/// share an entry.  42-bit fields: node ids are `u32` by construction,
/// and positions/sizes are bounded by the document's node count, so any
/// document the arena can represent fits without aliasing (the previous
/// `u64` key packed 21-bit fields and had to refuse documents past 2²¹
/// nodes — the 10⁶-element XMark tier among them).
fn memo_key(relev: Relev, ctx: Context) -> u128 {
    debug_assert!(ctx.position <= u32::MAX as usize && ctx.size <= u32::MAX as usize);
    let mut key = 0u128;
    if relev.node() {
        key |= ctx.node.index() as u128;
    }
    if relev.position() {
        key |= (ctx.position as u128) << 42;
    }
    if relev.size() {
        key |= (ctx.size as u128) << 84;
    }
    key
}

impl<'q> Run<'_, 'q, '_, '_, '_> {
    fn eval(&mut self, id: ExprId, ctx: Context) -> Result<Value, EvalError> {
        let key = memo_key(self.query.query().relev(id), ctx);
        if let Some(v) = self.memo[id.index()].get(&key) {
            if let Some(p) = &mut self.prof {
                p.memo_hit();
            }
            return Ok(v.clone());
        }
        // Memo misses are the unit of work MINCONTEXT's complexity bound
        // counts; hits are free.
        self.meter.charge(1)?;
        if let Some(p) = &mut self.prof {
            p.memo_miss();
        }
        let v = self.compute(id, ctx)?;
        self.memo[id.index()].insert(key, v.clone());
        Ok(v)
    }

    fn compute(&mut self, id: ExprId, ctx: Context) -> Result<Value, EvalError> {
        if self.opt {
            if let Some(holds) = self.try_backward(id, ctx.node)? {
                return Ok(Value::Boolean(holds));
            }
        }
        Ok(match self.query.query().node(id) {
            Node::Or(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() || self.eval(*b, ctx)?.boolean())
            }
            Node::And(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() && self.eval(*b, ctx)?.boolean())
            }
            Node::Compare(op, a, b) => {
                let va = self.eval(*a, ctx)?;
                let vb = self.eval(*b, ctx)?;
                Value::Boolean(compare(self.doc, *op, &va, &vb))
            }
            Node::Arith(op, a, b) => {
                let x = self.eval(*a, ctx)?.number(self.doc);
                let y = self.eval(*b, ctx)?.number(self.doc);
                Value::Number(arith(*op, x, y))
            }
            Node::Neg(a) => Value::Number(-self.eval(*a, ctx)?.number(self.doc)),
            Node::Union(a, b) => {
                let x = self.eval(*a, ctx)?.into_node_set()?;
                let y = self.eval(*b, ctx)?.into_node_set()?;
                Value::NodeSet(x.union(&y))
            }
            Node::Path(start, steps) => self.eval_path(id, start, steps, ctx)?,
            Node::Call(Func::Position, _) => Value::Number(ctx.position as f64),
            Node::Call(Func::Last, _) => Value::Number(ctx.size as f64),
            Node::Call(func, args) => {
                let vals = args
                    .iter()
                    .map(|&a| self.eval(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                funcs::apply(self.doc, *func, &vals, ctx.node)?
            }
            Node::Number(n) => Value::Number(*n),
            Node::Literal(s) => Value::String(s.to_string()),
        })
    }

    /// Set-at-a-time path evaluation with deduplication after every step.
    fn eval_path(
        &mut self,
        path_id: ExprId,
        start: &PathStart,
        steps: &[Step],
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let mut cur: NodeSet = match start {
            PathStart::Root => NodeSet::singleton(self.doc.root()),
            PathStart::Context => NodeSet::singleton(ctx.node),
            PathStart::Filter {
                primary,
                predicates,
            } => {
                let primary = self.eval(*primary, ctx)?.into_node_set()?;
                let mut list: Vec<NodeId> = primary.into_vec();
                for &p in predicates {
                    list = self.filter_candidates(p, list)?;
                }
                // Filtering a document-ordered list keeps it sorted.
                NodeSet::from_sorted_vec(list)
            }
        };
        let mut next = NodeSet::new();
        for (si, step) in steps.iter().enumerate() {
            if cur.is_empty() {
                break;
            }
            // Node tests were resolved at compile time (postings-backed
            // fast paths dispatch on the resolved name).
            let test = self.query.step_test(path_id, si);
            // An axis sweep touches at least the whole context set.
            self.meter.charge(cur.len() as u64 + 1)?;
            // Only a profiled run reads the clock; the step's route and
            // cardinalities are recorded after the kernel (and, for
            // predicated steps, the predicate filtering) finish.
            let timer = self.prof.is_some().then(Instant::now);
            let input = cur.len();
            if step.predicates.is_empty() {
                // Predicate-free step: one axis sweep for the whole
                // context set, ping-ponging two reused buffers.  With
                // parallel settings attached, large sweeps run on the
                // chunked kernels (same output, merged by ordinal).
                let chunks = match &self.par {
                    Some(ps) => axis_image_into_par(
                        self.doc,
                        step.axis,
                        &cur,
                        test,
                        self.scratch,
                        &mut next,
                        &ps.pool,
                        ps.config,
                    ),
                    None => {
                        axis_image_into(self.doc, step.axis, &cur, test, self.scratch, &mut next);
                        0
                    }
                };
                // Charge the sweep's output too: from a singleton
                // context, `preceding::*` can touch most of the
                // document, and deadline polling granularity must
                // track that work, not just the input size.
                self.meter.charge(next.len() as u64)?;
                std::mem::swap(&mut cur, &mut next);
                if let Some(p) = &mut self.prof {
                    let obs = StepObservation {
                        route: classify_image_route(step.axis, test, input),
                        input,
                        output: cur.len(),
                        time: timer.expect("profiled step has a timer").elapsed(),
                        chunks,
                    };
                    p.record_step(path_id, si, step, obs);
                }
            } else {
                // Positional predicates need per-origin candidate lists in
                // axis order; predicate values are memoized on Relev.
                // Above the size threshold the context set fans out
                // across the pool — each worker handles a contiguous
                // origin range with its own memo table and fuel
                // sub-allowance, and per-origin results concatenate in
                // origin order, identical to this sequential loop.
                let fanout = self
                    .par
                    .as_ref()
                    .map_or(0, |ps| ps.config.chunks_for(&ps.pool, cur.len()));
                let (acc, chunks) = if fanout >= 2 {
                    (self.fan_out_predicates(step, test, &cur, fanout)?, fanout)
                } else {
                    let mut acc = Vec::new();
                    let mut cands = Vec::new();
                    let mut chunks = 0usize;
                    for x in cur.iter() {
                        // A large single-origin arena scan (`preceding`,
                        // `following`) can still chunk even when the
                        // context set is too small to fan out.
                        chunks += match &self.par {
                            Some(ps) => axis_nodes_into_par(
                                self.doc, step.axis, x, test, &mut cands, &ps.pool, ps.config,
                            ),
                            None => {
                                self.doc.axis_nodes_into(step.axis, x, test, &mut cands);
                                0
                            }
                        };
                        let mut kept = std::mem::take(&mut cands);
                        for &p in &step.predicates {
                            kept = self.filter_candidates(p, kept)?;
                        }
                        acc.extend_from_slice(&kept);
                        cands = kept;
                    }
                    (acc, chunks)
                };
                cur = NodeSet::from_unsorted_with_capacity(self.doc.len(), acc);
                if let Some(p) = &mut self.prof {
                    let obs = StepObservation {
                        route: classify_single_route(step.axis, test),
                        input,
                        output: cur.len(),
                        time: timer.expect("profiled step has a timer").elapsed(),
                        chunks,
                    };
                    p.record_step(path_id, si, step, obs);
                }
            }
        }
        Ok(Value::NodeSet(cur))
    }

    /// Fans a predicated step's context set out across the pool: each of
    /// the `k` chunks is a contiguous origin range evaluated by a fresh
    /// sub-[`Run`] (own memo table, own backward slots, a pool-stashed
    /// scratch, and a fuel sub-allowance from
    /// [`BudgetMeter::split`]).  Per-origin results concatenate in chunk =
    /// origin order, so the accumulated candidate list is exactly what
    /// the sequential loop builds; worker memo tables merge back
    /// (first-write-wins — values are deterministic, so order is moot)
    /// and unspent fuel is absorbed.
    ///
    /// On failure the earliest chunk's error is returned — deterministic,
    /// though a tight fuel cap may trip at a different point than
    /// sequential evaluation would (see DESIGN.md "Parallel evaluation").
    fn fan_out_predicates(
        &mut self,
        step: &Step,
        test: ResolvedTest,
        origins: &NodeSet,
        k: usize,
    ) -> Result<Vec<NodeId>, EvalError> {
        let ps = self
            .par
            .clone()
            .expect("fan-out requires parallel settings");
        fanout_counter().inc();
        let doc = self.doc;
        let query = self.query;
        let opt = self.opt;
        let exprs = query.query().len();
        let origins = origins.as_slice();
        let axis = step.axis;
        let predicates = &step.predicates;
        let meters: Vec<Mutex<Option<BudgetMeter>>> = self
            .meter
            .split(k)
            .into_iter()
            .map(|m| Mutex::new(Some(m)))
            .collect();
        let slots: Vec<Mutex<Option<ChunkOutcome>>> = (0..k).map(|_| Mutex::new(None)).collect();
        ps.pool.run(k, &|i| {
            let (s, e) = chunk_bounds(origins.len(), k, i);
            let mut meter = lock(&meters[i]).take().expect("meter prepared per chunk");
            let mut scratch = ps.pool.take_scratch();
            let mut sub = Run {
                doc,
                query,
                opt,
                memo: vec![HashMap::new(); exprs],
                backward: vec![None; exprs],
                scratch: &mut scratch,
                meter: &mut meter,
                prof: None,
                // Workers never open nested regions.
                par: None,
            };
            let mut acc = Vec::new();
            let mut cands = Vec::new();
            let mut err = None;
            'origins: for &x in &origins[s..e] {
                doc.axis_nodes_into(axis, x, test, &mut cands);
                let mut kept = std::mem::take(&mut cands);
                for &p in predicates {
                    match sub.filter_candidates(p, kept) {
                        Ok(v) => kept = v,
                        Err(failure) => {
                            err = Some(failure);
                            break 'origins;
                        }
                    }
                }
                acc.extend_from_slice(&kept);
                cands = kept;
            }
            let Run { memo, backward, .. } = sub;
            ps.pool.put_scratch(scratch);
            *lock(&meters[i]) = Some(meter);
            *lock(&slots[i]) = Some(ChunkOutcome {
                acc,
                memo,
                backward,
                err,
            });
        });
        for m in &meters {
            let child = lock(m).take().expect("every chunk returns its meter");
            self.meter.absorb(child);
        }
        let mut first_err: Option<EvalError> = None;
        let mut acc = Vec::new();
        for slot in slots {
            let out = lock(&slot).take().expect("every chunk completes");
            if let Some(e) = out.err {
                if first_err.is_none() {
                    first_err = Some(e);
                }
                continue;
            }
            if first_err.is_some() {
                continue;
            }
            acc.extend(out.acc);
            // Worker memo entries stay useful for later steps of this
            // evaluation; merge them back (values are deterministic).
            for (dst, src) in self.memo.iter_mut().zip(out.memo) {
                for (key, val) in src {
                    dst.entry(key).or_insert(val);
                }
            }
            for (dst, src) in self.backward.iter_mut().zip(out.backward) {
                if dst.is_none() {
                    *dst = src;
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(acc),
        }
    }

    fn filter_candidates(
        &mut self,
        pred: ExprId,
        cands: Vec<NodeId>,
    ) -> Result<Vec<NodeId>, EvalError> {
        let size = cands.len();
        self.meter.charge(size as u64 + 1)?;
        let mut kept = Vec::with_capacity(size);
        for (i, &y) in cands.iter().enumerate() {
            let inner = Context {
                node: y,
                position: i + 1,
                size,
            };
            if self.eval(pred, inner)?.boolean() {
                kept.push(y);
            }
        }
        Ok(kept)
    }

    // ---- OPTMINCONTEXT: backward propagation --------------------------

    /// If `id` is a predicate of one of the backward-propagatable shapes,
    /// answers it via the precomputed context-node set.
    fn try_backward(&mut self, id: ExprId, ctx_node: NodeId) -> Result<Option<bool>, EvalError> {
        if self.backward[id.index()].is_none() {
            let Some(set) = self.build_backward(id)? else {
                return Ok(None);
            };
            if let Some(p) = &mut self.prof {
                p.backward_pass();
            }
            self.backward[id.index()] = Some(set);
        }
        Ok(self.backward[id.index()]
            .as_ref()
            .map(|set| set.contains(ctx_node)))
    }

    /// Builds the backward set for `boolean(π)` / `π RelOp c` / `c RelOp π`
    /// shapes, or `None` when the shape does not apply.
    fn build_backward(&mut self, id: ExprId) -> Result<Option<NodeSet>, EvalError> {
        match self.query.query().node(id) {
            Node::Call(Func::Boolean, args) => {
                let Some((path_id, steps)) = self.simple_relative_path(args[0]) else {
                    return Ok(None);
                };
                // The witness scan visits every node once.
                self.meter.charge(self.doc.len() as u64)?;
                // Existence: every node is a witness.
                let all: NodeSet = self.doc.all_nodes().collect();
                self.propagate_backwards(path_id, steps, all).map(Some)
            }
            Node::Compare(op, a, b) => {
                // Normalize to path-on-the-left.
                let ((path_id, steps), scalar, op) =
                    if let Some(path) = self.simple_relative_path(*a) {
                        let Some(scalar) = self.constant_scalar(*b) else {
                            return Ok(None);
                        };
                        (path, scalar, *op)
                    } else {
                        let Some(path) = self.simple_relative_path(*b) else {
                            return Ok(None);
                        };
                        let Some(scalar) = self.constant_scalar(*a) else {
                            return Ok(None);
                        };
                        (path, scalar, op.swapped())
                    };
                self.meter.charge(self.doc.len() as u64)?;
                let witnesses: NodeSet = self
                    .doc
                    .all_nodes()
                    .filter(|&y| node_scalar_compare(self.doc, op, y, &scalar))
                    .collect();
                self.propagate_backwards(path_id, steps, witnesses)
                    .map(Some)
            }
            _ => Ok(None),
        }
    }

    /// `χ₁⁻¹(t₁ ∩ … χₖ⁻¹(tₖ ∩ T))`: one preimage sweep per step, right to
    /// left, filtering by each step's node test first.
    ///
    /// Attribute nodes in the target set are kept only where the forward
    /// axis can actually produce them: always for `self` and the or-self
    /// axes (an attribute is its own or-self image), only attributes for
    /// `attribute`, never for the rest.  The preimage kernels themselves
    /// are exact for attribute *origins* (see
    /// [`minctx_xml::axes::axis_preimage`]), so every axis propagates
    /// backward exactly.
    fn propagate_backwards(
        &mut self,
        path_id: ExprId,
        steps: &[Step],
        targets: NodeSet,
    ) -> Result<NodeSet, EvalError> {
        let mut set = targets;
        let mut pre = NodeSet::new();
        for (si, step) in steps.iter().enumerate().rev() {
            // Each preimage sweep is an `O(|D|)` pass.
            self.meter.charge(self.doc.len() as u64 + 1)?;
            let test = self.query.step_test(path_id, si);
            set.retain(|y| {
                let is_attr = self.doc.kind(y).is_attribute();
                let attr_ok = match step.axis {
                    Axis::SelfAxis
                    | Axis::Parent
                    | Axis::DescendantOrSelf
                    | Axis::AncestorOrSelf => true,
                    Axis::Attribute => is_attr,
                    _ => !is_attr,
                };
                attr_ok && test.matches(self.doc, step.axis, y)
            });
            match &self.par {
                Some(ps) => {
                    axis_preimage_into_par(
                        self.doc,
                        step.axis,
                        &set,
                        self.scratch,
                        &mut pre,
                        &ps.pool,
                        ps.config,
                    );
                }
                None => axis_preimage_into(self.doc, step.axis, &set, self.scratch, &mut pre),
            }
            std::mem::swap(&mut set, &mut pre);
        }
        Ok(set)
    }

    /// A relative, predicate-free location path — the shape the backward
    /// optimization handles.  Every axis now propagates backward exactly:
    /// the preimage kernels handle attribute nodes on both sides of the
    /// relation, where their mirror-axis predecessors diverged from `χ⁻¹`
    /// for attribute origins of `parent` / `ancestor(-or-self)` /
    /// `descendant-or-self` / `following` / `preceding` (those axes were
    /// therefore excluded here).
    fn simple_relative_path(&self, id: ExprId) -> Option<(ExprId, &'q [Step])> {
        match self.query.query().node(id) {
            Node::Path(PathStart::Context, steps)
                if steps.iter().all(|s| s.predicates.is_empty()) =>
            {
                Some((id, steps))
            }
            _ => None,
        }
    }

    /// A constant scalar operand (number or string literal).  Booleans are
    /// excluded: comparing a node-set against a boolean converts the *set*,
    /// which is not an existential per-node comparison.
    fn constant_scalar(&self, id: ExprId) -> Option<Value> {
        match self.query.query().node(id) {
            Node::Number(n) => Some(Value::Number(*n)),
            Node::Literal(s) => Some(Value::String(s.to_string())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;
    use minctx_xml::parse;

    fn eval_one(doc: &minctx_xml::Document, query: &str, optimized: bool) -> Value {
        let q = parse_xpath(query).unwrap();
        let cq = CompiledQuery::new(doc, &q);
        let mut scratch = Scratch::new();
        let mut meter = BudgetMeter::unlimited();
        MinContext {
            optimized,
            parallel: None,
        }
        .evaluate(doc, &cq, Context::document(doc), &mut scratch, &mut meter)
        .unwrap()
    }

    fn eval_both(xml: &str, query: &str) -> (Value, Value) {
        let doc = parse(xml).unwrap();
        (eval_one(&doc, query, false), eval_one(&doc, query, true))
    }

    #[test]
    fn backward_propagation_agrees_with_forward() {
        let xml = "<a><b><c>100</c></b><b><c>7</c></b><b/></a>";
        for q in [
            "/a/b[c = 100]",
            "/a/b[c]",
            "/a/b[not(c)]",
            "/a/b[descendant::c = 7]",
            "/a/b[c != 100]",
            "/a/b[100 = c]",
            "/a/b[c = 'x']",
            "//*[self::c = 7]",
        ] {
            let (plain, opt) = eval_both(xml, q);
            assert_eq!(plain, opt, "query {q}");
        }
    }

    #[test]
    fn backward_propagation_handles_attribute_nodes() {
        // node() matches attribute nodes, but tree axes never produce
        // them; and attribute *origins* of reverse / or-self axes are
        // invisible to mirror-axis preimages (those fall back to forward
        // evaluation).  Both directions once leaked here.
        let xml = r#"<r><a y="x"/><b>x</b></r>"#;
        for q in [
            "//*[node() = 'x']",
            "//*[node()]",
            "//@*[following::b = 'x']",
            "//@*[ancestor::r]",
            "//@*[self::node() = 'x']",
        ] {
            let (plain, opt) = eval_both(xml, q);
            assert_eq!(plain, opt, "query {q}");
        }
        // And pin the absolute answers so both being wrong can't pass.
        let doc = parse(xml).unwrap();
        let v = eval_one(&doc, "count(//*[node() = 'x'])", true);
        assert_eq!(v, Value::Number(2.0)); // <r> and <b>, not <a>
        let v = eval_one(&doc, "count(//@*[ancestor::r])", true);
        assert_eq!(v, Value::Number(1.0)); // the y attribute
    }

    #[test]
    fn backward_propagation_covers_reverse_and_or_self_axes() {
        // These axes were excluded from backward propagation while the
        // preimage kernels were attribute-inexact; they now take the
        // backward path and must agree with forward evaluation.
        let xml = r#"<r><a y="x"><b>x</b></a><c>zz<d q="7"/></c></r>"#;
        for q in [
            "//*[parent::a]",
            "//*[ancestor::a = 'x']",
            "//*[ancestor-or-self::c = 'zz']",
            "//*[descendant-or-self::b = 'x']",
            "//@*[descendant-or-self::node() = 'x']",
            "//*[preceding::b = 'x']",
            "//@*[preceding::b]",
            "//*[following::d]",
        ] {
            let (plain, opt) = eval_both(xml, q);
            assert_eq!(plain, opt, "query {q}");
        }
    }

    #[test]
    fn backward_propagation_through_id_axis() {
        let xml = r#"<a id="r"><b id="x">y</b><c id="y">100</c></a>"#;
        // b's id-step dereferences to c, whose value is 100.
        let (plain, opt) = eval_both(xml, "//*[id(string(.)) = 100]");
        assert_eq!(plain, opt);
        if let Value::NodeSet(ns) = &plain {
            assert_eq!(ns.len(), 1);
        } else {
            panic!("expected node-set");
        }
    }

    #[test]
    fn memo_shares_position_only_predicates_across_nodes() {
        // `position() = 2` has Relev = {position}: its memo entries are
        // keyed by k alone, shared across every context node and size.
        let doc = parse("<a><b><x/><x/><x/></b><c><x/><x/><x/></c></a>").unwrap();
        let q = parse_xpath("/a/*/x[position() = 2]").unwrap();
        let cq = CompiledQuery::new(&doc, &q);
        let mut scratch = Scratch::new();
        let mut meter = BudgetMeter::unlimited();
        let mut run = Run {
            doc: &doc,
            query: &cq,
            opt: false,
            memo: vec![HashMap::new(); q.len()],
            backward: vec![None; q.len()],
            scratch: &mut scratch,
            meter: &mut meter,
            prof: None,
            par: None,
        };
        let v = run.eval(q.root(), Context::document(&doc)).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 2);
        // Find the comparison predicate node and check its memo size: three
        // positions arise (k = 1, 2, 3), from six candidate evaluations.
        let pred_memo: Vec<usize> = q
            .iter()
            .filter(|(id, n)| matches!(n, Node::Compare(..)) && !q.relev(*id).node())
            .map(|(id, _)| run.memo[id.index()].len())
            .collect();
        assert_eq!(pred_memo, vec![3]);
    }
}

//! MINCONTEXT and OPTMINCONTEXT (Sections 3 and 4 of the paper).
//!
//! The algorithmic content of the paper, in two layers:
//!
//! **MINCONTEXT** (Section 3).  Location paths are evaluated *set at a
//! time* with deduplication (so step chains stay linear in `|D|` instead of
//! exploding like the naive context-at-a-time loop), and every expression
//! node `N` memoizes its value keyed on the *relevant context* `Relev(N)`
//! computed during lowering: a predicate such as `position() != last()`
//! (`Relev = {position, size}`) is evaluated once per distinct `(k, n)`
//! pair *across all context nodes*, a predicate path such as `child::b`
//! (`Relev = {node}`) once per distinct context node regardless of the
//! positional context, and an absolute path exactly once per document.
//! Since each node is evaluated at most once per distinct relevant context
//! and only contexts that actually arise are ever touched (the top-down
//! recursion is the paper's context-propagation), total work is polynomial
//! — `O(|D|·|Q|)` on Core XPath and the Extended Wadler fragment
//! (Theorems 7 and 10).
//!
//! **OPTMINCONTEXT** (Section 4, plus the backward-propagation rule of the
//! VLDB'02 predecessor's Section 6).  On top of MINCONTEXT, predicates of
//! the shapes
//!
//! ```text
//! boolean(π)        π RelOp c        c RelOp π
//! ```
//!
//! where `π` is a predicate-free relative path and `c` a constant scalar,
//! are answered from a single *backward pass*: the node-level comparison
//! set `T = {y | strval(y) op c}` is propagated through the inverse axes
//! `χ⁻¹` (one `O(|D|)` [`axis_preimage`] sweep per step, including the
//! id-"axis" of Section 4), yielding the set of context nodes for which
//! the predicate holds.  Every subsequent predicate check is then an
//! `O(log |D|)` membership test instead of a fresh `O(|D|)` forward walk.

use crate::engine::{Context, Evaluator, Strategy};
use crate::error::EvalError;
use crate::funcs;
use crate::naive::arith;
use crate::value::{compare, node_scalar_compare, Value};
use minctx_syntax::{ExprId, Func, Node, PathStart, Query, Relev, Step};
use minctx_xml::axes::{axis_image, axis_preimage, Axis};
use minctx_xml::{Document, NodeId, NodeSet};
use std::collections::HashMap;

/// The MINCONTEXT evaluator; with `optimized` set, OPTMINCONTEXT.
#[derive(Debug, Clone, Default)]
pub struct MinContext {
    /// Enables the Section-4 backward-propagation optimizations.
    pub optimized: bool,
}

impl Evaluator for MinContext {
    fn strategy(&self) -> Strategy {
        if self.optimized {
            Strategy::OptMinContext
        } else {
            Strategy::MinContext
        }
    }

    fn evaluate(&self, doc: &Document, query: &Query, ctx: Context) -> Result<Value, EvalError> {
        // Memo keys pack node id / position / size into 21-bit fields; a
        // larger document would silently alias distinct contexts, so
        // refuse it outright (in every build profile).
        if doc.len() >= MAX_NODES {
            return Err(EvalError::DocumentTooLarge {
                nodes: doc.len(),
                limit: MAX_NODES,
            });
        }
        let mut run = Run {
            doc,
            query,
            opt: self.optimized,
            memo: vec![HashMap::new(); query.len()],
            backward: vec![None; query.len()],
        };
        run.eval(query.root(), ctx)
    }
}

struct Run<'d, 'q> {
    doc: &'d Document,
    query: &'q Query,
    opt: bool,
    /// Per expression node: relevant-context key → value.
    memo: Vec<HashMap<u64, Value>>,
    /// OPTMINCONTEXT: per predicate node, the set of context nodes for
    /// which the predicate holds (computed by one backward pass).
    backward: Vec<Option<NodeSet>>,
}

/// Hard capacity of the packed memo keys: 21 bits per context component.
/// [`MinContext::evaluate`] rejects larger documents up front.
const MAX_NODES: usize = 1 << 21;

/// Packs the *relevant* components of a context into a memo key; the
/// irrelevant components are zeroed so contexts that agree on `Relev(N)`
/// share an entry.  Positions and sizes are bounded by the document's
/// node count, so the [`MAX_NODES`] guard covers all three fields.
fn memo_key(relev: Relev, ctx: Context) -> u64 {
    debug_assert!(ctx.node.index() < MAX_NODES && ctx.position < MAX_NODES && ctx.size < MAX_NODES);
    let mut key = 0u64;
    if relev.node() {
        key |= ctx.node.index() as u64;
    }
    if relev.position() {
        key |= (ctx.position as u64) << 21;
    }
    if relev.size() {
        key |= (ctx.size as u64) << 42;
    }
    key
}

impl Run<'_, '_> {
    fn eval(&mut self, id: ExprId, ctx: Context) -> Result<Value, EvalError> {
        let key = memo_key(self.query.relev(id), ctx);
        if let Some(v) = self.memo[id.index()].get(&key) {
            return Ok(v.clone());
        }
        let v = self.compute(id, ctx)?;
        self.memo[id.index()].insert(key, v.clone());
        Ok(v)
    }

    fn compute(&mut self, id: ExprId, ctx: Context) -> Result<Value, EvalError> {
        if self.opt {
            if let Some(holds) = self.try_backward(id, ctx.node)? {
                return Ok(Value::Boolean(holds));
            }
        }
        Ok(match self.query.node(id) {
            Node::Or(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() || self.eval(*b, ctx)?.boolean())
            }
            Node::And(a, b) => {
                Value::Boolean(self.eval(*a, ctx)?.boolean() && self.eval(*b, ctx)?.boolean())
            }
            Node::Compare(op, a, b) => {
                let va = self.eval(*a, ctx)?;
                let vb = self.eval(*b, ctx)?;
                Value::Boolean(compare(self.doc, *op, &va, &vb))
            }
            Node::Arith(op, a, b) => {
                let x = self.eval(*a, ctx)?.number(self.doc);
                let y = self.eval(*b, ctx)?.number(self.doc);
                Value::Number(arith(*op, x, y))
            }
            Node::Neg(a) => Value::Number(-self.eval(*a, ctx)?.number(self.doc)),
            Node::Union(a, b) => {
                let x = self.eval(*a, ctx)?.into_node_set()?;
                let y = self.eval(*b, ctx)?.into_node_set()?;
                Value::NodeSet(x.union(&y))
            }
            Node::Path(start, steps) => self.eval_path(start, steps, ctx)?,
            Node::Call(Func::Position, _) => Value::Number(ctx.position as f64),
            Node::Call(Func::Last, _) => Value::Number(ctx.size as f64),
            Node::Call(func, args) => {
                let vals = args
                    .iter()
                    .map(|&a| self.eval(a, ctx))
                    .collect::<Result<Vec<_>, _>>()?;
                funcs::apply(self.doc, *func, &vals, ctx.node)?
            }
            Node::Number(n) => Value::Number(*n),
            Node::Literal(s) => Value::String(s.to_string()),
        })
    }

    /// Set-at-a-time path evaluation with deduplication after every step.
    fn eval_path(
        &mut self,
        start: &PathStart,
        steps: &[Step],
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let mut cur: NodeSet = match start {
            PathStart::Root => NodeSet::singleton(self.doc.root()),
            PathStart::Context => NodeSet::singleton(ctx.node),
            PathStart::Filter {
                primary,
                predicates,
            } => {
                let primary = self.eval(*primary, ctx)?.into_node_set()?;
                let mut list: Vec<NodeId> = primary.into_vec();
                for &p in predicates {
                    list = self.filter_candidates(p, list)?;
                }
                // Filtering a document-ordered list keeps it sorted.
                NodeSet::from_sorted_vec(list)
            }
        };
        for step in steps {
            if cur.is_empty() {
                break;
            }
            if step.predicates.is_empty() {
                // Predicate-free step: one O(|D|) axis sweep for the whole
                // context set.
                cur = axis_image(self.doc, step.axis, &cur, &step.test);
            } else {
                // Positional predicates need per-origin candidate lists in
                // axis order; predicate values are memoized on Relev.
                let mut acc = Vec::new();
                for x in cur.iter() {
                    let mut cands = self.doc.axis_nodes(step.axis, x, &step.test);
                    for &p in &step.predicates {
                        cands = self.filter_candidates(p, cands)?;
                    }
                    acc.extend_from_slice(&cands);
                }
                cur = NodeSet::from_unsorted(acc);
            }
        }
        Ok(Value::NodeSet(cur))
    }

    fn filter_candidates(
        &mut self,
        pred: ExprId,
        cands: Vec<NodeId>,
    ) -> Result<Vec<NodeId>, EvalError> {
        let size = cands.len();
        let mut kept = Vec::with_capacity(size);
        for (i, &y) in cands.iter().enumerate() {
            let inner = Context {
                node: y,
                position: i + 1,
                size,
            };
            if self.eval(pred, inner)?.boolean() {
                kept.push(y);
            }
        }
        Ok(kept)
    }

    // ---- OPTMINCONTEXT: backward propagation --------------------------

    /// If `id` is a predicate of one of the backward-propagatable shapes,
    /// answers it via the precomputed context-node set.
    fn try_backward(&mut self, id: ExprId, ctx_node: NodeId) -> Result<Option<bool>, EvalError> {
        if self.backward[id.index()].is_none() {
            let Some(set) = self.build_backward(id) else {
                return Ok(None);
            };
            self.backward[id.index()] = Some(set);
        }
        Ok(self.backward[id.index()]
            .as_ref()
            .map(|set| set.contains(ctx_node)))
    }

    /// Builds the backward set for `boolean(π)` / `π RelOp c` / `c RelOp π`
    /// shapes, or `None` when the shape does not apply.
    fn build_backward(&self, id: ExprId) -> Option<NodeSet> {
        match self.query.node(id) {
            Node::Call(Func::Boolean, args) => {
                let steps = self.simple_relative_path(args[0])?;
                // Existence: every node is a witness.
                let all: NodeSet = self.doc.all_nodes().collect();
                Some(self.propagate_backwards(steps, all))
            }
            Node::Compare(op, a, b) => {
                // Normalize to path-on-the-left.
                let (steps, scalar, op) = if let Some(steps) = self.simple_relative_path(*a) {
                    (steps, self.constant_scalar(*b)?, *op)
                } else {
                    let steps = self.simple_relative_path(*b)?;
                    (steps, self.constant_scalar(*a)?, op.swapped())
                };
                let witnesses: NodeSet = self
                    .doc
                    .all_nodes()
                    .filter(|&y| node_scalar_compare(self.doc, op, y, &scalar))
                    .collect();
                Some(self.propagate_backwards(steps, witnesses))
            }
            _ => None,
        }
    }

    /// `χ₁⁻¹(t₁ ∩ … χₖ⁻¹(tₖ ∩ T))`: one preimage sweep per step, right to
    /// left, filtering by each step's node test first.
    ///
    /// Attribute nodes need care at both ends of each sweep: tree axes
    /// never *produce* attributes (so they are dropped from the target
    /// set, or `node()` tests would leak them through the mirror axis),
    /// while the attribute axis produces nothing else.  `self` keeps
    /// every node: an attribute is its own `self::node()`.
    fn propagate_backwards(&self, steps: &[Step], targets: NodeSet) -> NodeSet {
        let mut set = targets;
        for step in steps.iter().rev() {
            let test = step.test.resolve(self.doc);
            let mut filtered = set;
            filtered.retain(|y| {
                let attr_ok = match step.axis {
                    Axis::SelfAxis => true,
                    Axis::Attribute => self.doc.kind(y).is_attribute(),
                    _ => !self.doc.kind(y).is_attribute(),
                };
                attr_ok && test.matches(self.doc, step.axis, y)
            });
            set = axis_preimage(self.doc, step.axis, &filtered);
        }
        set
    }

    /// A relative, predicate-free location path over axes whose backward
    /// propagation is *exact* — the shape the optimization handles.
    ///
    /// Axes whose forward image from an attribute context node is
    /// non-empty (`parent`, `ancestor(-or-self)`, `descendant-or-self`,
    /// `following`, `preceding`) are excluded: their mirror-axis preimages
    /// never report attribute origins, so propagating backwards would
    /// silently drop attribute context nodes.
    fn simple_relative_path(&self, id: ExprId) -> Option<&[Step]> {
        fn backward_exact(axis: Axis) -> bool {
            matches!(
                axis,
                Axis::SelfAxis
                    | Axis::Child
                    | Axis::Descendant
                    | Axis::FollowingSibling
                    | Axis::PrecedingSibling
                    | Axis::Attribute
                    | Axis::Id
            )
        }
        match self.query.node(id) {
            Node::Path(PathStart::Context, steps)
                if steps
                    .iter()
                    .all(|s| s.predicates.is_empty() && backward_exact(s.axis)) =>
            {
                Some(steps)
            }
            _ => None,
        }
    }

    /// A constant scalar operand (number or string literal).  Booleans are
    /// excluded: comparing a node-set against a boolean converts the *set*,
    /// which is not an existential per-node comparison.
    fn constant_scalar(&self, id: ExprId) -> Option<Value> {
        match self.query.node(id) {
            Node::Number(n) => Some(Value::Number(*n)),
            Node::Literal(s) => Some(Value::String(s.to_string())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;
    use minctx_xml::parse;

    fn eval_both(xml: &str, query: &str) -> (Value, Value) {
        let doc = parse(xml).unwrap();
        let q = parse_xpath(query).unwrap();
        let ctx = Context::document(&doc);
        let plain = MinContext { optimized: false }
            .evaluate(&doc, &q, ctx)
            .unwrap();
        let opt = MinContext { optimized: true }
            .evaluate(&doc, &q, ctx)
            .unwrap();
        (plain, opt)
    }

    #[test]
    fn backward_propagation_agrees_with_forward() {
        let xml = "<a><b><c>100</c></b><b><c>7</c></b><b/></a>";
        for q in [
            "/a/b[c = 100]",
            "/a/b[c]",
            "/a/b[not(c)]",
            "/a/b[descendant::c = 7]",
            "/a/b[c != 100]",
            "/a/b[100 = c]",
            "/a/b[c = 'x']",
            "//*[self::c = 7]",
        ] {
            let (plain, opt) = eval_both(xml, q);
            assert_eq!(plain, opt, "query {q}");
        }
    }

    #[test]
    fn backward_propagation_handles_attribute_nodes() {
        // node() matches attribute nodes, but tree axes never produce
        // them; and attribute *origins* of reverse / or-self axes are
        // invisible to mirror-axis preimages (those fall back to forward
        // evaluation).  Both directions once leaked here.
        let xml = r#"<r><a y="x"/><b>x</b></r>"#;
        for q in [
            "//*[node() = 'x']",
            "//*[node()]",
            "//@*[following::b = 'x']",
            "//@*[ancestor::r]",
            "//@*[self::node() = 'x']",
        ] {
            let (plain, opt) = eval_both(xml, q);
            assert_eq!(plain, opt, "query {q}");
        }
        // And pin the absolute answers so both being wrong can't pass.
        let doc = parse(xml).unwrap();
        let q = parse_xpath("count(//*[node() = 'x'])").unwrap();
        let v = MinContext { optimized: true }
            .evaluate(&doc, &q, Context::document(&doc))
            .unwrap();
        assert_eq!(v, Value::Number(2.0)); // <r> and <b>, not <a>
        let q = parse_xpath("count(//@*[ancestor::r])").unwrap();
        let v = MinContext { optimized: true }
            .evaluate(&doc, &q, Context::document(&doc))
            .unwrap();
        assert_eq!(v, Value::Number(1.0)); // the y attribute
    }

    #[test]
    fn backward_propagation_through_id_axis() {
        let xml = r#"<a id="r"><b id="x">y</b><c id="y">100</c></a>"#;
        // b's id-step dereferences to c, whose value is 100.
        let (plain, opt) = eval_both(xml, "//*[id(string(.)) = 100]");
        assert_eq!(plain, opt);
        if let Value::NodeSet(ns) = &plain {
            assert_eq!(ns.len(), 1);
        } else {
            panic!("expected node-set");
        }
    }

    #[test]
    fn memo_shares_position_only_predicates_across_nodes() {
        // `position() = 2` has Relev = {position}: its memo entries are
        // keyed by k alone, shared across every context node and size.
        let doc = parse("<a><b><x/><x/><x/></b><c><x/><x/><x/></c></a>").unwrap();
        let q = parse_xpath("/a/*/x[position() = 2]").unwrap();
        let mut run = Run {
            doc: &doc,
            query: &q,
            opt: false,
            memo: vec![HashMap::new(); q.len()],
            backward: vec![None; q.len()],
        };
        let v = run.eval(q.root(), Context::document(&doc)).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 2);
        // Find the comparison predicate node and check its memo size: three
        // positions arise (k = 1, 2, 3), from six candidate evaluations.
        let pred_memo: Vec<usize> = q
            .iter()
            .filter(|(id, n)| matches!(n, Node::Compare(..)) && !q.relev(*id).node())
            .map(|(id, _)| run.memo[id.index()].len())
            .collect();
        assert_eq!(pred_memo, vec![3]);
    }
}

//! The XPath 1.0 core function library (§4 of the spec), shared by every
//! evaluation strategy.
//!
//! `position()` and `last()` are *not* here: they read the evaluation
//! context directly and each evaluator supplies them from its own context
//! representation.  Everything else is a pure function of the document,
//! the (already evaluated) argument values, and — for `lang()` only — the
//! context node.

use crate::error::EvalError;
use crate::value::{string_to_number, Value};
use minctx_syntax::Func;
use minctx_xml::{Document, NodeId, NodeSet};

/// Applies a core-library function to evaluated arguments.
///
/// The normalizer guarantees argument types, so type mismatches surface as
/// [`EvalError::Type`] only for hand-constructed queries.
pub fn apply(
    doc: &Document,
    func: Func,
    args: &[Value],
    ctx_node: NodeId,
) -> Result<Value, EvalError> {
    Ok(match func {
        Func::Position | Func::Last => {
            unreachable!("position()/last() are evaluated from the context")
        }
        Func::Count => Value::Number(node_set(&args[0])?.len() as f64),
        Func::Sum => {
            // One string buffer for the whole set instead of an allocation
            // per node (sum() over large sets is a hot serving shape).
            let mut buf = String::new();
            let mut total = 0.0;
            for n in node_set(&args[0])?.iter() {
                buf.clear();
                doc.string_value_into(n, &mut buf);
                total += string_to_number(&buf);
            }
            Value::Number(total)
        }
        Func::Id => {
            // After normalization the argument is always a string; `id()`
            // over node-sets became the id-"axis" (Section 4 of the paper).
            Value::NodeSet(doc.deref_ids(&args[0].string(doc)))
        }
        Func::LocalName | Func::Name => {
            let name = node_set(&args[0])?
                .first()
                .and_then(|n| doc.label_str(n))
                .unwrap_or_default();
            Value::String(name.to_string())
        }
        // No namespace support in the document model: always "".
        Func::NamespaceUri => {
            node_set(&args[0])?;
            Value::String(String::new())
        }
        Func::String => Value::String(args[0].string(doc)),
        Func::Concat => {
            let mut out = String::new();
            for a in args {
                out.push_str(&a.string(doc));
            }
            Value::String(out)
        }
        Func::StartsWith => Value::Boolean(args[0].string(doc).starts_with(&args[1].string(doc))),
        Func::Contains => Value::Boolean(args[0].string(doc).contains(&args[1].string(doc))),
        Func::SubstringBefore => {
            let s = args[0].string(doc);
            let pat = args[1].string(doc);
            Value::String(
                s.split_once(&pat)
                    .map(|(b, _)| b.to_string())
                    .unwrap_or_default(),
            )
        }
        Func::SubstringAfter => {
            let s = args[0].string(doc);
            let pat = args[1].string(doc);
            Value::String(
                s.split_once(&pat)
                    .map(|(_, a)| a.to_string())
                    .unwrap_or_default(),
            )
        }
        Func::Substring => {
            let s = args[0].string(doc);
            let start = xpath_round(args[1].number(doc));
            let end = args.get(2).map(|l| start + xpath_round(l.number(doc)));
            // §4.2: character at 1-based position p is kept iff
            // p >= round(start) and (no length or p < round(start+length));
            // NaN makes both comparisons false.
            let kept: String = s
                .chars()
                .enumerate()
                .filter(|(i, _)| {
                    let p = (i + 1) as f64;
                    p >= start && end.is_none_or(|e| p < e)
                })
                .map(|(_, c)| c)
                .collect();
            Value::String(kept)
        }
        Func::StringLength => Value::Number(args[0].string(doc).chars().count() as f64),
        Func::NormalizeSpace => {
            let s = args[0].string(doc);
            Value::String(
                s.split([' ', '\t', '\r', '\n'])
                    .filter(|t| !t.is_empty())
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        }
        Func::Translate => {
            let s = args[0].string(doc);
            let from: Vec<char> = args[1].string(doc).chars().collect();
            let to: Vec<char> = args[2].string(doc).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(), // None (deleted) if `to` is shorter
                    None => Some(c),
                })
                .collect();
            Value::String(out)
        }
        Func::Boolean => Value::Boolean(args[0].boolean()),
        Func::Not => Value::Boolean(!args[0].boolean()),
        Func::True => Value::Boolean(true),
        Func::False => Value::Boolean(false),
        Func::Lang => Value::Boolean(lang_matches(doc, ctx_node, &args[0].string(doc))),
        Func::Number => Value::Number(args[0].number(doc)),
        Func::Floor => Value::Number(args[0].number(doc).floor()),
        Func::Ceiling => Value::Number(args[0].number(doc).ceil()),
        Func::Round => Value::Number(xpath_round(args[0].number(doc))),
    })
}

/// XPath `round()`: round half *up* (toward +∞); NaN and infinities pass
/// through, and arguments in `[-0.5, -0]` return **negative** zero (§4.4)
/// — so `1 div round(-0.2)` is `-Infinity`, not `+Infinity`.
pub fn xpath_round(n: f64) -> f64 {
    if n.is_nan() || n.is_infinite() {
        n
    } else {
        let r = (n + 0.5).floor();
        if r == 0.0 && n.is_sign_negative() {
            -0.0
        } else {
            r
        }
    }
}

/// `lang(s)` (§4.3): the `xml:lang` attribute of the nearest ancestor-or-
/// self element equals `s` or is a sublanguage of it, case-insensitively.
fn lang_matches(doc: &Document, ctx_node: NodeId, wanted: &str) -> bool {
    let wanted = wanted.to_ascii_lowercase();
    let mut cur = Some(ctx_node);
    while let Some(n) = cur {
        if doc.kind(n).is_element() {
            if let Some(lang) = doc.attribute_value(n, "xml:lang") {
                let lang = lang.to_ascii_lowercase();
                return lang == wanted
                    || (lang.starts_with(&wanted)
                        && lang.as_bytes().get(wanted.len()) == Some(&b'-'));
            }
        }
        cur = doc.parent(n);
    }
    false
}

fn node_set(v: &Value) -> Result<&NodeSet, EvalError> {
    v.as_node_set().ok_or(EvalError::Type {
        expected: "node-set",
        got: v.value_type().as_str(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_xml::parse;

    fn doc() -> Document {
        parse(r#"<a xml:lang="en-US"><b>7</b><b>3</b></a>"#).unwrap()
    }

    fn call(f: Func, args: &[Value]) -> Value {
        let d = doc();
        apply(&d, f, args, d.root()).unwrap()
    }

    #[test]
    fn string_functions() {
        let s = |v: &str| Value::String(v.to_string());
        assert_eq!(call(Func::Concat, &[s("a"), s("b"), s("c")]), s("abc"));
        assert_eq!(
            call(Func::StartsWith, &[s("abc"), s("ab")]),
            Value::Boolean(true)
        );
        assert_eq!(
            call(Func::Contains, &[s("abc"), s("zz")]),
            Value::Boolean(false)
        );
        assert_eq!(
            call(Func::SubstringBefore, &[s("1999/04"), s("/")]),
            s("1999")
        );
        assert_eq!(call(Func::SubstringAfter, &[s("1999/04"), s("/")]), s("04"));
        assert_eq!(call(Func::SubstringBefore, &[s("abc"), s("z")]), s(""));
        assert_eq!(call(Func::StringLength, &[s("héllo")]), Value::Number(5.0));
        assert_eq!(
            call(Func::NormalizeSpace, &[s("  a \t b\n c ")]),
            s("a b c")
        );
        assert_eq!(
            call(Func::Translate, &[s("--aaa--"), s("abc-"), s("ABC")]),
            s("AAA")
        );
    }

    #[test]
    fn substring_spec_examples() {
        let s = |v: &str| Value::String(v.to_string());
        let n = Value::Number;
        // The famous §4.2 edge cases.
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(2.0), n(3.0)]),
            s("234")
        );
        assert_eq!(call(Func::Substring, &[s("12345"), n(2.0)]), s("2345"));
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(1.5), n(2.6)]),
            s("234")
        );
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(0.0), n(3.0)]),
            s("12")
        );
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(f64::NAN), n(3.0)]),
            s("")
        );
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(1.0), n(f64::NAN)]),
            s("")
        );
        assert_eq!(
            call(Func::Substring, &[s("12345"), n(-42.0), n(f64::INFINITY)]),
            s("12345")
        );
        assert_eq!(
            call(
                Func::Substring,
                &[s("12345"), n(f64::NEG_INFINITY), n(f64::INFINITY)]
            ),
            s("")
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(call(Func::Floor, &[Value::Number(2.6)]), Value::Number(2.0));
        assert_eq!(
            call(Func::Ceiling, &[Value::Number(2.2)]),
            Value::Number(3.0)
        );
        assert_eq!(call(Func::Round, &[Value::Number(2.5)]), Value::Number(3.0));
        assert_eq!(
            call(Func::Round, &[Value::Number(-2.5)]),
            Value::Number(-2.0)
        );
        assert!(xpath_round(f64::NAN).is_nan());
    }

    #[test]
    fn round_returns_negative_zero_on_negative_half_open_interval() {
        // §4.4: for n in [-0.5, -0], round(n) is *negative* zero.  The sign
        // is invisible to `==` but decides `1 div round(n)`.
        for n in [-0.5, -0.2, -0.0, -f64::MIN_POSITIVE] {
            let r = xpath_round(n);
            assert_eq!(r, 0.0, "round({n})");
            assert!(r.is_sign_negative(), "round({n}) lost the sign");
            assert_eq!(1.0 / r, f64::NEG_INFINITY, "1 div round({n})");
        }
        // Positive zero stays positive; half rounds toward +∞.
        assert!(!xpath_round(0.0).is_sign_negative());
        assert!(!xpath_round(0.4).is_sign_negative());
        assert_eq!(xpath_round(-0.5), 0.0);
        assert_eq!(xpath_round(-0.6), -1.0);
        assert_eq!(xpath_round(0.5), 1.0);
    }

    #[test]
    fn node_set_functions() {
        let d = doc();
        let a = d.document_element();
        let bs: NodeSet = d.children(a).collect();
        let v = apply(&d, Func::Count, &[Value::NodeSet(bs.clone())], d.root()).unwrap();
        assert_eq!(v, Value::Number(2.0));
        let v = apply(&d, Func::Sum, &[Value::NodeSet(bs.clone())], d.root()).unwrap();
        assert_eq!(v, Value::Number(10.0));
        let v = apply(&d, Func::Name, &[Value::NodeSet(bs)], d.root()).unwrap();
        assert_eq!(v, Value::String("b".to_string()));
        let v = apply(&d, Func::Name, &[Value::NodeSet(NodeSet::new())], d.root()).unwrap();
        assert_eq!(v, Value::String(String::new()));
        // Type defense.
        assert!(apply(&d, Func::Count, &[Value::Number(1.0)], d.root()).is_err());
    }

    #[test]
    fn lang_checks_ancestors() {
        let d = doc();
        let a = d.document_element();
        let b = d.first_child(a).unwrap();
        let s = |v: &str| Value::String(v.to_string());
        assert_eq!(
            apply(&d, Func::Lang, &[s("en")], b).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            apply(&d, Func::Lang, &[s("en-us")], b).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            apply(&d, Func::Lang, &[s("de")], b).unwrap(),
            Value::Boolean(false)
        );
    }
}

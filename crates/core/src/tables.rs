//! The bottom-up context-value-table evaluator — the VLDB 2002 predecessor
//! algorithm the paper improves on.
//!
//! One table per parse-tree node, filled in a single bottom-up sweep over
//! the arena (children have smaller [`ExprId`]s, so a forward loop is a
//! bottom-up traversal).  A table covers **every** potentially arising
//! context, before any are known to be needed:
//!
//! * for every context node `x ∈ dom`, and
//! * for position/size-dependent expressions, every pair `(k, n)` with
//!   `1 ≤ k ≤ n ≤ |dom|`.
//!
//! That unconditional materialization is precisely the inefficiency the
//! ICDE 2003 paper attacks: the tables cost `Θ(|D|³)` space per positional
//! predicate and are filled for contexts that can never occur, whereas
//! MINCONTEXT touches only the contexts the query actually propagates
//! top-down (and OPTMINCONTEXT avoids even those where a backward pass
//! suffices).  Keeping this evaluator around gives the benchmark suite the
//! paper's own baseline and the test suite a structurally independent
//! oracle: it shares no evaluation order with the recursive strategies.

use crate::budget::BudgetMeter;
use crate::compile::CompiledQuery;
use crate::engine::{Context, Evaluator, Strategy};
use crate::error::EvalError;
use crate::funcs;
use crate::naive::arith;
use crate::value::{compare, Value};
use minctx_syntax::{ExprId, Func, Node, PathStart, Relev, Step};
use minctx_xml::axes::axis_image_resolved;
use minctx_xml::{Document, NodeId, NodeSet, Scratch};

/// The bottom-up context-value-table evaluator.
#[derive(Debug, Clone, Default)]
pub struct ContextValueTables;

impl Evaluator for ContextValueTables {
    fn strategy(&self) -> Strategy {
        Strategy::ContextValueTable
    }

    fn evaluate(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        ctx: Context,
        scratch: &mut Scratch,
        meter: &mut BudgetMeter,
    ) -> Result<Value, EvalError> {
        let q = query.query();
        let mut tables: Vec<Table> = Vec::with_capacity(q.len());
        for (id, _) in q.iter() {
            let t = build_table(doc, query, &tables, id, scratch, meter)?;
            tables.push(t);
        }
        Ok(tables[q.root().index()].get(ctx).clone())
    }
}

/// A context-value table: the node's value for every context in its
/// (relevance-shaped) domain.
struct Table {
    relev: Relev,
    /// Entries per context node (1 when position and size are irrelevant).
    per_node: usize,
    vals: Vec<Value>,
}

impl Table {
    fn get(&self, ctx: Context) -> &Value {
        &self.vals[self.index(ctx)]
    }

    fn index(&self, ctx: Context) -> usize {
        let node_part = if self.relev.node() {
            ctx.node.index() * self.per_node
        } else {
            0
        };
        node_part + self.pos_part(ctx.position, ctx.size)
    }

    fn pos_part(&self, k: usize, n: usize) -> usize {
        match (self.relev.position(), self.relev.size()) {
            // Triangular layout over 1 ≤ k ≤ n ≤ max_n.
            (true, true) => n * (n - 1) / 2 + (k - 1),
            (true, false) => k - 1,
            (false, true) => n - 1,
            (false, false) => 0,
        }
    }
}

/// The number of `(k, n)` slots a relevance shape needs.
fn per_node_slots(relev: Relev, max_n: usize) -> usize {
    match (relev.position(), relev.size()) {
        (true, true) => max_n * (max_n + 1) / 2,
        (true, false) | (false, true) => max_n,
        (false, false) => 1,
    }
}

/// Enumerates every context in a table's domain, in exactly the order
/// [`Table::index`] lays entries out.
fn for_each_context(
    relev: Relev,
    max_n: usize,
    node_count: usize,
    mut f: impl FnMut(Context) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let nodes = if relev.node() { node_count } else { 1 };
    for x in 0..nodes {
        let node = NodeId::from_index(x);
        match (relev.position(), relev.size()) {
            (true, true) => {
                for n in 1..=max_n {
                    for k in 1..=n {
                        f(Context {
                            node,
                            position: k,
                            size: n,
                        })?;
                    }
                }
            }
            (true, false) => {
                for k in 1..=max_n {
                    f(Context {
                        node,
                        position: k,
                        size: 1,
                    })?;
                }
            }
            (false, true) => {
                for n in 1..=max_n {
                    f(Context {
                        node,
                        position: 1,
                        size: n,
                    })?;
                }
            }
            (false, false) => f(Context {
                node,
                position: 1,
                size: 1,
            })?,
        }
    }
    Ok(())
}

fn build_table(
    doc: &Document,
    query: &CompiledQuery,
    tables: &[Table],
    id: ExprId,
    scratch: &mut Scratch,
    meter: &mut BudgetMeter,
) -> Result<Table, EvalError> {
    let relev = query.query().relev(id);
    let max_n = doc.len();
    let per_node = per_node_slots(relev, max_n);
    let total = if relev.node() {
        doc.len() * per_node
    } else {
        per_node
    };
    let mut vals = Vec::with_capacity(total);
    for_each_context(relev, max_n, doc.len(), |ctx| {
        // One unit per table cell: the cell count *is* this algorithm's
        // cost model (and its Θ(|D|³)-per-positional-predicate blow-up).
        // Path cells charge their axis sweeps on top (a predicate-free
        // absolute path is a single cell doing `O(|D|)` work).
        meter.charge(1)?;
        vals.push(value_at(doc, query, tables, id, ctx, scratch, meter)?);
        Ok(())
    })?;
    debug_assert_eq!(vals.len(), total);
    Ok(Table {
        relev,
        per_node,
        vals,
    })
}

/// The value of node `id` at one context, all children read from their
/// (already complete) tables.
fn value_at(
    doc: &Document,
    query: &CompiledQuery,
    tables: &[Table],
    id: ExprId,
    ctx: Context,
    scratch: &mut Scratch,
    meter: &mut BudgetMeter,
) -> Result<Value, EvalError> {
    let lookup = |child: ExprId| tables[child.index()].get(ctx);
    Ok(match query.query().node(id) {
        Node::Or(a, b) => Value::Boolean(lookup(*a).boolean() || lookup(*b).boolean()),
        Node::And(a, b) => Value::Boolean(lookup(*a).boolean() && lookup(*b).boolean()),
        Node::Compare(op, a, b) => Value::Boolean(compare(doc, *op, lookup(*a), lookup(*b))),
        Node::Arith(op, a, b) => {
            Value::Number(arith(*op, lookup(*a).number(doc), lookup(*b).number(doc)))
        }
        Node::Neg(a) => Value::Number(-lookup(*a).number(doc)),
        Node::Union(a, b) => {
            let x = lookup(*a).as_node_set().ok_or(type_err(lookup(*a)))?;
            let y = lookup(*b).as_node_set().ok_or(type_err(lookup(*b)))?;
            Value::NodeSet(x.union(y))
        }
        Node::Path(start, steps) => {
            path_value(doc, query, id, tables, start, steps, ctx, scratch, meter)?
        }
        Node::Call(Func::Position, _) => Value::Number(ctx.position as f64),
        Node::Call(Func::Last, _) => Value::Number(ctx.size as f64),
        Node::Call(func, args) => {
            let vals: Vec<Value> = args.iter().map(|&a| lookup(a).clone()).collect();
            funcs::apply(doc, *func, &vals, ctx.node)?
        }
        Node::Number(n) => Value::Number(*n),
        Node::Literal(s) => Value::String(s.to_string()),
    })
}

fn type_err(v: &Value) -> EvalError {
    EvalError::Type {
        expected: "node-set",
        got: v.value_type().as_str(),
    }
}

#[allow(clippy::too_many_arguments)]
fn path_value(
    doc: &Document,
    query: &CompiledQuery,
    path_id: ExprId,
    tables: &[Table],
    start: &PathStart,
    steps: &[Step],
    ctx: Context,
    scratch: &mut Scratch,
    meter: &mut BudgetMeter,
) -> Result<Value, EvalError> {
    let mut cur: NodeSet = match start {
        PathStart::Root => NodeSet::singleton(doc.root()),
        PathStart::Context => NodeSet::singleton(ctx.node),
        PathStart::Filter {
            primary,
            predicates,
        } => {
            let primary = tables[primary.index()]
                .get(ctx)
                .as_node_set()
                .ok_or(type_err(tables[primary.index()].get(ctx)))?
                .clone();
            let mut list: Vec<NodeId> = primary.into_vec();
            for &p in predicates {
                list = filter_candidates(tables, p, list);
            }
            NodeSet::from_sorted_vec(list)
        }
    };
    for (si, step) in steps.iter().enumerate() {
        if cur.is_empty() {
            break;
        }
        let test = query.step_test(path_id, si);
        // An axis sweep touches at least the whole context set.
        meter.charge(cur.len() as u64 + 1)?;
        if step.predicates.is_empty() {
            cur = axis_image_resolved(doc, step.axis, &cur, test, scratch);
        } else {
            let mut acc = Vec::new();
            let mut cands = Vec::new();
            for x in cur.iter() {
                doc.axis_nodes_into(step.axis, x, test, &mut cands);
                let mut kept = std::mem::take(&mut cands);
                for &p in &step.predicates {
                    kept = filter_candidates(tables, p, kept);
                }
                acc.extend_from_slice(&kept);
                cands = kept;
            }
            cur = NodeSet::from_unsorted_with_capacity(doc.len(), acc);
        }
    }
    Ok(Value::NodeSet(cur))
}

/// Predicate application is pure table lookup: the predicate's value for
/// every `(y, k, n)` was already materialized bottom-up.
fn filter_candidates(tables: &[Table], pred: ExprId, cands: Vec<NodeId>) -> Vec<NodeId> {
    let size = cands.len();
    let table = &tables[pred.index()];
    cands
        .into_iter()
        .enumerate()
        .filter(|&(i, y)| {
            table
                .get(Context {
                    node: y,
                    position: i + 1,
                    size,
                })
                .boolean()
        })
        .map(|(_, y)| y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;
    use minctx_xml::parse;

    #[test]
    fn triangular_indexing_is_bijective() {
        let t = Table {
            relev: Relev::NODE.union(Relev::POSITION).union(Relev::SIZE),
            per_node: per_node_slots(Relev::POSITION.union(Relev::SIZE), 5),
            vals: Vec::new(),
        };
        let mut seen = std::collections::HashSet::new();
        for n in 1..=5 {
            for k in 1..=n {
                let idx = t.pos_part(k, n);
                assert!(idx < t.per_node, "({k},{n}) out of range");
                assert!(seen.insert(idx), "({k},{n}) collides");
            }
        }
        assert_eq!(seen.len(), t.per_node);
    }

    #[test]
    fn evaluates_positional_predicates_from_tables() {
        let doc = parse("<a><b/><b/><b/></a>").unwrap();
        let q = parse_xpath("/a/b[position() = last() - 1]").unwrap();
        let cq = CompiledQuery::new(&doc, &q);
        let v = ContextValueTables
            .evaluate(
                &doc,
                &cq,
                Context::document(&doc),
                &mut Scratch::new(),
                &mut BudgetMeter::unlimited(),
            )
            .unwrap();
        let ns = v.as_node_set().unwrap();
        assert_eq!(ns.len(), 1);
        // The middle <b>.
        let a = doc.document_element();
        let second = doc.children(a).nth(1).unwrap();
        assert!(ns.contains(second));
    }

    #[test]
    fn table_shapes_follow_relevance() {
        let doc = parse("<a><b/></a>").unwrap();
        let q = parse_xpath("a[position() = 1]").unwrap();
        let cq = CompiledQuery::new(&doc, &q);
        let mut scratch = Scratch::new();
        let mut meter = BudgetMeter::unlimited();
        let mut tables = Vec::new();
        for (id, _) in q.iter() {
            tables.push(build_table(&doc, &cq, &tables, id, &mut scratch, &mut meter).unwrap());
        }
        for (id, node) in q.iter() {
            let t = &tables[id.index()];
            match node {
                // position() table: one entry per k, no node dimension.
                Node::Call(Func::Position, _) => {
                    assert_eq!(t.vals.len(), doc.len());
                }
                // The literal 1: a single constant cell.
                Node::Number(_) => assert_eq!(t.vals.len(), 1),
                _ => {}
            }
        }
    }
}

//! Evaluation errors.

use minctx_syntax::ParseError;
use minctx_xml::XmlError;
use std::fmt;

/// An error produced while compiling or evaluating an XPath query.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The query string failed to lex / parse / normalize.
    Parse(ParseError),
    /// The XML input failed to parse (document construction, or a
    /// malformed token met mid-stream by the `minctx-stream` one-pass
    /// evaluator — which may surface *after* partial results were seen,
    /// since streaming discovers malformedness only when it reaches it).
    Xml(XmlError),
    /// A value had the wrong type for the operation (cannot happen for
    /// queries produced by the normalizer, which makes all conversions
    /// explicit; kept for defense in depth and for [`crate::Value`]
    /// accessors).
    Type {
        expected: &'static str,
        got: &'static str,
    },
    /// The evaluator exhausted its [`Budget`](crate::Budget) before
    /// finishing: the fuel cap was spent or the wall-clock deadline
    /// passed.  Every strategy (including the streaming engine) meters
    /// its work, so a pathological query — e.g. the deliberately
    /// exponential [`Strategy::Naive`](crate::Strategy) baseline, or any
    /// evaluation a serving loop must bound — fails fast instead of
    /// running away.
    BudgetExhausted {
        /// Which limit ran out.
        cause: Exhausted,
    },
    /// The document exceeds an evaluator's structural capacity (e.g. the
    /// streaming engine's `u32` pre-order ordinals, kept in lockstep with
    /// arena `NodeId`s).
    DocumentTooLarge {
        /// Node count of the offending document.
        nodes: usize,
        /// The evaluator's hard limit.
        limit: usize,
    },
    /// A caller-supplied evaluation context is not a valid XPath context
    /// for the document (node out of range, or `position`/`size` not
    /// satisfying `1 ≤ position ≤ size ≤ |dom|`).
    InvalidContext {
        /// What was wrong with it.
        reason: &'static str,
    },
    /// Opening a persistent document snapshot failed (missing file,
    /// truncation, checksum mismatch, version skew — see
    /// [`minctx_index::SnapshotError`] for the full taxonomy).  Arc'd so
    /// evaluation errors stay cheaply clonable.
    Snapshot(std::sync::Arc<minctx_index::SnapshotError>),
}

/// Which [`Budget`](crate::Budget) limit an evaluation ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// The fuel cap was spent.
    Fuel {
        /// The configured cap, in abstract work units.
        fuel: u64,
    },
    /// The wall-clock deadline passed.
    Deadline,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
            EvalError::Xml(e) => write!(f, "{e}"),
            EvalError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            EvalError::BudgetExhausted { cause } => match cause {
                Exhausted::Fuel { fuel } => {
                    write!(f, "evaluation fuel budget of {fuel} units exhausted")
                }
                Exhausted::Deadline => write!(f, "evaluation deadline exhausted"),
            },
            EvalError::DocumentTooLarge { nodes, limit } => {
                write!(
                    f,
                    "document has {nodes} nodes, above the evaluator's limit of {limit}"
                )
            }
            EvalError::InvalidContext { reason } => {
                write!(f, "invalid evaluation context: {reason}")
            }
            EvalError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Parse(e) => Some(e),
            EvalError::Xml(e) => Some(e),
            EvalError::Snapshot(e) => Some(&**e),
            _ => None,
        }
    }
}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}

impl From<XmlError> for EvalError {
    fn from(e: XmlError) -> Self {
        EvalError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = EvalError::Type {
            expected: "node-set",
            got: "number",
        };
        assert_eq!(e.to_string(), "type error: expected node-set, got number");
        let e = EvalError::BudgetExhausted {
            cause: Exhausted::Fuel { fuel: 42 },
        };
        assert!(e.to_string().contains("42"));
        let e = EvalError::BudgetExhausted {
            cause: Exhausted::Deadline,
        };
        assert!(e.to_string().contains("deadline"));
        let p: EvalError = ParseError {
            message: "boom".into(),
            offset: 3,
        }
        .into();
        assert!(p.to_string().contains("boom"));
    }
}

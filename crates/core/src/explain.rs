//! The EXPLAIN/profile surface: [`Engine::explain`](crate::Engine::explain)
//! and the [`QueryProfile`] it returns.
//!
//! A profile is one instrumented evaluation of a query, reporting what the
//! engine actually did rather than what it might do:
//!
//! * the IR before and after the rewrite pipeline, with the
//!   [`Rule`](crate::rewrite::Rule)s that fired and how often;
//! * per location-path step: the kernel route taken
//!   ([`AxisRoute`](minctx_xml::AxisRoute) — postings fast path, local
//!   walk, or generic `O(|D|)` sweep), context-set and axis-output
//!   cardinalities, invocation counts, and wall time (inclusive of the
//!   step's predicate filtering);
//! * MINCONTEXT memo hits/misses and OPTMINCONTEXT backward passes;
//! * fuel consumed under the engine's configured budget;
//! * phase wall times (parse / rewrite / compile / evaluate).
//!
//! The profile is collected by the MINCONTEXT evaluator (the
//! backward-propagating OPTMINCONTEXT variant when the engine's strategy
//! is [`Strategy::OptMinContext`]); the naive and context-value-table
//! strategies share its IR, compilation, and axis kernels, so the plan is
//! representative for them too.
//!
//! [`QueryProfile::plan_text`] renders the deterministic portion — no
//! durations — in a stable line-oriented format, which the `obs_smoke`
//! golden test pins.

use crate::compile::CompiledQuery;
use crate::engine::{Context, Engine, Strategy};
use crate::error::EvalError;
use crate::rewrite::{rewrite_traced, Rule};
use crate::value::Value;
use minctx_syntax::{parse_xpath, ExprId, Node, PathStart, Query, Step};
use minctx_xml::{AxisRoute, Document, Scratch};
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One step of one location path, as actually evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    /// Arena index of the owning path expression.
    pub path: usize,
    /// Step position within that path.
    pub index: usize,
    /// `axis::test` (unabbreviated).
    pub display: String,
    /// How many predicates filter this step.
    pub predicates: usize,
    /// The kernel route of the step's first invocation.
    pub route: AxisRoute,
    /// How many times the step ran (predicate paths run once per distinct
    /// memoized context).
    pub invocations: u64,
    /// Total context-set cardinality across invocations.
    pub input: u64,
    /// Total axis-output cardinality across invocations (post-predicate).
    pub output: u64,
    /// Wall time across invocations, inclusive of predicate filtering.
    pub time: Duration,
    /// Parallel chunks dispatched across invocations (0 when the step ran
    /// sequentially — the default on a 1-thread engine or below the
    /// parallel size threshold).
    pub par_chunks: u64,
}

/// The result of [`Engine::explain`](crate::Engine::explain): what one
/// evaluation of a query did, per step and per phase.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// The query as given.
    pub source: String,
    /// The engine's strategy.
    pub strategy: Strategy,
    /// Whether the rewrite pipeline ran.
    pub optimizer: bool,
    /// The lowered IR before rewriting.
    pub ir_before: String,
    /// The IR that was compiled and evaluated.
    pub ir_after: String,
    /// Fixpoint passes the rewriter ran (0 with the optimizer off).
    pub rewrite_passes: usize,
    /// Rewrite rules that fired, with counts, in [`Rule::ALL`] order.
    pub fired_rules: Vec<(Rule, u32)>,
    /// Per-step evaluation records, outermost path first.
    pub steps: Vec<StepProfile>,
    /// MINCONTEXT memo hits (free re-uses of a computed value).
    pub memo_hits: u64,
    /// MINCONTEXT memo misses (values actually computed).
    pub memo_misses: u64,
    /// OPTMINCONTEXT backward-propagation passes built.
    pub backward_passes: u64,
    /// Fuel charged under the engine's budget.
    pub fuel_spent: u64,
    /// A one-line result summary (type and cardinality, not contents).
    pub result: String,
    /// Wall time of the parse phase.
    pub parse_time: Duration,
    /// Wall time of the rewrite phase (zero with the optimizer off).
    pub rewrite_time: Duration,
    /// Wall time of node-test resolution.
    pub compile_time: Duration,
    /// Wall time of the instrumented evaluation.
    pub eval_time: Duration,
}

impl QueryProfile {
    /// The deterministic plan tree: everything except wall times, in a
    /// stable line-oriented format (golden-tested by `obs_smoke`).
    pub fn plan_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "query {}", self.source);
        let _ = writeln!(
            s,
            "strategy {} optimizer {}",
            self.strategy,
            if self.optimizer { "on" } else { "off" }
        );
        let _ = writeln!(s, "ir.before {}", self.ir_before);
        let _ = writeln!(s, "ir.after  {}", self.ir_after);
        let fired = if self.fired_rules.is_empty() {
            "-".to_string()
        } else {
            self.fired_rules
                .iter()
                .map(|&(r, n)| format!("{r}:{n}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(s, "rewrite passes={} fired={fired}", self.rewrite_passes);
        let _ = writeln!(s, "plan");
        for st in &self.steps {
            let preds = if st.predicates > 0 {
                format!(" preds={}", st.predicates)
            } else {
                String::new()
            };
            // ` par=K` appears only when chunked work was actually
            // dispatched, keeping 1-thread plans byte-identical to the
            // pre-parallel format the goldens pin.
            let par = if st.par_chunks > 0 {
                format!(" par={}", st.par_chunks)
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  [#{} step {}] {}{preds} route={} calls={} in={} out={}{par}",
                st.path, st.index, st.display, st.route, st.invocations, st.input, st.output
            );
        }
        let _ = writeln!(
            s,
            "memo hits={} misses={}",
            self.memo_hits, self.memo_misses
        );
        let _ = writeln!(s, "backward passes={}", self.backward_passes);
        let _ = writeln!(s, "fuel {}", self.fuel_spent);
        let _ = write!(s, "result {}", self.result);
        s
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.plan_text())?;
        write!(
            f,
            "time parse={:?} rewrite={:?} compile={:?} eval={:?}",
            self.parse_time, self.rewrite_time, self.compile_time, self.eval_time
        )
    }
}

/// The mutable collection state the MINCONTEXT run reports into when an
/// evaluation is profiled.
#[derive(Debug, Default)]
pub(crate) struct ProfileCollector {
    steps: Vec<StepProfile>,
    memo_hits: u64,
    memo_misses: u64,
    backward_passes: u64,
}

impl ProfileCollector {
    pub(crate) fn memo_hit(&mut self) {
        self.memo_hits += 1;
    }

    pub(crate) fn memo_miss(&mut self) {
        self.memo_misses += 1;
    }

    pub(crate) fn backward_pass(&mut self) {
        self.backward_passes += 1;
    }

    /// Aggregates one step invocation into the per-(path, index) record.
    pub(crate) fn record_step(
        &mut self,
        path: ExprId,
        index: usize,
        step: &Step,
        obs: StepObservation,
    ) {
        if let Some(s) = self
            .steps
            .iter_mut()
            .find(|s| s.path == path.index() && s.index == index)
        {
            s.invocations += 1;
            s.input += obs.input as u64;
            s.output += obs.output as u64;
            s.time += obs.time;
            s.par_chunks += obs.chunks as u64;
            return;
        }
        self.steps.push(StepProfile {
            path: path.index(),
            index,
            display: format!("{}::{}", step.axis, step.test),
            predicates: step.predicates.len(),
            route: obs.route,
            invocations: 1,
            input: obs.input as u64,
            output: obs.output as u64,
            time: obs.time,
            par_chunks: obs.chunks as u64,
        });
    }
}

/// What one profiled step invocation measured: the kernel route it
/// dispatched to, its context-set cardinalities, and its wall time
/// (including predicate filtering, for predicated steps).
pub(crate) struct StepObservation {
    pub(crate) route: AxisRoute,
    pub(crate) input: usize,
    pub(crate) output: usize,
    pub(crate) time: Duration,
    pub(crate) chunks: usize,
}

/// Parses, rewrites (traced), compiles, and runs one instrumented
/// MINCONTEXT evaluation of `source` at the document root.
pub(crate) fn explain(
    engine: &Engine,
    doc: &Document,
    source: &str,
) -> Result<QueryProfile, EvalError> {
    let t = Instant::now();
    let query = parse_xpath(source)?;
    let parse_time = t.elapsed();
    let ir_before = render_expr(&query, query.root());

    let optimizer = engine.optimizer();
    let (compiled_query, trace, rewrite_time) = if optimizer {
        let t = Instant::now();
        let (q, trace) = rewrite_traced(&query);
        (q, trace, t.elapsed())
    } else {
        (query.clone(), Default::default(), Duration::ZERO)
    };
    let ir_after = render_expr(&compiled_query, compiled_query.root());

    let t = Instant::now();
    let compiled = CompiledQuery::new(doc, &compiled_query);
    let compile_time = t.elapsed();

    let optimized = engine.strategy() == Strategy::OptMinContext;
    let mut collector = ProfileCollector::default();
    let mut scratch = Scratch::new();
    let mut meter = engine.budget_config().meter();
    let t = Instant::now();
    let value = engine.mincontext(optimized).evaluate_profiled(
        doc,
        &compiled,
        Context::document(doc),
        &mut scratch,
        &mut meter,
        &mut collector,
    )?;
    let eval_time = t.elapsed();

    // Outermost path first: the arena keeps children before parents, so
    // descending path ids put the root path at the top.
    let mut steps = collector.steps;
    steps.sort_by(|a, b| b.path.cmp(&a.path).then(a.index.cmp(&b.index)));

    Ok(QueryProfile {
        source: source.to_string(),
        strategy: engine.strategy(),
        optimizer,
        ir_before,
        ir_after,
        rewrite_passes: trace.passes,
        fired_rules: trace.fired(),
        steps,
        memo_hits: collector.memo_hits,
        memo_misses: collector.memo_misses,
        backward_passes: collector.backward_passes,
        fuel_spent: meter.spent(),
        result: summarize(&value),
        parse_time,
        rewrite_time,
        compile_time,
        eval_time,
    })
}

/// A deterministic one-line value summary: type and cardinality, never
/// node contents (profiles may be logged).
fn summarize(v: &Value) -> String {
    match v {
        Value::NodeSet(ns) => format!("node-set n={}", ns.len()),
        Value::Number(n) => format!("number {n}"),
        Value::String(s) => format!("string len={}", s.len()),
        Value::Boolean(b) => format!("boolean {b}"),
    }
}

/// Renders a lowered query arena back to unabbreviated XPath-ish text.
/// The syntax crate's [`Step`] `Display` prints predicates as raw
/// [`ExprId`]s; the IR summaries need their contents, so the profile
/// walks the arena itself.
pub(crate) fn render_expr(q: &Query, id: ExprId) -> String {
    let mut s = String::new();
    write_expr(q, id, &mut s);
    s
}

fn write_expr(q: &Query, id: ExprId, out: &mut String) {
    match q.node(id) {
        Node::Or(a, b) => write_binary(q, *a, " or ", *b, out),
        Node::And(a, b) => write_binary(q, *a, " and ", *b, out),
        Node::Compare(op, a, b) => {
            let (a, b) = (*a, *b);
            out.push('(');
            write_expr(q, a, out);
            let _ = write!(out, " {op} ");
            write_expr(q, b, out);
            out.push(')');
        }
        Node::Arith(op, a, b) => {
            let (a, b) = (*a, *b);
            out.push('(');
            write_expr(q, a, out);
            let _ = write!(out, " {op} ");
            write_expr(q, b, out);
            out.push(')');
        }
        Node::Neg(a) => {
            out.push_str("(-");
            write_expr(q, *a, out);
            out.push(')');
        }
        Node::Union(a, b) => write_binary(q, *a, " | ", *b, out),
        Node::Call(func, args) => {
            let _ = write!(out, "{func}(");
            for (i, &a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(q, a, out);
            }
            out.push(')');
        }
        Node::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Node::Literal(s) => {
            let _ = write!(out, "'{s}'");
        }
        Node::Path(start, steps) => {
            match start {
                PathStart::Root => out.push('/'),
                PathStart::Context => {
                    if steps.is_empty() {
                        out.push('.');
                    }
                }
                PathStart::Filter {
                    primary,
                    predicates,
                } => {
                    write_expr(q, *primary, out);
                    for &p in predicates {
                        out.push('[');
                        write_expr(q, p, out);
                        out.push(']');
                    }
                    if !steps.is_empty() {
                        out.push('/');
                    }
                }
            }
            for (i, st) in steps.iter().enumerate() {
                if i > 0 {
                    out.push('/');
                }
                let _ = write!(out, "{}::{}", st.axis, st.test);
                for &p in &st.predicates {
                    out.push('[');
                    write_expr(q, p, out);
                    out.push(']');
                }
            }
        }
    }
}

fn write_binary(q: &Query, a: ExprId, op: &str, b: ExprId, out: &mut String) {
    out.push('(');
    write_expr(q, a, out);
    out.push_str(op);
    write_expr(q, b, out);
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use minctx_xml::parse;

    fn item_doc() -> Document {
        parse(r#"<cat><item id="1"><n/></item><x><item id="2"/></x><item/><other/></cat>"#).unwrap()
    }

    #[test]
    fn explain_reports_routing_rules_and_cardinalities() {
        let doc = item_doc();
        let e = Engine::new(Strategy::MinContext).with_optimizer(true);
        let p = e.explain(&doc, "//item[@id]").unwrap();
        // The rewrite fused `//` and the trace names it (lowering wraps
        // bare node-set predicates in an explicit boolean()).
        assert_eq!(p.ir_after, "/descendant::item[boolean(attribute::id)]");
        assert_eq!(p.fired_rules, vec![(Rule::FuseDescendant, 1)]);
        assert!(p.rewrite_passes >= 2);
        // The descendant::item step took the postings fast path from the
        // singleton root origin and saw all three <item>s.
        let outer = &p.steps[0];
        assert_eq!(outer.display, "descendant::item");
        assert_eq!(outer.predicates, 1);
        assert_eq!(outer.route, AxisRoute::Postings);
        assert_eq!(outer.input, 1);
        assert_eq!(outer.output, 2, "two items carry @id");
        // The predicate path ran per candidate as a local attribute walk.
        let pred = p
            .steps
            .iter()
            .find(|s| s.display == "attribute::id")
            .expect("predicate step profiled");
        assert_eq!(pred.route, AxisRoute::Walk);
        assert_eq!(pred.invocations, 3, "one walk per candidate item");
        assert!(p.memo_misses > 0);
        assert!(p.fuel_spent > 0);
        assert_eq!(p.result, "node-set n=2");
        // The deterministic plan text round-trips through Display.
        assert!(p.to_string().contains(&p.plan_text()));
        assert!(p.plan_text().contains("route=postings"));
        assert!(p.plan_text().contains("fired=fuse-descendant:1"));
    }

    #[test]
    fn explain_without_optimizer_keeps_the_ir_and_fires_nothing() {
        let doc = item_doc();
        let e = Engine::new(Strategy::MinContext).with_optimizer(false);
        let p = e.explain(&doc, "//item[@id]").unwrap();
        assert_eq!(p.ir_before, p.ir_after);
        assert!(p.fired_rules.is_empty());
        assert_eq!(p.rewrite_passes, 0);
        assert_eq!(p.result, "node-set n=2");
    }

    #[test]
    fn explain_counts_memo_hits_and_backward_passes() {
        let doc = parse("<a><b><c>7</c></b><b><c>9</c></b><b/></a>").unwrap();
        // OPTMINCONTEXT answers the predicate with one backward pass.
        let p = Engine::new(Strategy::OptMinContext)
            .explain(&doc, "/a/b[c = 7]")
            .unwrap();
        assert_eq!(p.backward_passes, 1);
        assert_eq!(p.result, "node-set n=1");
        // MINCONTEXT evaluates it forward: no backward pass, and the
        // shared predicate machinery produces memo traffic.
        let p = Engine::new(Strategy::MinContext)
            .explain(&doc, "/a/b[c = 7]")
            .unwrap();
        assert_eq!(p.backward_passes, 0);
        assert!(p.memo_misses > 0);
    }

    #[test]
    fn explain_respects_the_engine_budget() {
        let doc = item_doc();
        let e = Engine::new(Strategy::MinContext).with_budget(1);
        assert!(matches!(
            e.explain(&doc, "//item[@id]"),
            Err(EvalError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn renderer_covers_every_node_shape() {
        for (src, want) in [
            (
                "//item[@id]",
                "/descendant-or-self::node()/child::item[boolean(attribute::id)]",
            ),
            ("a or b", "(boolean(child::a) or boolean(child::b))"),
            ("1 + -2", "(1 + (-2))"),
            ("a | b", "(child::a | child::b)"),
            (
                "count(//x) > 2",
                "(count(/descendant-or-self::node()/child::x) > 2)",
            ),
            ("'s'", "'s'"),
            // `.` lowers to an explicit self step.
            (".", "self::node()"),
            (
                "(//a)[1]/b",
                "/descendant-or-self::node()/child::a[(position() = 1)]/child::b",
            ),
        ] {
            let q = parse_xpath(src).unwrap();
            assert_eq!(render_expr(&q, q.root()), want, "{src}");
        }
    }
}

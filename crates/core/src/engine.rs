//! The public entry point: [`Engine`], [`Strategy`], [`Context`], and the
//! [`Evaluator`] trait future backends plug into.

use crate::error::EvalError;
use crate::mincontext::MinContext;
use crate::naive::Naive;
use crate::tables::ContextValueTables;
use crate::value::Value;
use minctx_syntax::{parse_xpath, Query};
use minctx_xml::{Document, NodeId};
use std::fmt;

/// An XPath 1.0 evaluation context: the triple `(x, k, n)` of Section 2.2
/// — context node, context position, context size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Context {
    pub node: NodeId,
    /// 1-based proximity position (`position()`).
    pub position: usize,
    /// Context size (`last()`).
    pub size: usize,
}

impl Context {
    /// The initial context for whole-document queries: the root node with
    /// position and size 1.
    pub fn document(doc: &Document) -> Context {
        Context {
            node: doc.root(),
            position: 1,
            size: 1,
        }
    }

    /// A context at `node` with position and size 1.
    pub fn at(node: NodeId) -> Context {
        Context {
            node,
            position: 1,
            size: 1,
        }
    }
}

/// Which evaluation algorithm an [`Engine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Context-at-a-time recursion without sharing — the exponential
    /// baseline of Section 1, modeling the XPath engines of the time.
    Naive,
    /// Bottom-up context-value tables over all contexts (VLDB 2002).
    ContextValueTable,
    /// MINCONTEXT (Section 3): polynomial time via relevant-context
    /// restriction and set-at-a-time path evaluation.
    MinContext,
    /// OPTMINCONTEXT (Section 4): MINCONTEXT plus backward axis
    /// propagation for existential predicates.
    OptMinContext,
}

impl Strategy {
    /// All strategies, in baseline-to-best order (handy for differential
    /// tests and benchmark sweeps).
    pub const ALL: [Strategy; 4] = [
        Strategy::Naive,
        Strategy::ContextValueTable,
        Strategy::MinContext,
        Strategy::OptMinContext,
    ];

    /// A short stable name (used in bench tables and CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::ContextValueTable => "cvt",
            Strategy::MinContext => "mincontext",
            Strategy::OptMinContext => "optmincontext",
        }
    }

    /// Parses a strategy name as printed by [`Strategy::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Strategy> {
        Some(match s {
            "naive" => Strategy::Naive,
            "cvt" => Strategy::ContextValueTable,
            "mincontext" => Strategy::MinContext,
            "optmincontext" => Strategy::OptMinContext,
            _ => return None,
        })
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad`, not `write_str`, so callers' width/alignment specifiers
        // (bench tables, consumer logs) are honored.
        f.pad(self.as_str())
    }
}

/// An evaluation backend.  The four in-tree strategies implement it; so
/// can out-of-tree backends (streaming, index-backed, parallel) — the
/// [`Engine`] only needs something that maps `(document, query, context)`
/// to a [`Value`].
pub trait Evaluator {
    /// The strategy this evaluator implements (for diagnostics).
    fn strategy(&self) -> Strategy;

    /// Evaluates a lowered query at a context.
    fn evaluate(&self, doc: &Document, query: &Query, ctx: Context) -> Result<Value, EvalError>;
}

/// The query-evaluation entry point: a [`Strategy`] plus evaluation
/// options.
///
/// ```
/// use minctx_core::{Engine, Strategy};
/// use minctx_xml::parse;
///
/// let doc = parse("<a><b>1</b><b>2</b></a>").unwrap();
/// let engine = Engine::new(Strategy::MinContext);
/// let v = engine.evaluate_str(&doc, "count(/a/b)").unwrap();
/// assert_eq!(v.number(&doc), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    strategy: Strategy,
    budget: Option<u64>,
}

impl Engine {
    /// An engine running the given strategy.
    pub fn new(strategy: Strategy) -> Engine {
        Engine {
            strategy,
            budget: None,
        }
    }

    /// Caps the abstract work units the evaluator may spend; exceeding the
    /// cap yields [`EvalError::BudgetExceeded`].  Only [`Strategy::Naive`]
    /// meters its work (it is the only strategy that can blow up); the
    /// polynomial strategies ignore the budget.
    pub fn with_budget(mut self, budget: u64) -> Engine {
        self.budget = Some(budget);
        self
    }

    /// The engine's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured work budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The pluggable backend for this engine's strategy.
    pub fn evaluator(&self) -> Box<dyn Evaluator> {
        match self.strategy {
            Strategy::Naive => Box::new(Naive {
                budget: self.budget,
            }),
            Strategy::ContextValueTable => Box::new(ContextValueTables),
            Strategy::MinContext => Box::new(MinContext { optimized: false }),
            Strategy::OptMinContext => Box::new(MinContext { optimized: true }),
        }
    }

    /// Parses, normalizes, lowers and evaluates an XPath 1.0 expression
    /// against the whole document (initial context = document root).
    pub fn evaluate_str(&self, doc: &Document, query: &str) -> Result<Value, EvalError> {
        let query = parse_xpath(query)?;
        self.evaluate(doc, &query)
    }

    /// Evaluates a lowered query against the whole document.
    pub fn evaluate(&self, doc: &Document, query: &Query) -> Result<Value, EvalError> {
        self.evaluate_at(doc, query, Context::document(doc))
    }

    /// Evaluates a lowered query at an explicit context.
    ///
    /// The context must be valid for the document: its node in range and
    /// `1 ≤ position ≤ size ≤ |dom|` (every context arising during XPath
    /// evaluation satisfies this) — the evaluators' dense tables and
    /// packed memo keys rely on these bounds.
    pub fn evaluate_at(
        &self,
        doc: &Document,
        query: &Query,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let reason = if ctx.node.index() >= doc.len() {
            Some("context node is not in the document")
        } else if ctx.position == 0 || ctx.position > ctx.size {
            Some("context position must satisfy 1 <= position <= size")
        } else if ctx.size > doc.len() {
            Some("context size exceeds the document's node count")
        } else {
            None
        };
        if let Some(reason) = reason {
            return Err(EvalError::InvalidContext { reason });
        }
        self.evaluator().evaluate(doc, query, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_xml::parse;

    #[test]
    fn strategy_name_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_str_opt(s.as_str()), Some(s));
        }
        assert_eq!(Strategy::from_str_opt("quantum"), None);
    }

    #[test]
    fn engine_reports_configuration() {
        let e = Engine::new(Strategy::Naive).with_budget(100);
        assert_eq!(e.strategy(), Strategy::Naive);
        assert_eq!(e.budget(), Some(100));
        assert_eq!(e.evaluator().strategy(), Strategy::Naive);
        assert_eq!(
            Engine::new(Strategy::OptMinContext).evaluator().strategy(),
            Strategy::OptMinContext
        );
    }

    #[test]
    fn evaluate_str_reports_parse_errors() {
        let doc = parse("<a/>").unwrap();
        let e = Engine::new(Strategy::MinContext);
        assert!(matches!(
            e.evaluate_str(&doc, "/a["),
            Err(EvalError::Parse(_))
        ));
    }

    #[test]
    fn evaluate_at_rejects_invalid_contexts() {
        let doc = parse("<a><b/></a>").unwrap();
        let q = minctx_syntax::parse_xpath("position()").unwrap();
        for s in Strategy::ALL {
            let e = Engine::new(s);
            for bad in [
                Context {
                    node: doc.root(),
                    position: doc.len() + 1,
                    size: doc.len() + 1,
                },
                Context {
                    node: doc.root(),
                    position: 0,
                    size: 1,
                },
                Context {
                    node: doc.root(),
                    position: 2,
                    size: 1,
                },
                Context {
                    node: minctx_xml::NodeId::from_index(doc.len()),
                    position: 1,
                    size: 1,
                },
            ] {
                assert!(
                    matches!(
                        e.evaluate_at(&doc, &q, bad),
                        Err(EvalError::InvalidContext { .. })
                    ),
                    "strategy {s} accepted {bad:?}"
                );
            }
            // A maximal valid context works.
            let ok = Context {
                node: doc.root(),
                position: doc.len(),
                size: doc.len(),
            };
            assert_eq!(
                e.evaluate_at(&doc, &q, ok).unwrap(),
                Value::Number(doc.len() as f64),
                "strategy {s}"
            );
        }
    }

    #[test]
    fn evaluate_at_respects_context() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let q = minctx_syntax::parse_xpath("c").unwrap();
        for s in Strategy::ALL {
            let v = Engine::new(s)
                .evaluate_at(&doc, &q, Context::at(b))
                .unwrap();
            assert_eq!(v.as_node_set().unwrap().len(), 1, "strategy {s}");
            let v = Engine::new(s).evaluate(&doc, &q).unwrap();
            assert!(v.as_node_set().unwrap().is_empty(), "strategy {s}");
        }
    }
}

//! The public entry point: [`Engine`], [`Strategy`], [`Context`], and the
//! [`Evaluator`] trait future backends plug into.
//!
//! The engine owns two pieces of cross-evaluation state aimed at the
//! serving scenario (one document, a fixed query set, many evaluations):
//!
//! * a **compiled-query cache** keyed on `(query stamp, document stamp)`,
//!   so node tests are resolved against the document's name table exactly
//!   once per `(Query, Document)` pair — repeated [`Engine::evaluate`]
//!   calls do zero name resolution;
//! * a reusable [`Scratch`] arena threaded into the evaluators, so the
//!   axis kernels' mark/flag sweeps perform no per-call `O(|D|)`
//!   allocations in steady state.

use crate::budget::{Budget, BudgetMeter};
use crate::cache::LruCache;
use crate::compile::CompiledQuery;
use crate::error::EvalError;
use crate::explain::QueryProfile;
use crate::mincontext::{MinContext, ParSettings};
use crate::naive::Naive;
use crate::tables::ContextValueTables;
use crate::value::Value;
use minctx_obs::{Phase, Recorder};
use minctx_syntax::{parse_xpath, Query};
use minctx_xml::{Document, NodeId, ParConfig, Scratch, WorkerPool};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An XPath 1.0 evaluation context: the triple `(x, k, n)` of Section 2.2
/// — context node, context position, context size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Context {
    pub node: NodeId,
    /// 1-based proximity position (`position()`).
    pub position: usize,
    /// Context size (`last()`).
    pub size: usize,
}

impl Context {
    /// The initial context for whole-document queries: the root node with
    /// position and size 1.
    pub fn document(doc: &Document) -> Context {
        Context {
            node: doc.root(),
            position: 1,
            size: 1,
        }
    }

    /// A context at `node` with position and size 1.
    pub fn at(node: NodeId) -> Context {
        Context {
            node,
            position: 1,
            size: 1,
        }
    }
}

/// Which evaluation algorithm an [`Engine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Context-at-a-time recursion without sharing — the exponential
    /// baseline of Section 1, modeling the XPath engines of the time.
    Naive,
    /// Bottom-up context-value tables over all contexts (VLDB 2002).
    ContextValueTable,
    /// MINCONTEXT (Section 3): polynomial time via relevant-context
    /// restriction and set-at-a-time path evaluation.
    MinContext,
    /// OPTMINCONTEXT (Section 4): MINCONTEXT plus backward axis
    /// propagation for existential predicates.
    OptMinContext,
    /// One-pass SAX-style streaming over XML text without materializing
    /// the arena, for the forward-axis fragment (the `minctx-stream`
    /// crate's `evaluate_reader`).  As an *arena* evaluator — i.e. when a
    /// [`Document`] has already been built and `evaluate` is called — this
    /// strategy delegates to [`Strategy::MinContext`], which is also the
    /// streaming differential suite's oracle.
    Streaming,
}

impl Strategy {
    /// The arena strategies, in baseline-to-best order (handy for
    /// differential tests and benchmark sweeps).  [`Strategy::Streaming`]
    /// is deliberately excluded: it is not a distinct arena algorithm
    /// (its arena path delegates to MINCONTEXT; the streaming path lives
    /// in `minctx-stream`).
    pub const ALL: [Strategy; 4] = [
        Strategy::Naive,
        Strategy::ContextValueTable,
        Strategy::MinContext,
        Strategy::OptMinContext,
    ];

    /// A short stable name (used in bench tables and CLI flags).
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::ContextValueTable => "cvt",
            Strategy::MinContext => "mincontext",
            Strategy::OptMinContext => "optmincontext",
            Strategy::Streaming => "streaming",
        }
    }

    /// Parses a strategy name as printed by [`Strategy::as_str`].
    pub fn from_str_opt(s: &str) -> Option<Strategy> {
        Some(match s {
            "naive" => Strategy::Naive,
            "cvt" => Strategy::ContextValueTable,
            "mincontext" => Strategy::MinContext,
            "optmincontext" => Strategy::OptMinContext,
            "streaming" => Strategy::Streaming,
            _ => return None,
        })
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad`, not `write_str`, so callers' width/alignment specifiers
        // (bench tables, consumer logs) are honored.
        f.pad(self.as_str())
    }
}

/// An evaluation backend.  The four in-tree strategies implement it; so
/// can out-of-tree backends (streaming, index-backed, parallel) — the
/// [`Engine`] only needs something that maps `(document, compiled query,
/// context)` to a [`Value`].
///
/// Backends receive the query pre-compiled (node tests resolved, see
/// [`CompiledQuery`]), a caller-owned [`Scratch`] for the axis kernels'
/// working memory, and a [`BudgetMeter`] they must charge their work
/// against — every strategy honors fuel and deadline limits, surfacing
/// [`EvalError::BudgetExhausted`] when one trips (see
/// [`Budget`](crate::Budget) for the accounting contract).
pub trait Evaluator {
    /// The strategy this evaluator implements (for diagnostics).
    fn strategy(&self) -> Strategy;

    /// Evaluates a compiled query at a context, charging work to `meter`.
    fn evaluate(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        ctx: Context,
        scratch: &mut Scratch,
        meter: &mut BudgetMeter,
    ) -> Result<Value, EvalError>;
}

/// Default compiled-query cache capacity; beyond it the least-recently
/// used compilation is evicted (see [`Engine::with_cache_capacity`]).
const DEFAULT_CACHE_CAPACITY: usize = 256;

/// The query-evaluation entry point: a [`Strategy`] plus evaluation
/// options, a compiled-query cache, and reusable evaluation scratch.
///
/// ```
/// use minctx_core::{Engine, Strategy};
/// use minctx_xml::parse;
///
/// let doc = parse("<a><b>1</b><b>2</b></a>").unwrap();
/// let engine = Engine::new(Strategy::MinContext);
/// let v = engine.evaluate_str(&doc, "count(/a/b)").unwrap();
/// assert_eq!(v.number(&doc), 2.0);
/// ```
pub struct Engine {
    strategy: Strategy,
    budget: Budget,
    /// Run the [`rewrite`](crate::rewrite::rewrite) pipeline before
    /// compiling queries.  On by default; `MINCTX_NO_OPTIMIZER` in the
    /// environment flips the default off (the no-optimizer CI job), and
    /// [`Engine::with_optimizer`] overrides either way.
    optimize: bool,
    /// `(query stamp, document stamp)` → compiled query, LRU-bounded at
    /// [`Engine::cache_capacity`] entries.
    cache: Mutex<LruCache<(u64, u64), Arc<CompiledQuery>>>,
    /// Reusable axis-kernel working memory for this engine's evaluations.
    /// Pool of scratch arenas: evaluations pop one and return it, so
    /// concurrent evaluations on a shared engine never serialize on the
    /// working memory (the lock is held only for the pop/push).
    scratch_pool: Mutex<Vec<Scratch>>,
    /// Query-lifecycle trace recorder.  Disabled by default — the spans in
    /// the parse/rewrite/compile/evaluate paths then cost one branch each
    /// and never read the clock (see [`Engine::with_recorder`]).
    recorder: Recorder,
    /// Worker count for parallel evaluation; 1 (the default) means fully
    /// sequential — no pool exists and the MINCONTEXT evaluators run the
    /// exact pre-parallelism code path.
    threads: usize,
    /// Size gating for the chunked kernels (see [`ParConfig`]).
    par: ParConfig,
    /// The work-splitting pool, present iff `threads > 1`.  Clones share
    /// it (the pool serializes concurrent regions internally).
    pool: Option<Arc<WorkerPool>>,
}

/// Scratch arenas retained in the pool; beyond this, returning scratches
/// are dropped (bounds idle memory after a concurrency burst).
const SCRATCH_POOL_CAP: usize = 16;

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("strategy", &self.strategy)
            .field("budget", &self.budget)
            .field("optimize", &self.optimize)
            .field("cached_queries", &self.cached_queries())
            .field("recorder", &self.recorder)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        Engine {
            strategy: self.strategy,
            budget: self.budget,
            optimize: self.optimize,
            // Compiled queries are immutable and Arc-shared: cheap to keep.
            cache: Mutex::new(self.cache.lock().expect("engine cache poisoned").clone()),
            scratch_pool: Mutex::new(Vec::new()),
            // Clones share the sink: a cloned serving engine keeps tracing
            // into the same stream.
            recorder: self.recorder.clone(),
            threads: self.threads,
            par: self.par,
            // Clones share the pool; regions are serialized inside it.
            pool: self.pool.clone(),
        }
    }
}

/// The optimizer default: on, unless `MINCTX_NO_OPTIMIZER` is set to
/// anything but `0`/empty (the CI job that re-runs the suite with every
/// query evaluated as written).
fn optimizer_default() -> bool {
    match std::env::var_os("MINCTX_NO_OPTIMIZER") {
        None => true,
        Some(v) => v.is_empty() || v == "0",
    }
}

impl Engine {
    /// An engine running the given strategy.
    pub fn new(strategy: Strategy) -> Engine {
        Engine {
            strategy,
            budget: Budget::UNLIMITED,
            optimize: optimizer_default(),
            cache: Mutex::new(LruCache::new(DEFAULT_CACHE_CAPACITY)),
            scratch_pool: Mutex::new(Vec::new()),
            recorder: Recorder::disabled(),
            threads: 1,
            par: ParConfig::default(),
            pool: None,
        }
    }

    /// Sets the worker count for parallel evaluation.  With `n > 1` the
    /// MINCONTEXT/OPTMINCONTEXT evaluators split large axis sweeps and
    /// predicate fan-outs across a pool of `n` workers (chunks merged by
    /// pre-order ordinal, so results are **bit-identical** to sequential
    /// evaluation).  The default — and `n = 1` — keeps evaluation fully
    /// sequential on the exact pre-parallelism code path; small inputs
    /// stay sequential regardless, gated by a size threshold.
    pub fn with_threads(mut self, n: usize) -> Engine {
        let n = n.max(1);
        self.threads = n;
        self.pool = (n > 1).then(|| Arc::new(WorkerPool::new(n)));
        self
    }

    /// The configured worker count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the minimum scanned-item count above which the chunked
    /// parallel kernels engage (default 4096).  Exposed chiefly so tests
    /// and benchmarks can force or sweep the gating; the default keeps
    /// small steps off the pool.
    pub fn with_par_threshold(mut self, threshold: usize) -> Engine {
        self.par.threshold = threshold;
        self
    }

    /// Overrides the minimum chunk size for the parallel kernels
    /// (default 1024).
    pub fn with_par_chunk_min(mut self, min_chunk: usize) -> Engine {
        self.par.min_chunk = min_chunk;
        self
    }

    /// The MINCONTEXT evaluator configured for this engine: optimized or
    /// not, with the parallel settings attached iff a pool exists.
    pub(crate) fn mincontext(&self, optimized: bool) -> MinContext {
        MinContext {
            optimized,
            parallel: self.pool.as_ref().map(|pool| ParSettings {
                pool: Arc::clone(pool),
                config: self.par,
            }),
        }
    }

    /// Attaches a query-lifecycle trace [`Recorder`].  With an enabled
    /// recorder, each [`Engine::evaluate_str`] / compile / evaluate call
    /// emits parse, rewrite, compile, and evaluate spans (wall time plus
    /// phase attributes such as IR node counts and fuel spent) into the
    /// recorder's sink.  The default recorder is disabled and near-free.
    pub fn with_recorder(mut self, recorder: Recorder) -> Engine {
        self.recorder = recorder;
        self
    }

    /// The engine's trace recorder (disabled unless one was attached).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Caps the abstract work units (fuel) an evaluation may spend;
    /// exceeding the cap yields [`EvalError::BudgetExhausted`].  Every
    /// strategy meters its work — including the polynomial ones, whose
    /// charges bound worst-case latency on a shared serving engine, and
    /// the streaming engine's per-event accounting.
    pub fn with_budget(mut self, fuel: u64) -> Engine {
        self.budget.fuel = Some(fuel);
        self
    }

    /// Caps the wall-clock time an evaluation may take; exceeding it
    /// yields [`EvalError::BudgetExhausted`].  The deadline is polled
    /// every ~50k charged work units, so enforcement granularity is well
    /// under a millisecond of evaluator work.
    pub fn with_timeout(mut self, timeout: Duration) -> Engine {
        self.budget.timeout = Some(timeout);
        self
    }

    /// Bounds the compiled-query cache at `capacity` entries (least
    /// recently used compilations are evicted beyond it).  Clears the
    /// cache.  The default is 256.
    pub fn with_cache_capacity(self, capacity: usize) -> Engine {
        Engine {
            cache: Mutex::new(LruCache::new(capacity)),
            ..self
        }
    }

    /// The compiled-query cache's entry bound.
    pub fn cache_capacity(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").capacity()
    }

    /// Enables or disables the query-IR rewrite pipeline
    /// ([`rewrite`](crate::rewrite::rewrite): step fusion, reverse-axis
    /// normalization, predicate hoisting/constant folding, subexpression
    /// sharing).  On by default; rewriting is semantics-preserving, so the
    /// toggle exists for differential testing and for measuring the passes
    /// themselves.  Clears the compiled-query cache, which may hold
    /// compilations from the previous setting.
    pub fn with_optimizer(self, on: bool) -> Engine {
        self.cache.lock().expect("engine cache poisoned").clear();
        Engine {
            optimize: on,
            ..self
        }
    }

    /// Whether the rewrite pipeline runs before compilation.
    pub fn optimizer(&self) -> bool {
        self.optimize
    }

    /// The engine's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured fuel cap, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget.fuel
    }

    /// The full budget configuration (fuel and timeout).
    pub fn budget_config(&self) -> Budget {
        self.budget
    }

    /// The pluggable backend for this engine's strategy.
    pub fn evaluator(&self) -> Box<dyn Evaluator> {
        match self.strategy {
            Strategy::Naive => Box::new(Naive),
            Strategy::ContextValueTable => Box::new(ContextValueTables),
            // Arena evaluation under the streaming strategy uses
            // MINCONTEXT — the same evaluator the streaming differential
            // suite uses as its oracle — so `evaluate_reader`'s arena
            // fallback and a direct `evaluate` agree by construction.
            Strategy::MinContext | Strategy::Streaming => Box::new(self.mincontext(false)),
            Strategy::OptMinContext => Box::new(self.mincontext(true)),
        }
    }

    /// Compiles `query` against `doc` — running the rewrite pipeline
    /// (unless disabled) and resolving every node test once — or returns
    /// the cached compilation for this `(query, document)` pair.  The
    /// cache keys on the *original* query's stamp, so callers never observe
    /// the rewritten query's identity.
    pub fn compile(&self, doc: &Document, query: &Query) -> Arc<CompiledQuery> {
        let key = (query.stamp(), doc.stamp());
        {
            let mut cache = self.cache.lock().expect("engine cache poisoned");
            if let Some(cq) = cache.get(&key) {
                return Arc::clone(cq);
            }
        }
        // Rewrite + compile outside the lock: both are pure, and losing a
        // race merely compiles the same query twice.
        let cq = Arc::new(self.compile_uncached(doc, query));
        self.cache
            .lock()
            .expect("engine cache poisoned")
            .insert(key, Arc::clone(&cq));
        cq
    }

    /// Compiles without consulting or populating the engine's cache — for
    /// callers that maintain their own compiled-query store (the
    /// `minctx-serve` shared LRU) or evaluate ad-hoc strings.
    pub fn compile_uncached(&self, doc: &Document, query: &Query) -> CompiledQuery {
        if self.optimize {
            let rewritten = {
                let mut span = self.recorder.span(Phase::Rewrite);
                let (rewritten, trace) = crate::rewrite::rewrite_traced(query);
                span.attr_u64("passes", trace.passes as u64);
                span.attr_u64("fired", u64::from(trace.total()));
                rewritten
            };
            let mut span = self.recorder.span(Phase::Compile);
            span.attr_u64("nodes", rewritten.len() as u64);
            CompiledQuery::new(doc, &rewritten)
        } else {
            let mut span = self.recorder.span(Phase::Compile);
            span.attr_u64("nodes", query.len() as u64);
            CompiledQuery::new(doc, query)
        }
    }

    /// Number of compiled queries currently cached (diagnostics and
    /// cache-behavior tests).
    pub fn cached_queries(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }

    /// Parses, normalizes, lowers and evaluates an XPath 1.0 expression
    /// against the whole document (initial context = document root).
    ///
    /// Each call lowers a fresh [`Query`] whose stamp can never recur, so
    /// the compilation is deliberately *not* cached — ad-hoc strings would
    /// only fill the cache with dead entries and evict the genuinely hot
    /// compiled queries.  Callers evaluating the same expression
    /// repeatedly should parse once with [`minctx_syntax::parse_xpath`]
    /// and reuse the query (or compile it with [`Engine::compile`]).
    pub fn evaluate_str(&self, doc: &Document, query: &str) -> Result<Value, EvalError> {
        let query = {
            let mut span = self.recorder.span(Phase::Parse);
            let query = parse_xpath(query)?;
            span.attr_u64("nodes", query.len() as u64);
            query
        };
        let compiled = self.compile_uncached(doc, &query);
        self.evaluate_compiled(doc, &compiled, Context::document(doc))
    }

    /// Runs one *instrumented* evaluation of `query` at the document root
    /// and reports what happened: the IR before/after rewriting with the
    /// [`Rule`](crate::rewrite::Rule)s that fired, per-step kernel routing
    /// ([`AxisRoute`](minctx_xml::AxisRoute)) with cardinalities and wall
    /// times, memo and backward-propagation traffic, and fuel spent under
    /// the engine's budget.
    ///
    /// The profiled run uses the MINCONTEXT evaluator (OPTMINCONTEXT when
    /// the engine's strategy is [`Strategy::OptMinContext`]) and honors
    /// the engine's budget and optimizer settings, but bypasses the
    /// compiled-query cache: EXPLAIN always measures a real compile.
    ///
    /// ```
    /// use minctx_core::{Engine, Strategy};
    /// use minctx_xml::parse;
    ///
    /// let doc = parse(r#"<a><item id="1"/><item/></a>"#).unwrap();
    /// let profile = Engine::new(Strategy::MinContext)
    ///     .explain(&doc, "//item[@id]")
    ///     .unwrap();
    /// println!("{profile}");
    /// assert_eq!(profile.result, "node-set n=1");
    /// ```
    pub fn explain(&self, doc: &Document, query: &str) -> Result<QueryProfile, EvalError> {
        crate::explain::explain(self, doc, query)
    }

    /// Evaluates a lowered query against the whole document.
    pub fn evaluate(&self, doc: &Document, query: &Query) -> Result<Value, EvalError> {
        self.evaluate_at(doc, query, Context::document(doc))
    }

    /// Opens a persistent document snapshot (see `minctx-index`) and
    /// evaluates `query` against it — a stored corpus is queried without
    /// ever touching the XML parser.
    ///
    /// This is the one-shot convenience: each call pays the snapshot's
    /// open-time integrity scan.  Serving loops should call
    /// [`minctx_index::open_snapshot`] once and [`Engine::evaluate`] the
    /// returned [`Document`] many times — snapshot stamps are stable
    /// across reopens, so the engine's compiled-query cache keeps
    /// hitting either way.
    pub fn evaluate_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        query: &Query,
    ) -> Result<Value, EvalError> {
        let doc = minctx_index::open_snapshot(path)
            .map_err(|e| EvalError::Snapshot(std::sync::Arc::new(e)))?;
        self.evaluate(&doc, query)
    }

    /// [`Engine::evaluate_snapshot`] for an unparsed XPath string (the
    /// string is lowered afresh per call, exactly like
    /// [`Engine::evaluate_str`]).
    pub fn evaluate_snapshot_str(
        &self,
        path: impl AsRef<std::path::Path>,
        query: &str,
    ) -> Result<Value, EvalError> {
        let doc = minctx_index::open_snapshot(path)
            .map_err(|e| EvalError::Snapshot(std::sync::Arc::new(e)))?;
        self.evaluate_str(&doc, query)
    }

    /// Evaluates a lowered query at an explicit context.
    ///
    /// The context must be valid for the document: its node in range and
    /// `1 ≤ position ≤ size ≤ |dom|` (every context arising during XPath
    /// evaluation satisfies this) — the evaluators' dense tables and
    /// packed memo keys rely on these bounds.
    pub fn evaluate_at(
        &self,
        doc: &Document,
        query: &Query,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let compiled = self.compile(doc, query);
        self.evaluate_compiled(doc, &compiled, ctx)
    }

    /// Evaluates an already-compiled query at an explicit context; the
    /// no-per-call-work entry point for serving loops that hold on to the
    /// [`CompiledQuery`] themselves.  Metered under the engine's
    /// configured [`Budget`].
    pub fn evaluate_compiled(
        &self,
        doc: &Document,
        compiled: &CompiledQuery,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let mut meter = self.budget.meter();
        self.evaluate_compiled_metered(doc, compiled, ctx, &mut meter)
    }

    /// [`Engine::evaluate_compiled`] with a caller-supplied meter —
    /// request loops build one per request (typically via
    /// [`Budget::meter_at`], anchoring the deadline at submit time so
    /// queue wait counts) instead of using the engine-wide budget.
    pub fn evaluate_compiled_metered(
        &self,
        doc: &Document,
        compiled: &CompiledQuery,
        ctx: Context,
        meter: &mut BudgetMeter,
    ) -> Result<Value, EvalError> {
        let reason = if compiled.doc_stamp() != doc.stamp() {
            Some("query was compiled against a different document")
        } else if ctx.node.index() >= doc.len() {
            Some("context node is not in the document")
        } else if ctx.position == 0 || ctx.position > ctx.size {
            Some("context position must satisfy 1 <= position <= size")
        } else if ctx.size > doc.len() {
            Some("context size exceeds the document's node count")
        } else {
            None
        };
        if let Some(reason) = reason {
            return Err(EvalError::InvalidContext { reason });
        }
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("engine scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        let result = {
            let mut span = self.recorder.span(Phase::Evaluate);
            let spent_before = meter.spent();
            let result = self
                .evaluator()
                .evaluate(doc, compiled, ctx, &mut scratch, meter);
            span.attr_str("strategy", || self.strategy.as_str().to_string());
            span.attr_u64("fuel", meter.spent() - spent_before);
            span.attr_u64("ok", u64::from(result.is_ok()));
            result
        };
        let mut pool = self
            .scratch_pool
            .lock()
            .expect("engine scratch pool poisoned");
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_xml::parse;

    #[test]
    fn strategy_name_round_trip() {
        for s in Strategy::ALL.into_iter().chain([Strategy::Streaming]) {
            assert_eq!(Strategy::from_str_opt(s.as_str()), Some(s));
        }
        assert_eq!(Strategy::from_str_opt("quantum"), None);
    }

    #[test]
    fn streaming_strategy_delegates_arena_evaluation_to_mincontext() {
        // Strategy::Streaming is the evaluate_reader marker; on an already
        // materialized document it evaluates via MINCONTEXT (the streaming
        // suite's oracle), not some fifth arena walker.
        let doc = parse("<a><b/><b/></a>").unwrap();
        let v = Engine::new(Strategy::Streaming)
            .evaluate_str(&doc, "count(//b)")
            .unwrap();
        assert_eq!(v, Value::Number(2.0));
        assert!(!Strategy::ALL.contains(&Strategy::Streaming));
    }

    #[test]
    fn engine_reports_configuration() {
        let e = Engine::new(Strategy::Naive)
            .with_budget(100)
            .with_timeout(Duration::from_millis(250));
        assert_eq!(e.strategy(), Strategy::Naive);
        assert_eq!(e.budget(), Some(100));
        assert_eq!(
            e.budget_config(),
            Budget::fuel(100).with_timeout(Duration::from_millis(250))
        );
        assert_eq!(e.evaluator().strategy(), Strategy::Naive);
        assert_eq!(
            Engine::new(Strategy::OptMinContext).evaluator().strategy(),
            Strategy::OptMinContext
        );
        assert_eq!(Engine::new(Strategy::MinContext).cache_capacity(), 256);
        assert_eq!(
            Engine::new(Strategy::MinContext)
                .with_cache_capacity(7)
                .cache_capacity(),
            7
        );
    }

    #[test]
    fn threaded_engines_agree_with_sequential_evaluation() {
        // A document wide enough to clear forced-down parallel gates:
        // 600 <item> children (half carrying @id) under one root.
        let mut xml = String::from("<root>");
        for i in 0..600 {
            if i % 2 == 0 {
                xml.push_str(&format!("<item id=\"{i}\"><sub/></item>"));
            } else {
                xml.push_str("<item><sub/></item>");
            }
        }
        xml.push_str("</root>");
        let doc = parse(&xml).unwrap();

        let queries = [
            "/root/item",
            "//sub",
            "//item[@id]",
            "count(//item[sub])",
            "/root/item[position() mod 2 = 1]/sub",
        ];
        for strategy in [Strategy::MinContext, Strategy::OptMinContext] {
            let seq = Engine::new(strategy);
            let par = Engine::new(strategy)
                .with_threads(4)
                .with_par_threshold(8)
                .with_par_chunk_min(2);
            assert_eq!(par.threads(), 4);
            for q in queries {
                assert_eq!(
                    seq.evaluate_str(&doc, q).unwrap(),
                    par.evaluate_str(&doc, q).unwrap(),
                    "{strategy} {q}"
                );
            }
        }

        // threads(1) keeps the purely sequential engine: no pool at all.
        assert_eq!(
            Engine::new(Strategy::MinContext).with_threads(1).threads(),
            1
        );
        assert_eq!(
            Engine::new(Strategy::MinContext).with_threads(0).threads(),
            1
        );

        // EXPLAIN on a threaded engine attributes chunked steps (the
        // child::sub step sweeps from 600 context items; `//sub` would
        // take the singleton-root shortcut and stay sequential); the
        // sequential plan stays in the pre-parallel format.
        let par = Engine::new(Strategy::MinContext)
            .with_threads(4)
            .with_par_threshold(8)
            .with_par_chunk_min(2);
        let plan = par.explain(&doc, "/root/item/sub").unwrap().plan_text();
        assert!(
            plan.contains(" par="),
            "threaded plan attributes chunks:\n{plan}"
        );
        let seq_plan = Engine::new(Strategy::MinContext)
            .explain(&doc, "/root/item/sub")
            .unwrap()
            .plan_text();
        assert!(
            !seq_plan.contains(" par="),
            "sequential plan unchanged:\n{seq_plan}"
        );
    }

    #[test]
    fn compiled_query_cache_evicts_least_recently_used() {
        // Capacity 2: compiling a third query evicts the stale one, and
        // the still-hot compilation survives (same Arc, no recompile).
        let doc = parse("<a><b/><c/><d/></a>").unwrap();
        let qb = minctx_syntax::parse_xpath("/a/b").unwrap();
        let qc = minctx_syntax::parse_xpath("/a/c").unwrap();
        let qd = minctx_syntax::parse_xpath("/a/d").unwrap();
        let e = Engine::new(Strategy::MinContext).with_cache_capacity(2);
        let cb = e.compile(&doc, &qb);
        let _cc = e.compile(&doc, &qc);
        assert_eq!(e.cached_queries(), 2);
        // Touch qb so qc becomes the LRU entry, then overflow with qd.
        assert!(Arc::ptr_eq(&cb, &e.compile(&doc, &qb)));
        let cd = e.compile(&doc, &qd);
        assert_eq!(e.cached_queries(), 2);
        // qb survived (same Arc); qc was evicted and recompiles fresh.
        assert!(Arc::ptr_eq(&cb, &e.compile(&doc, &qb)));
        assert!(Arc::ptr_eq(&cd, &e.compile(&doc, &qd)));
        let cc2 = e.compile(&doc, &qc);
        assert_eq!(e.cached_queries(), 2);
        // And the recompiled qc is resident again.
        assert!(Arc::ptr_eq(&cc2, &e.compile(&doc, &qc)));
    }

    #[test]
    fn optimizer_is_on_by_default_and_toggleable() {
        // The default tracks MINCTX_NO_OPTIMIZER (the no-optimizer CI job
        // runs this very test with it set).
        let e = Engine::new(Strategy::MinContext);
        assert_eq!(e.optimizer(), optimizer_default());
        let e = e.with_optimizer(false);
        assert!(!e.optimizer());
        assert!(e.with_optimizer(true).optimizer());
    }

    #[test]
    fn optimizer_rewrites_compiled_queries() {
        // `//b` compiles to a fused single-step path with the optimizer on
        // and to the two-step expansion with it off — and both evaluate to
        // the same nodes.
        let doc = parse("<a><b/><c><b/></c></a>").unwrap();
        let q = minctx_syntax::parse_xpath("//b").unwrap();
        let on = Engine::new(Strategy::MinContext).with_optimizer(true);
        let off = Engine::new(Strategy::MinContext).with_optimizer(false);
        assert_eq!(on.compile(&doc, &q).query().step_count(), 1);
        assert_eq!(off.compile(&doc, &q).query().step_count(), 2);
        assert_eq!(
            on.evaluate(&doc, &q).unwrap(),
            off.evaluate(&doc, &q).unwrap()
        );
    }

    #[test]
    fn round_negative_zero_is_observable_from_every_strategy() {
        // The §4.4 regression: round(-0.2) must carry negative zero into
        // division and format as plain "0".
        let doc = parse("<a/>").unwrap();
        for s in Strategy::ALL {
            for optimize in [false, true] {
                let e = Engine::new(s).with_optimizer(optimize);
                assert_eq!(
                    e.evaluate_str(&doc, "1 div round(-0.2)").unwrap(),
                    Value::Number(f64::NEG_INFINITY),
                    "{s} optimize={optimize}"
                );
                assert_eq!(
                    e.evaluate_str(&doc, "string(round(-0.2))").unwrap(),
                    Value::String("0".into()),
                    "{s} optimize={optimize}"
                );
            }
        }
    }

    #[test]
    fn recorder_emits_lifecycle_spans() {
        use minctx_obs::{AttrValue, CollectSink};
        let doc = parse("<a><b/><b/></a>").unwrap();
        let sink = Arc::new(CollectSink::new());
        let e = Engine::new(Strategy::MinContext)
            .with_optimizer(true)
            .with_recorder(Recorder::to_sink(sink.clone()));
        assert!(e.recorder().enabled());
        assert_eq!(
            e.evaluate_str(&doc, "count(//b)").unwrap(),
            Value::Number(2.0)
        );
        let spans = sink.take();
        let phases: Vec<Phase> = spans.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Parse,
                Phase::Rewrite,
                Phase::Compile,
                Phase::Evaluate
            ]
        );
        let eval = spans.last().unwrap();
        assert_eq!(
            eval.attr("strategy"),
            Some(&AttrValue::Str("mincontext".to_string()))
        );
        assert_eq!(eval.attr("ok"), Some(&AttrValue::U64(1)));
        assert!(matches!(eval.attr("fuel"), Some(&AttrValue::U64(f)) if f > 0));
        // A cloned engine keeps tracing into the same sink; the default
        // engine traces nothing.
        e.clone().evaluate_str(&doc, "count(//b)").unwrap();
        assert_eq!(sink.take().len(), 4);
        Engine::new(Strategy::MinContext)
            .evaluate_str(&doc, "count(//b)")
            .unwrap();
        assert!(sink.take().is_empty());
    }

    #[test]
    fn evaluate_str_reports_parse_errors() {
        let doc = parse("<a/>").unwrap();
        let e = Engine::new(Strategy::MinContext);
        assert!(matches!(
            e.evaluate_str(&doc, "/a["),
            Err(EvalError::Parse(_))
        ));
    }

    #[test]
    fn evaluate_at_rejects_invalid_contexts() {
        let doc = parse("<a><b/></a>").unwrap();
        let q = minctx_syntax::parse_xpath("position()").unwrap();
        for s in Strategy::ALL {
            let e = Engine::new(s);
            for bad in [
                Context {
                    node: doc.root(),
                    position: doc.len() + 1,
                    size: doc.len() + 1,
                },
                Context {
                    node: doc.root(),
                    position: 0,
                    size: 1,
                },
                Context {
                    node: doc.root(),
                    position: 2,
                    size: 1,
                },
                Context {
                    node: minctx_xml::NodeId::from_index(doc.len()),
                    position: 1,
                    size: 1,
                },
            ] {
                assert!(
                    matches!(
                        e.evaluate_at(&doc, &q, bad),
                        Err(EvalError::InvalidContext { .. })
                    ),
                    "strategy {s} accepted {bad:?}"
                );
            }
            // A maximal valid context works.
            let ok = Context {
                node: doc.root(),
                position: doc.len(),
                size: doc.len(),
            };
            assert_eq!(
                e.evaluate_at(&doc, &q, ok).unwrap(),
                Value::Number(doc.len() as f64),
                "strategy {s}"
            );
        }
    }

    #[test]
    fn compiled_queries_are_cached_per_query_and_document() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let doc2 = parse("<a><b/></a>").unwrap();
        let q = minctx_syntax::parse_xpath("/a/b").unwrap();
        let e = Engine::new(Strategy::MinContext);
        let c1 = e.compile(&doc, &q);
        let c2 = e.compile(&doc, &q);
        // Same (query, document): the same Arc, not a recompilation.
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(e.cached_queries(), 1);
        // Different document: a separate entry.
        let c3 = e.compile(&doc2, &q);
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(e.cached_queries(), 2);
        // A clone of the document hits the original entry.
        let c4 = e.compile(&doc.clone(), &q);
        assert!(Arc::ptr_eq(&c1, &c4));
        assert_eq!(e.cached_queries(), 2);
    }

    #[test]
    fn repeated_evaluation_does_no_name_resolution() {
        // The acceptance check for the compiled-query cache: after the
        // first evaluation of a query, re-evaluating it performs zero
        // lookups against the document's name table.
        let doc = parse(r#"<a><b i="1">x</b><c><b i="2">y</b></c></a>"#).unwrap();
        let q = minctx_syntax::parse_xpath("//b[@i]/ancestor::c | /a/child::b").unwrap();
        for s in Strategy::ALL {
            let e = Engine::new(s);
            let first = e.evaluate(&doc, &q).unwrap();
            let resolved_at = doc.names().lookup_count();
            for _ in 0..3 {
                assert_eq!(e.evaluate(&doc, &q).unwrap(), first, "strategy {s}");
            }
            assert_eq!(
                doc.names().lookup_count(),
                resolved_at,
                "strategy {s} resolved names during cached evaluation"
            );
        }
    }

    #[test]
    fn compiled_query_rejects_foreign_documents() {
        let doc = parse("<a/>").unwrap();
        let other = parse("<a/>").unwrap();
        let q = minctx_syntax::parse_xpath("/a").unwrap();
        let e = Engine::new(Strategy::MinContext);
        let cq = e.compile(&doc, &q);
        assert!(e
            .evaluate_compiled(&doc, &cq, Context::document(&doc))
            .is_ok());
        assert!(matches!(
            e.evaluate_compiled(&other, &cq, Context::document(&other)),
            Err(EvalError::InvalidContext { .. })
        ));
    }

    #[test]
    fn evaluate_snapshot_queries_a_stored_corpus() {
        let doc = parse(r#"<a><b id="x">1</b><b>2</b></a>"#).unwrap();
        let path = std::env::temp_dir().join(format!(
            "minctx-engine-snapshot-{}.mctx",
            std::process::id()
        ));
        crate::write_snapshot(&doc, &path).unwrap();
        let q = minctx_syntax::parse_xpath("count(//b)").unwrap();
        for s in Strategy::ALL {
            let e = Engine::new(s);
            assert_eq!(
                e.evaluate_snapshot(&path, &q).unwrap(),
                Value::Number(2.0),
                "strategy {s}"
            );
            assert_eq!(
                e.evaluate_snapshot_str(&path, "string(id('x'))").unwrap(),
                Value::String("1".into()),
                "strategy {s}"
            );
        }
        // A missing snapshot surfaces as EvalError::Snapshot.
        let missing = std::env::temp_dir().join("minctx-engine-snapshot-missing.mctx");
        assert!(matches!(
            Engine::new(Strategy::MinContext).evaluate_snapshot(&missing, &q),
            Err(EvalError::Snapshot(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_at_respects_context() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let a = doc.document_element();
        let b = doc.first_child(a).unwrap();
        let q = minctx_syntax::parse_xpath("c").unwrap();
        for s in Strategy::ALL {
            let v = Engine::new(s)
                .evaluate_at(&doc, &q, Context::at(b))
                .unwrap();
            assert_eq!(v.as_node_set().unwrap().len(), 1, "strategy {s}");
            let v = Engine::new(s).evaluate(&doc, &q).unwrap();
            assert!(v.as_node_set().unwrap().is_empty(), "strategy {s}");
        }
    }
}

//! XPath 1.0 values and their conversion / comparison semantics.
//!
//! Every evaluation strategy produces the same [`Value`] type, and all of
//! them share the conversion functions here — so differential tests across
//! strategies exercise the *algorithms*, not divergent copies of the XPath
//! type system.

use crate::error::EvalError;
use minctx_syntax::{CmpOp, ValueType};
use minctx_xml::{Document, NodeSet};

/// An XPath 1.0 value: the result of evaluating any expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of nodes in document order.
    NodeSet(NodeSet),
    /// An IEEE 754 double.
    Number(f64),
    /// A string.
    String(String),
    /// A boolean.
    Boolean(bool),
}

impl Value {
    /// The runtime type tag (always equal to the static
    /// [`ValueType`] the lowering computed for the producing expression).
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::NodeSet(_) => ValueType::NodeSet,
            Value::Number(_) => ValueType::Number,
            Value::String(_) => ValueType::String,
            Value::Boolean(_) => ValueType::Boolean,
        }
    }

    /// Extracts the node-set, or a [`EvalError::Type`] for scalar values.
    pub fn into_node_set(self) -> Result<NodeSet, EvalError> {
        match self {
            Value::NodeSet(ns) => Ok(ns),
            other => Err(EvalError::Type {
                expected: "node-set",
                got: other.value_type().as_str(),
            }),
        }
    }

    /// Borrows the node-set, if this is one.
    pub fn as_node_set(&self) -> Option<&NodeSet> {
        match self {
            Value::NodeSet(ns) => Some(ns),
            _ => None,
        }
    }

    /// `boolean()` conversion (XPath 1.0 §4.3): numbers are true unless
    /// zero or NaN, strings unless empty, node-sets unless empty.
    pub fn boolean(&self) -> bool {
        match self {
            Value::NodeSet(ns) => !ns.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::String(s) => !s.is_empty(),
            Value::Boolean(b) => *b,
        }
    }

    /// `number()` conversion (§4.4).  Needs the document for node-set
    /// operands (number of the string value of the first node).
    pub fn number(&self, doc: &Document) -> f64 {
        match self {
            Value::NodeSet(_) => string_to_number(&self.string(doc)),
            scalar => scalar_number(scalar),
        }
    }

    /// `string()` conversion (§4.2).  A node-set converts to the string
    /// value of its first node in document order (empty set → "").
    pub fn string(&self, doc: &Document) -> String {
        match self {
            Value::NodeSet(ns) => ns.first().map(|n| doc.string_value(n)).unwrap_or_default(),
            scalar => scalar_string(scalar),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Boolean(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<NodeSet> for Value {
    fn from(ns: NodeSet) -> Value {
        Value::NodeSet(ns)
    }
}

/// XPath 1.0 string→number: optional whitespace, optional minus, decimal
/// digits with an optional fraction — anything else is NaN (§4.4; no `+`,
/// no exponent notation).
pub fn string_to_number(s: &str) -> f64 {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    if t.is_empty() {
        return f64::NAN;
    }
    let body = t.strip_prefix('-').unwrap_or(t);
    let valid = !body.is_empty()
        && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        && body.chars().filter(|&c| c == '.').count() <= 1
        && body != ".";
    if !valid {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// XPath 1.0 number→string (§4.2): `NaN`, `Infinity`, integers without a
/// decimal point, otherwise the shortest round-tripping decimal.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == 0.0 {
        "0".to_string() // covers -0.0
    } else {
        format!("{n}")
    }
}

/// Evaluates `a op b` with the overloaded comparison semantics of XPath 1.0
/// §3.4 — the dispatch table the paper compresses into Figure 1.
///
/// Node-set comparisons against numbers and strings are existential:
/// `A op B` holds iff some member satisfies the scalar comparison (by
/// *string* value against strings under equality, by *number* otherwise).
/// A node-set against a **boolean** is *not* existential: §3.4 converts
/// the whole set with `boolean()` first, so an empty set equals `false()`.
pub fn compare(doc: &Document, op: CmpOp, a: &Value, b: &Value) -> bool {
    use Value::NodeSet;
    match (a, b) {
        // §3.4: a node-set against a boolean converts the *set* with
        // boolean() — never its members — and the relational variants then
        // compare the two booleans as numbers.
        (NodeSet(_), Value::Boolean(_)) | (Value::Boolean(_), NodeSet(_)) => {
            if op.is_equality() {
                cmp_bool(op, a.boolean(), b.boolean())
            } else {
                cmp_num(op, a.boolean() as u8 as f64, b.boolean() as u8 as f64)
            }
        }
        (NodeSet(x), NodeSet(y)) => {
            if op.is_equality() {
                // ∃ x∈X, y∈Y : strval(x) op strval(y).
                let ys: Vec<String> = y.iter().map(|n| doc.string_value(n)).collect();
                x.iter().any(|m| {
                    let sx = doc.string_value(m);
                    ys.iter().any(|sy| cmp_str(op, &sx, sy))
                })
            } else {
                let ys: Vec<f64> = y
                    .iter()
                    .map(|n| string_to_number(&doc.string_value(n)))
                    .collect();
                x.iter().any(|m| {
                    let nx = string_to_number(&doc.string_value(m));
                    ys.iter().any(|&ny| cmp_num(op, nx, ny))
                })
            }
        }
        (NodeSet(x), _) => x.iter().any(|m| cmp_node_scalar(doc, op, m, b)),
        (_, NodeSet(y)) => {
            let op = op.swapped();
            y.iter().any(|m| cmp_node_scalar(doc, op, m, a))
        }
        _ => compare_scalars(op, a, b),
    }
}

/// `strval(node) op scalar` — the single-node comparison the existential
/// node-set rules quantify over.  Exposed so OPTMINCONTEXT can build its
/// backward-propagation witness sets from exactly the same dispatch.
///
/// # Panics
///
/// Panics if `v` is a node-set or a boolean: node-sets are handled by the
/// existential rules of [`compare`], and boolean comparisons convert the
/// whole node-set, never its members.
pub fn node_scalar_compare(doc: &Document, op: CmpOp, node: minctx_xml::NodeId, v: &Value) -> bool {
    cmp_node_scalar(doc, op, node, v)
}

/// `strval(node) op scalar` with the per-type dispatch of §3.4.
fn cmp_node_scalar(doc: &Document, op: CmpOp, node: minctx_xml::NodeId, v: &Value) -> bool {
    match v {
        Value::Number(n) => cmp_num(op, string_to_number(&doc.string_value(node)), *n),
        Value::String(s) if op.is_equality() => cmp_str(op, &doc.string_value(node), s),
        Value::String(s) => cmp_num(
            op,
            string_to_number(&doc.string_value(node)),
            string_to_number(s),
        ),
        Value::Boolean(_) => {
            unreachable!("boolean comparisons convert the node-set, not its members")
        }
        Value::NodeSet(_) => unreachable!("node-set handled by caller"),
    }
}

/// [`compare`] restricted to *scalar* operands.  No document is needed —
/// scalar conversions never touch it — which is what lets the rewrite
/// pipeline fold constant comparisons at compile time through exactly the
/// §3.4 dispatch the evaluators use.
///
/// # Panics
///
/// Panics if either operand is a node-set (those take the existential
/// rules of [`compare`]).
pub fn compare_scalars(op: CmpOp, a: &Value, b: &Value) -> bool {
    if op.is_equality() {
        // §3.4 priority: boolean > number > string.
        match (a, b) {
            (Value::Boolean(_), _) | (_, Value::Boolean(_)) => {
                cmp_bool(op, a.boolean(), b.boolean())
            }
            (Value::Number(_), _) | (_, Value::Number(_)) => {
                cmp_num(op, scalar_number(a), scalar_number(b))
            }
            _ => cmp_str(op, &scalar_string(a), &scalar_string(b)),
        }
    } else {
        // Relational scalars always go through number() — number(true)=1.
        cmp_num(op, scalar_number(a), scalar_number(b))
    }
}

/// `number()` of a scalar (the document-free subset of [`Value::number`]).
fn scalar_number(v: &Value) -> f64 {
    match v {
        Value::Number(n) => *n,
        Value::String(s) => string_to_number(s),
        Value::Boolean(b) => *b as u8 as f64,
        Value::NodeSet(_) => unreachable!("scalar conversion of a node-set"),
    }
}

/// `string()` of a scalar (the document-free subset of [`Value::string`]).
fn scalar_string(v: &Value) -> String {
    match v {
        Value::Number(n) => number_to_string(*n),
        Value::String(s) => s.clone(),
        Value::Boolean(b) => if *b { "true" } else { "false" }.to_string(),
        Value::NodeSet(_) => unreachable!("scalar conversion of a node-set"),
    }
}

fn cmp_num(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_str(op: CmpOp, a: &str, b: &str) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        _ => unreachable!("relational string comparison converts to numbers"),
    }
}

fn cmp_bool(op: CmpOp, a: bool, b: bool) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        // Relational comparison of booleans goes through numbers.
        _ => cmp_num(op, a as u8 as f64, b as u8 as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_xml::parse;

    #[test]
    fn string_to_number_strictness() {
        assert_eq!(string_to_number("42"), 42.0);
        assert_eq!(string_to_number("  -3.5 "), -3.5);
        assert_eq!(string_to_number(".5"), 0.5);
        assert_eq!(string_to_number("5."), 5.0);
        assert!(string_to_number("1e3").is_nan()); // no exponents in XPath
        assert!(string_to_number("+1").is_nan()); // no leading plus
        assert!(string_to_number("").is_nan());
        assert!(string_to_number("abc").is_nan());
        assert!(string_to_number("1.2.3").is_nan());
        assert!(string_to_number(".").is_nan());
        assert!(string_to_number("-").is_nan());
    }

    #[test]
    fn number_to_string_forms() {
        assert_eq!(number_to_string(2.0), "2");
        assert_eq!(number_to_string(-0.0), "0");
        assert_eq!(number_to_string(0.5), "0.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn boolean_conversion() {
        assert!(Value::Number(1.0).boolean());
        assert!(!Value::Number(0.0).boolean());
        assert!(!Value::Number(f64::NAN).boolean());
        assert!(Value::String("x".into()).boolean());
        assert!(!Value::String(String::new()).boolean());
        assert!(!Value::NodeSet(NodeSet::new()).boolean());
    }

    #[test]
    fn nodeset_string_is_first_node() {
        let doc = parse("<a><b>one</b><c>two</c></a>").unwrap();
        let a = doc.document_element();
        let ns: NodeSet = doc.children(a).collect();
        let v = Value::NodeSet(ns);
        assert_eq!(v.string(&doc), "one");
        assert_eq!(Value::NodeSet(NodeSet::new()).string(&doc), "");
    }

    #[test]
    fn existential_comparisons() {
        let doc = parse("<a><b>1</b><b>5</b></a>").unwrap();
        let a = doc.document_element();
        let bs: NodeSet = doc.children(a).collect();
        let v = Value::NodeSet(bs);
        // ∃b: b = 5, ∃b: b < 2, but not ∀-style: both = and != hold.
        assert!(compare(&doc, CmpOp::Eq, &v, &Value::Number(5.0)));
        assert!(compare(&doc, CmpOp::Neq, &v, &Value::Number(5.0)));
        assert!(compare(&doc, CmpOp::Lt, &v, &Value::Number(2.0)));
        assert!(!compare(&doc, CmpOp::Gt, &v, &Value::Number(5.0)));
        // Swapped operand order.
        assert!(compare(&doc, CmpOp::Gt, &Value::Number(2.0), &v));
        // String equality against a node-set is by string value.
        assert!(compare(&doc, CmpOp::Eq, &v, &Value::String("1".into())));
        assert!(!compare(&doc, CmpOp::Eq, &v, &Value::String("7".into())));
    }

    #[test]
    fn scalar_comparison_priorities() {
        let doc = parse("<a/>").unwrap();
        // boolean beats number for equality.
        assert!(compare(
            &doc,
            CmpOp::Eq,
            &Value::Boolean(true),
            &Value::Number(7.0)
        ));
        // number beats string.
        assert!(compare(
            &doc,
            CmpOp::Eq,
            &Value::Number(7.0),
            &Value::String("7".into())
        ));
        // relational always numeric.
        assert!(compare(
            &doc,
            CmpOp::Lt,
            &Value::String("3".into()),
            &Value::String("21".into())
        ));
    }

    #[test]
    fn nodeset_boolean_comparisons_convert_the_set() {
        // §3.4: `A op bool` converts A with boolean(), it is NOT the
        // existential per-member rule — an empty set equals false().
        let doc = parse("<a><b>0</b></a>").unwrap();
        let empty = Value::NodeSet(NodeSet::new());
        assert!(compare(&doc, CmpOp::Eq, &empty, &Value::Boolean(false)));
        assert!(!compare(&doc, CmpOp::Eq, &empty, &Value::Boolean(true)));
        assert!(compare(&doc, CmpOp::Neq, &empty, &Value::Boolean(true)));
        // Relational: boolean(set) compared as a number; empty → 0 < 1.
        assert!(compare(&doc, CmpOp::Lt, &empty, &Value::Boolean(true)));
        let bs: NodeSet = doc.children(doc.document_element()).collect();
        let nonempty = Value::NodeSet(bs);
        // boolean(nonempty) = true even though number(strval) = 0.
        assert!(compare(&doc, CmpOp::Eq, &nonempty, &Value::Boolean(true)));
        assert!(!compare(&doc, CmpOp::Lt, &nonempty, &Value::Boolean(true)));
        assert!(compare(&doc, CmpOp::Ge, &Value::Boolean(true), &nonempty));
    }

    #[test]
    fn scalar_boolean_relational_goes_through_numbers() {
        // `2 > true()` is number(2) > number(true) = 2 > 1, NOT a
        // boolean-vs-boolean comparison.
        let doc = parse("<a/>").unwrap();
        assert!(compare(
            &doc,
            CmpOp::Gt,
            &Value::Number(2.0),
            &Value::Boolean(true)
        ));
        assert!(!compare(
            &doc,
            CmpOp::Lt,
            &Value::Number(0.5),
            &Value::Boolean(false)
        ));
        assert!(compare(
            &doc,
            CmpOp::Gt,
            &Value::Number(0.5),
            &Value::Boolean(false)
        ));
    }

    #[test]
    fn into_node_set_type_error() {
        assert!(Value::NodeSet(NodeSet::new()).into_node_set().is_ok());
        let err = Value::Number(1.0).into_node_set().unwrap_err();
        assert_eq!(
            err,
            EvalError::Type {
                expected: "node-set",
                got: "number"
            }
        );
    }
}

//! The `minctx` evaluation layer: four interchangeable XPath 1.0
//! evaluators behind one [`Engine`].
//!
//! This crate implements the algorithmic content of *"XPath Query
//! Evaluation: Improving Time and Space Efficiency"* (Gottlob, Koch,
//! Pichler — ICDE 2003):
//!
//! | [`Strategy`]                    | Algorithm                               | Complexity                   |
//! |---------------------------------|-----------------------------------------|------------------------------|
//! | [`Strategy::Naive`]             | context-at-a-time recursion (Section 1) | exponential in query size    |
//! | [`Strategy::ContextValueTable`] | bottom-up full tables (VLDB 2002)       | polynomial, cubic space      |
//! | [`Strategy::MinContext`]        | relevant-context evaluation (Section 3) | polynomial, minimal contexts |
//! | [`Strategy::OptMinContext`]     | + backward axis propagation (Section 4) | polynomial, linear predicates|
//!
//! All strategies share one [`Value`] domain, one conversion/comparison
//! library ([`value`], [`funcs`]), and one lowered query representation
//! ([`minctx_syntax::Query`]) — so they are differentially testable against
//! each other, and new backends (streaming, index-backed, parallel) can be
//! added by implementing [`Evaluator`] without touching the existing ones.
//!
//! ```
//! use minctx_core::{Engine, Strategy};
//! use minctx_xml::parse;
//!
//! let doc = parse("<a><b>1</b><b>2</b><c>3</c></a>").unwrap();
//! for strategy in Strategy::ALL {
//!     let v = Engine::new(strategy)
//!         .evaluate_str(&doc, "/a/*[position() = last()]")
//!         .unwrap();
//!     let ns = v.into_node_set().unwrap();
//!     assert_eq!(ns.len(), 1); // the <c>
//! }
//! ```

#![forbid(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod compile;
pub mod engine;
pub mod error;
pub mod explain;
pub mod funcs;
pub mod mincontext;
pub mod naive;
pub mod rewrite;
pub mod tables;
pub mod value;

pub use budget::{Budget, BudgetMeter};
pub use cache::LruCache;
pub use compile::CompiledQuery;
pub use engine::{Context, Engine, Evaluator, Strategy};
pub use error::{EvalError, Exhausted};
pub use explain::{QueryProfile, StepProfile};
pub use mincontext::{MinContext, ParSettings};
// The kernel-route label `Engine::explain` reports per step, re-exported
// so profile consumers match on it without a direct xml dependency.
pub use minctx_xml::AxisRoute;
// The parallel-evaluation knobs behind `Engine::with_threads`,
// re-exported so engine users tune the split threshold without a direct
// xml dependency.
pub use minctx_xml::{ParConfig, WorkerPool};
// The persistent-index backend, re-exported so engine users reach
// `open_snapshot`/`write_snapshot` (the serving pair behind
// `Engine::evaluate_snapshot`) without a separate dependency.
pub use minctx_index::{
    open_snapshot, open_snapshot_or_quarantine, quarantine_snapshot, snapshot_stamp, stale_temps,
    write_snapshot, SnapshotError, SnapshotInfo,
};
pub use naive::Naive;
pub use rewrite::{rewrite, rewrite_traced, RewriteTrace, Rule};
pub use tables::ContextValueTables;
pub use value::Value;

// Concurrent-serving audit (DESIGN.md "Concurrent service"): everything
// a `minctx-serve` worker pool shares across threads — the engine (its
// caches behind mutexes, scratch pooled), compiled queries, values, and
// errors — must be thread-safe, checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<CompiledQuery>();
    assert_send_sync::<Value>();
    assert_send_sync::<EvalError>();
    assert_send_sync::<Budget>();
    assert_send_sync::<BudgetMeter>();
    assert_send_sync::<QueryProfile>();
};

//! Fuel/deadline metering: [`Budget`] and the per-evaluation
//! [`BudgetMeter`] every strategy charges its work against.
//!
//! This generalizes what used to be a [`Naive`](crate::naive::Naive)-only
//! step counter into a mechanism honored by **all** evaluators (the four
//! arena strategies and the streaming engine): a budget is a *fuel* cap
//! in abstract work units, a wall-clock *deadline*, or both, and an
//! evaluation that runs out surfaces [`EvalError::BudgetExhausted`]
//! instead of occupying a worker indefinitely.  That is the serving
//! story's isolation primitive — one pathological query cannot starve
//! the box (see `minctx-serve` and DESIGN.md "Concurrent service").
//!
//! Work units are deliberately abstract and strategy-specific: each
//! evaluator charges at its natural accounting points (per expression
//! visit and candidate node in the naive recursion, per memo miss / axis
//! sweep / candidate in MINCONTEXT, per table cell in the context-value
//! tables, per event in the streaming automaton).  The invariant is not
//! comparability across strategies but *proportionality within one*:
//! work grows with charges, so any runaway evaluation hits the cap.
//!
//! Metering is built to cost nothing when unlimited: a charge is one
//! `checked_sub` on a `u64` (remaining fuel starts at `u64::MAX`) plus a
//! skipped branch when no deadline is set.  `Instant::now()` is polled
//! only every [`DEADLINE_POLL_UNITS`] charged units, so deadline
//! enforcement adds one syscall-ish clock read per ~50k node touches.

use crate::error::{EvalError, Exhausted};
use std::time::{Duration, Instant};

/// Charged units between wall-clock polls: small enough that a deadline
/// overshoots by well under a millisecond of evaluator work, large
/// enough that the clock read never shows up in profiles.
const DEADLINE_POLL_UNITS: u64 = 50_000;

/// Limits on one evaluation: an optional *fuel* cap (abstract work
/// units) and an optional wall-clock *timeout*.  `Default` is unlimited.
///
/// Configure an [`Engine`](crate::Engine) with
/// [`with_budget`](crate::Engine::with_budget) /
/// [`with_timeout`](crate::Engine::with_timeout), or build a `Budget`
/// directly for per-request metering (the `minctx-serve` request loop
/// anchors deadlines at submit time via [`Budget::meter_at`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Abstract work-unit cap; `None` means unmetered fuel.
    pub fuel: Option<u64>,
    /// Wall-clock allowance; `None` means no deadline.
    pub timeout: Option<Duration>,
}

impl Budget {
    /// No limits at all (the default).
    pub const UNLIMITED: Budget = Budget {
        fuel: None,
        timeout: None,
    };

    /// A fuel-only budget.
    pub fn fuel(fuel: u64) -> Budget {
        Budget {
            fuel: Some(fuel),
            timeout: None,
        }
    }

    /// A deadline-only budget.
    pub fn timeout(timeout: Duration) -> Budget {
        Budget {
            fuel: None,
            timeout: Some(timeout),
        }
    }

    /// This budget with the fuel cap replaced.
    pub fn with_fuel(mut self, fuel: u64) -> Budget {
        self.fuel = Some(fuel);
        self
    }

    /// This budget with the timeout replaced.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.timeout = Some(timeout);
        self
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.timeout.is_none()
    }

    /// Starts metering now: the deadline (if any) is `now + timeout`.
    pub fn meter(&self) -> BudgetMeter {
        self.meter_at(Instant::now())
    }

    /// Starts metering with the timeout anchored at `start` — a request
    /// loop passes its submit instant so queue wait counts against the
    /// deadline too.
    pub fn meter_at(&self, start: Instant) -> BudgetMeter {
        BudgetMeter {
            remaining: self.fuel.unwrap_or(u64::MAX),
            fuel: self.fuel,
            deadline: self.timeout.map(|t| start + t),
            until_poll: 1,
        }
    }
}

/// The mutable metering state for one evaluation, created from a
/// [`Budget`] and threaded through
/// [`Evaluator::evaluate`](crate::Evaluator::evaluate).
#[derive(Debug)]
pub struct BudgetMeter {
    /// Fuel left; `u64::MAX` when unmetered (practically inexhaustible:
    /// charging it down would take centuries of evaluator work).
    remaining: u64,
    /// The configured cap, for error reporting.
    fuel: Option<u64>,
    deadline: Option<Instant>,
    /// Charged units until the next wall-clock poll.  Starts at 1 so a
    /// deadline already in the past fails on the first charge.
    until_poll: u64,
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::unlimited()
    }
}

impl BudgetMeter {
    /// A meter that never trips (what unmetered evaluations run under).
    pub fn unlimited() -> BudgetMeter {
        Budget::UNLIMITED.meter_at(Instant::now())
    }

    /// Charges `units` of work; errors once fuel is spent or the
    /// deadline has passed.  Hot-path cost when unlimited: one
    /// `checked_sub` and one untaken branch.
    #[inline]
    pub fn charge(&mut self, units: u64) -> Result<(), EvalError> {
        match self.remaining.checked_sub(units) {
            Some(rest) => self.remaining = rest,
            None => {
                self.remaining = 0;
                return Err(EvalError::BudgetExhausted {
                    cause: Exhausted::Fuel {
                        fuel: self.fuel.unwrap_or(u64::MAX),
                    },
                });
            }
        }
        if self.deadline.is_some() {
            self.until_poll = self.until_poll.saturating_sub(units.max(1));
            if self.until_poll == 0 {
                return self.poll_deadline();
            }
        }
        Ok(())
    }

    /// Units charged so far — the profile/EXPLAIN surface reads this
    /// after an evaluation to report fuel consumed.  When the meter is
    /// unmetered this still counts exactly (spent = `u64::MAX` −
    /// remaining); once a fuel cap trips, it reports the full cap.
    pub fn spent(&self) -> u64 {
        self.fuel.unwrap_or(u64::MAX) - self.remaining
    }

    /// Splits this meter's remaining fuel into `parts` sub-allowances for
    /// parallel fan-out workers: each child receives `remaining / parts`
    /// fuel (the parent keeps the division remainder), shares the
    /// parent's deadline, and polls the wall clock on its *first* charge
    /// (`until_poll = 1`) so an expired deadline trips per chunk, not per
    /// 50k units.  Unspent child fuel is returned via [`absorb`], so
    /// split + absorb round-trips: the parent ends up down by exactly
    /// what the children charged.
    ///
    /// An unmetered, deadline-free parent hands out unlimited children —
    /// the zero-cost path stays zero-cost.  Note the semantics caveat
    /// (documented in DESIGN.md): a fuel cap tight enough to trip can
    /// trip *earlier* under fan-out than sequentially, because workers
    /// exhaust their sub-allowance instead of the shared pot.  Outputs of
    /// successful evaluations are unaffected.
    ///
    /// [`absorb`]: BudgetMeter::absorb
    pub fn split(&mut self, parts: usize) -> Vec<BudgetMeter> {
        let parts = parts.max(1);
        if self.fuel.is_none() {
            return (0..parts)
                .map(|_| BudgetMeter {
                    remaining: u64::MAX,
                    fuel: None,
                    deadline: self.deadline,
                    until_poll: 1,
                })
                .collect();
        }
        let share = self.remaining / parts as u64;
        self.remaining -= share * parts as u64;
        (0..parts)
            .map(|_| BudgetMeter {
                remaining: share,
                fuel: self.fuel,
                deadline: self.deadline,
                until_poll: 1,
            })
            .collect()
    }

    /// Returns a [`split`](BudgetMeter::split) child's unspent fuel to
    /// the parent.  No-op for unmetered parents (children were unlimited
    /// clones, not sub-allowances).
    pub fn absorb(&mut self, child: BudgetMeter) {
        if self.fuel.is_some() {
            self.remaining += child.remaining;
        }
    }

    /// Cold path: reads the clock and resets the poll countdown.
    #[cold]
    fn poll_deadline(&mut self) -> Result<(), EvalError> {
        self.until_poll = DEADLINE_POLL_UNITS;
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(EvalError::BudgetExhausted {
                cause: Exhausted::Deadline,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            m.charge(1_000_000).unwrap();
        }
    }

    #[test]
    fn fuel_is_exact() {
        // A cap of n allows exactly n units.
        let mut m = Budget::fuel(10).meter();
        m.charge(4).unwrap();
        m.charge(6).unwrap();
        let err = m.charge(1).unwrap_err();
        assert_eq!(
            err,
            EvalError::BudgetExhausted {
                cause: Exhausted::Fuel { fuel: 10 }
            }
        );
        // Once tripped, it stays tripped.
        assert!(m.charge(0).is_err() || m.charge(1).is_err());
    }

    #[test]
    fn overcharge_trips_immediately() {
        let mut m = Budget::fuel(5).meter();
        assert!(m.charge(6).is_err());
    }

    #[test]
    fn expired_deadline_trips_on_first_charge() {
        let mut m = Budget::timeout(Duration::ZERO).meter();
        assert_eq!(
            m.charge(1).unwrap_err(),
            EvalError::BudgetExhausted {
                cause: Exhausted::Deadline
            }
        );
    }

    #[test]
    fn meter_at_counts_elapsed_time_before_the_meter_existed() {
        let start = Instant::now() - Duration::from_secs(1);
        let mut m = Budget::timeout(Duration::from_millis(10)).meter_at(start);
        assert!(m.charge(1).is_err());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let mut m = Budget::timeout(Duration::from_secs(600)).meter();
        for _ in 0..1000 {
            m.charge(100_000).unwrap();
        }
    }

    #[test]
    fn split_and_absorb_round_trip_fuel() {
        let mut m = Budget::fuel(103).meter();
        m.charge(3).unwrap();
        let children = m.split(4);
        // 100 / 4 = 25 each; parent keeps the remainder (0 here).
        assert_eq!(m.spent(), 103);
        let mut total_child_spend = 0;
        for (i, mut c) in children.into_iter().enumerate() {
            c.charge(i as u64).unwrap();
            total_child_spend += i as u64;
            m.absorb(c);
        }
        // Parent is down by exactly what was charged anywhere.
        assert_eq!(m.spent(), 3 + total_child_spend);
    }

    #[test]
    fn split_keeps_the_division_remainder_in_the_parent() {
        let mut m = Budget::fuel(10).meter();
        let children = m.split(3);
        assert_eq!(children.len(), 3);
        // 3 × 3 handed out, 1 kept: parent can still charge exactly 1.
        for c in children {
            m.absorb(c);
        }
        assert_eq!(m.spent(), 0);
        m.charge(10).unwrap();
        assert!(m.charge(1).is_err());
    }

    #[test]
    fn split_children_trip_on_their_own_share() {
        let mut m = Budget::fuel(8).meter();
        let mut children = m.split(2);
        assert!(children[0].charge(4).is_ok());
        assert!(children[0].charge(1).is_err());
        assert!(children[1].charge(4).is_ok());
    }

    #[test]
    fn unmetered_split_children_are_unlimited() {
        let mut m = BudgetMeter::unlimited();
        let mut children = m.split(3);
        for c in &mut children {
            c.charge(1_000_000_000).unwrap();
        }
        for c in children {
            m.absorb(c);
        }
        m.charge(1).unwrap();
    }

    #[test]
    fn split_children_inherit_an_expired_deadline() {
        let start = Instant::now() - Duration::from_secs(1);
        let mut m = Budget::timeout(Duration::from_millis(10)).meter_at(start);
        let mut children = m.split(2);
        // until_poll = 1: the first charge in each chunk polls the clock.
        assert!(children[0].charge(1).is_err());
        assert!(children[1].charge(1).is_err());
    }

    #[test]
    fn budget_constructors_compose() {
        let b = Budget::fuel(7).with_timeout(Duration::from_millis(3));
        assert_eq!(b.fuel, Some(7));
        assert_eq!(b.timeout, Some(Duration::from_millis(3)));
        assert!(!b.is_unlimited());
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }
}

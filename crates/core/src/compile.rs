//! Per-document query compilation: [`CompiledQuery`].
//!
//! A [`Query`](minctx_syntax::Query) is document-independent; its node
//! tests are strings.  Every axis call used to re-resolve them against the
//! document's name table — per step, per context node, per evaluation.  A
//! `CompiledQuery` binds a query to one document, resolving every
//! [`NodeTest`](minctx_xml::NodeTest) to a [`ResolvedTest`] (an integer
//! comparison) exactly once.  The [`Engine`](crate::Engine) caches
//! compiled queries per `(query stamp, document stamp)`, so the production
//! serving pattern — one document, a fixed query set, many evaluations —
//! performs **zero** name resolution after the first call (verified by a
//! test against [`NameTable::lookup_count`](minctx_xml::NameTable)).

use minctx_syntax::{ExprId, Node, Query};
use minctx_xml::{Document, ResolvedTest};

/// A [`Query`] bound to a specific [`Document`]: every node test of every
/// location path resolved to a [`ResolvedTest`].
///
/// Obtain one from [`Engine::compile`](crate::Engine::compile) (cached) or
/// [`CompiledQuery::new`] (direct).  A compiled query may be used with any
/// document whose [`stamp`](Document::stamp) matches — i.e. the document
/// it was compiled against or a clone of it.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    query: Query,
    /// Per arena node: the resolved tests of that node's steps (empty for
    /// non-path nodes), in step order.
    tests: Vec<Box<[ResolvedTest]>>,
    query_stamp: u64,
    doc_stamp: u64,
}

impl CompiledQuery {
    /// Resolves every node test of `query` against `doc`.
    pub fn new(doc: &Document, query: &Query) -> CompiledQuery {
        let tests = query
            .iter()
            .map(|(_, node)| match node {
                Node::Path(_, steps) => steps
                    .iter()
                    .map(|s| s.test.resolve(doc))
                    .collect::<Box<[ResolvedTest]>>(),
                _ => Box::default(),
            })
            .collect();
        CompiledQuery {
            query: query.clone(),
            tests,
            query_stamp: query.stamp(),
            doc_stamp: doc.stamp(),
        }
    }

    /// The underlying lowered query.
    #[inline]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The resolved tests of the path node `id`, in step order (empty for
    /// non-path nodes).
    #[inline]
    pub fn step_tests(&self, id: ExprId) -> &[ResolvedTest] {
        &self.tests[id.index()]
    }

    /// The resolved test of step `step` of path node `id`.
    #[inline]
    pub fn step_test(&self, id: ExprId, step: usize) -> ResolvedTest {
        self.tests[id.index()][step]
    }

    /// The stamp of the query this was compiled from.
    #[inline]
    pub fn query_stamp(&self) -> u64 {
        self.query_stamp
    }

    /// The stamp of the document this was compiled against.
    #[inline]
    pub fn doc_stamp(&self) -> u64 {
        self.doc_stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;
    use minctx_xml::parse;

    #[test]
    fn resolves_every_path_step() {
        let doc = parse("<a><b/><c/></a>").unwrap();
        let q = parse_xpath("/a/b[c]").unwrap();
        let cq = CompiledQuery::new(&doc, &q);
        let mut path_nodes = 0;
        for (id, node) in q.iter() {
            match node {
                Node::Path(_, steps) => {
                    assert_eq!(cq.step_tests(id).len(), steps.len());
                    path_nodes += 1;
                }
                _ => assert!(cq.step_tests(id).is_empty()),
            }
        }
        assert!(path_nodes >= 2); // outer path + predicate path
        assert_eq!(cq.doc_stamp(), doc.stamp());
        assert_eq!(cq.query_stamp(), q.stamp());
    }

    #[test]
    fn unknown_names_resolve_to_never_matches() {
        let doc = parse("<a/>").unwrap();
        let q = parse_xpath("/zzz").unwrap();
        let cq = CompiledQuery::new(&doc, &q);
        let root = q.root();
        assert_eq!(cq.step_test(root, 0), ResolvedTest::NeverMatches);
    }
}

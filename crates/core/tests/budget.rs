//! Budget semantics across every strategy: exhaustion is an error, never
//! a panic or a wrong answer, and unmetered runs are unaffected.
//!
//! The fuel/deadline budget (PR 6) generalizes what used to be a
//! Naive-only step counter: all four arena strategies charge work
//! against a [`BudgetMeter`], so a serving loop can bound any
//! evaluation.  (The streaming engine's per-event metering is covered in
//! `crates/stream/tests/budget_stream.rs`.)

use minctx_core::{Engine, EvalError, Exhausted, Strategy, Value};
use minctx_xml::parse;
use std::time::Duration;

/// `//b` followed by `i` copies of `/parent::a/child::b` — the Section-1
/// family; exponential for Naive, merely step-linear for the rest.
fn family(i: usize) -> String {
    let mut q = String::from("//b");
    for _ in 0..i {
        q.push_str("/parent::a/child::b");
    }
    q
}

/// A document big enough that every strategy must spend hundreds of
/// units on the family query.
fn doc_xml() -> String {
    let mut s = String::from("<a>");
    for _ in 0..200 {
        s.push_str("<b>1</b>");
    }
    s.push_str("</a>");
    s
}

#[test]
fn every_strategy_exhausts_a_tiny_fuel_budget() {
    let doc = parse(&doc_xml()).unwrap();
    for s in Strategy::ALL {
        // Optimizer pinned off: the rewrite pipeline fuses the
        // parent/child round trips away, and a collapsed `//b` is cheap
        // enough for MINCONTEXT to finish inside even this tiny budget.
        let err = Engine::new(s)
            .with_optimizer(false)
            .with_budget(50)
            .evaluate_str(&doc, &family(10))
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::BudgetExhausted {
                cause: Exhausted::Fuel { fuel: 50 }
            },
            "strategy {s}"
        );
    }
}

#[test]
fn every_strategy_honors_an_expired_deadline() {
    let doc = parse(&doc_xml()).unwrap();
    for s in Strategy::ALL {
        let err = Engine::new(s)
            .with_timeout(Duration::ZERO)
            .evaluate_str(&doc, &family(10))
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::BudgetExhausted {
                cause: Exhausted::Deadline
            },
            "strategy {s}"
        );
    }
}

#[test]
fn sufficient_fuel_changes_nothing() {
    // With enough fuel the metered answer is bit-identical to the
    // unmetered one, for every strategy and an assortment of queries.
    let doc = parse(&doc_xml()).unwrap();
    for s in Strategy::ALL {
        for q in [
            "count(//b)",
            "/a/b[position() = 2]",
            "boolean(//b)",
            "sum(//b) + count(/a/*)",
        ] {
            let unmetered = Engine::new(s).evaluate_str(&doc, q).unwrap();
            let metered = Engine::new(s)
                .with_budget(100_000_000)
                .with_timeout(Duration::from_secs(600))
                .evaluate_str(&doc, q)
                .unwrap();
            assert_eq!(unmetered, metered, "strategy {s} query {q}");
        }
    }
}

#[test]
fn optmincontext_backward_pass_is_metered() {
    // The backward-propagation path does O(|D|) preimage sweeps; a fuel
    // budget smaller than the document must trip inside it rather than
    // letting the pass run for free.
    let doc = parse(&doc_xml()).unwrap();
    let e = Engine::new(Strategy::OptMinContext).with_budget(20);
    let err = e.evaluate_str(&doc, "/a/b[. = 'x']").unwrap_err();
    assert!(
        matches!(err, EvalError::BudgetExhausted { .. }),
        "got {err:?}"
    );
}

#[test]
fn exhaustion_is_not_sticky_across_evaluations() {
    // Each evaluation gets a fresh meter: after one exhausted run the
    // next (cheap) query on the same engine succeeds.
    let doc = parse(&doc_xml()).unwrap();
    for s in Strategy::ALL {
        let e = Engine::new(s).with_budget(2_000);
        let _ = e.evaluate_str(&doc, &family(10));
        assert_eq!(
            e.evaluate_str(&doc, "count(/a)").unwrap(),
            Value::Number(1.0),
            "strategy {s}"
        );
    }
}

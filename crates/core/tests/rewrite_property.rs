//! Randomized rewrite-soundness property tests.
//!
//! A seeded generator (xorshift, like `crates/xml/tests/axis_property.rs`)
//! emits step chains — with and without positional predicates, with
//! explicit `descendant-or-self::node()` steps to tempt the fuser, reverse
//! axes, `parent::node()` suffixes, constant subexpressions, and duplicated
//! union branches — and every query is evaluated on random documents under
//! all four strategies with the rewrite pipeline off and on.  All answers
//! must coincide: the raw naive evaluator is the semantics oracle, and any
//! unsound pass (fusing past a positional predicate, dropping a non-total
//! step, hoisting a context-dependent predicate, interning distinct nodes)
//! shows up as a divergence on some seed.

use minctx_bench::{values_agree, xorshift};
use minctx_core::{rewrite, Engine, EvalError, Strategy, Value};
use minctx_syntax::parse_xpath;
use minctx_xml::{Document, DocumentBuilder};

fn pick<'a>(rng: &mut u64, pool: &[&'a str]) -> &'a str {
    pool[xorshift(rng) as usize % pool.len()]
}

const LABELS: &[&str] = &["a", "b", "c", "d"];

/// A random nested document over a 4-letter alphabet with attributes and
/// text, kept small: the raw naive evaluator must survive 4-step chains of
/// `descendant-or-self::node()` steps within its budget.
fn random_doc(seed: u64, target: usize) -> Document {
    let mut rng = seed | 1;
    let mut b = DocumentBuilder::new();
    let mut open = 1usize;
    let mut made = 1usize;
    b.start_element("r", &[]);
    while made < target {
        match xorshift(&mut rng) % 5 {
            // Close one level (keep the root open).
            0 if open > 1 => {
                b.end_element();
                open -= 1;
            }
            1 => {
                b.text(pick(&mut rng, &["v", "x", "1", "2.5", ""]));
                made += 1;
            }
            _ => {
                let label = pick(&mut rng, LABELS);
                let with_attr = xorshift(&mut rng) % 3 == 0;
                if with_attr {
                    b.start_element(label, &[(pick(&mut rng, &["p", "q"]), "v")]);
                } else {
                    b.start_element(label, &[]);
                }
                open += 1;
                made += 1;
            }
        }
    }
    for _ in 0..open {
        b.end_element();
    }
    b.finish().expect("random doc is well-formed")
}

/// One random step: axis, test, 0–2 predicates.
fn random_step(rng: &mut u64) -> String {
    // descendant-or-self::node() is over-weighted: it is the shape the
    // fusion pass exists for.
    let axis_test = match xorshift(rng) % 12 {
        0..=2 => "descendant-or-self::node()".to_string(),
        3 => format!("descendant::{}", pick(rng, LABELS)),
        4 => "parent::node()".to_string(),
        5 => format!("ancestor::{}", pick(rng, &["a", "b", "*"])),
        6 => pick(
            rng,
            &[
                "preceding-sibling::*",
                "following-sibling::*",
                "preceding::b",
                "following::c",
                "ancestor-or-self::node()",
                "self::node()",
                "self::a",
                "@p",
                "@*",
                "text()",
            ],
        )
        .to_string(),
        _ => format!("child::{}", pick(rng, &["a", "b", "c", "d", "*"])),
    };
    let mut step = axis_test;
    // 0, 1 or 2 predicates — two-predicate steps exercise the mixed
    // positional/non-positional fusion veto and hoist ordering.
    let npreds = match xorshift(rng) % 8 {
        0..=3 => 0,
        4 | 5 => 1,
        _ => 2,
    };
    for _ in 0..npreds {
        step.push_str(pick(
            rng,
            &[
                // Positional predicates: fusion and hoisting must refuse.
                "[1]",
                "[2]",
                "[last()]",
                "[position() != last()]",
                "[position() mod 2 = 1]",
                // Existential / comparison predicates (position-free).
                "[b]",
                "[a/b]",
                "[@p]",
                "[ancestor::b]",
                "[c[d]/ancestor::a]",
                "[b/descendant-or-self::node()]",
                "[a/parent::node()]",
                "[. = 'v']",
                "[count(b) > 1]",
                "[not(d)]",
                // Constant predicates: folding and hoisting targets.
                "[true()]",
                "[1 = 1]",
                "[3 > 2 + 0]",
                "[count(/r) = 1]",
                "[string-length('ab') = 2]",
            ],
        ));
    }
    step
}

fn random_query(rng: &mut u64) -> String {
    let mut q = String::new();
    if xorshift(rng) % 2 == 0 {
        q.push('/');
    }
    let steps = 1 + (xorshift(rng) % 4) as usize;
    for i in 0..steps {
        if i > 0 {
            q.push('/');
        }
        q.push_str(&random_step(rng));
    }
    match xorshift(rng) % 6 {
        0 => format!("count({q})"),
        1 => format!("boolean({q})"),
        // Duplicated branches: the CSE/interning target.
        2 => format!("{q} | {q}"),
        3 => format!("string({q})"),
        _ => q,
    }
}

/// Naive can hit its guard budget on deep dos-chains; that is not a
/// divergence, just an expensive query — skip those outcomes.
fn eval(e: &Engine, doc: &Document, q: &str) -> Option<Value> {
    match e.evaluate_str(doc, q) {
        Ok(v) => Some(v),
        Err(EvalError::BudgetExhausted { .. }) => None,
        Err(e) => panic!("{q:?}: {e}"),
    }
}

#[test]
fn raw_and_rewritten_agree_on_random_queries_and_documents() {
    let mut rewrites = 0usize;
    let mut total = 0usize;
    for seed in 1..=8u64 {
        let doc = random_doc(
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            25 + seed as usize * 5,
        );
        let mut rng = seed;
        let mut engines = Vec::new();
        for s in Strategy::ALL {
            for optimize in [false, true] {
                let mut e = Engine::new(s).with_optimizer(optimize);
                if s == Strategy::Naive {
                    e = e.with_budget(3_000_000);
                }
                engines.push(e);
            }
        }
        for _ in 0..60 {
            let q = random_query(&mut rng);
            let parsed = parse_xpath(&q).unwrap_or_else(|e| panic!("{q:?} failed to parse: {e}"));
            total += 1;
            if rewrite(&parsed) != parsed {
                rewrites += 1;
            }
            let mut baseline: Option<Value> = None;
            for e in &engines {
                let Some(v) = eval(e, &doc, &q) else { continue };
                match &baseline {
                    None => baseline = Some(v),
                    Some(b) => assert!(
                        values_agree(b, &v),
                        "seed {seed}: {} (optimize={}) diverges on {q:?}:\n  baseline: {b:?}\n  got: {v:?}",
                        e.strategy(),
                        e.optimizer(),
                    ),
                }
            }
            assert!(baseline.is_some(), "seed {seed}: no engine answered {q:?}");
        }
    }
    // The generator must actually exercise the pipeline: a large share of
    // the random queries has to be rewritten into something different.
    assert!(
        rewrites * 4 >= total,
        "only {rewrites}/{total} random queries were rewritten — generator rotted?"
    );
}

#[test]
fn raw_and_rewritten_agree_at_every_element_context() {
    // Relative queries evaluated from every element, not just the root.
    let queries = [
        "descendant-or-self::node()/child::a",
        "a/parent::node()",
        "descendant-or-self::node()/child::b[1]",
        "b[c][ancestor::r]",
        "count(descendant-or-self::node()/descendant::c)",
        "boolean(a/ancestor-or-self::node())",
        ".//b",
        "..",
    ];
    use minctx_core::Context;
    for seed in [3u64, 17] {
        let doc = random_doc(seed.wrapping_mul(0xdead_beef), 30);
        for q in queries {
            let query = parse_xpath(q).unwrap();
            for node in doc.all_nodes().filter(|&n| doc.kind(n).is_element()) {
                let ctx = Context::at(node);
                let mut first: Option<Value> = None;
                for s in Strategy::ALL {
                    for optimize in [false, true] {
                        let v = Engine::new(s)
                            .with_optimizer(optimize)
                            .evaluate_at(&doc, &query, ctx)
                            .unwrap_or_else(|e| panic!("{s} on {q:?}: {e}"));
                        match &first {
                            None => first = Some(v),
                            Some(b) => assert!(
                                values_agree(b, &v),
                                "seed {seed}: {s} optimize={optimize} at {node} on {q:?}: {b:?} vs {v:?}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

//! The Section-1 exponential query family, reproduced as a guarded test.
//!
//! The paper opens with the observation that contemporary XPath engines
//! took time exponential in the size of queries as simple as
//!
//! ```text
//! //b,  //b/parent::a/child::b,  //b/parent::a/child::b/parent::a/child::b, …
//! ```
//!
//! on the two-line document `<a><b/><b/></a>`: each `parent::a/child::b`
//! round trip doubles the number of (duplicated) context nodes a
//! context-at-a-time implementation walks.  Our [`Strategy::Naive`]
//! evaluator reproduces that behavior behind a work budget, while the
//! polynomial strategies answer the same queries in time linear in the
//! number of steps.

use minctx_core::{Engine, EvalError, Exhausted, Strategy};
use minctx_xml::parse;

/// `//b` followed by `i` copies of `/parent::a/child::b`.
fn family(i: usize) -> String {
    let mut q = String::from("//b");
    for _ in 0..i {
        q.push_str("/parent::a/child::b");
    }
    q
}

const BUDGET: u64 = 200_000;

#[test]
fn naive_agrees_on_small_members_of_the_family() {
    let doc = parse("<a><b/><b/></a>").unwrap();
    for i in 0..6 {
        for s in Strategy::ALL {
            let v = Engine::new(s)
                .with_budget(BUDGET)
                .evaluate_str(&doc, &family(i))
                .unwrap();
            assert_eq!(v.into_node_set().unwrap().len(), 2, "{s} at i={i}");
        }
    }
}

#[test]
fn naive_work_doubles_per_round_trip() {
    // Find the first family member the budget cannot cover; it must be far
    // below the sizes the polynomial strategies handle, and the failure
    // must be the budget guard, not a wrong answer.
    let doc = parse("<a><b/><b/></a>").unwrap();
    let naive = Engine::new(Strategy::Naive).with_budget(BUDGET);
    let blew_up_at = (0..64).find(|&i| {
        matches!(
            naive.evaluate_str(&doc, &family(i)),
            Err(EvalError::BudgetExhausted { .. })
        )
    });
    let i = blew_up_at.expect("naive never exceeded its budget — lost its exponential blow-up?");
    // 2^i contexts ≈ budget ⇒ i ≈ log2(200_000) ≈ 17; allow slack for
    // constant factors but insist the blow-up is exponential-fast.
    assert!(
        (8..=24).contains(&i),
        "naive budget blow-up at unexpected query size i={i}"
    );
}

#[test]
fn polynomial_strategies_sail_through_much_larger_members() {
    let doc = parse("<a><b/><b/></a>").unwrap();
    // 60 round trips = 121 steps; naive would need ~2^60 work units.
    let q = family(60);
    for s in [
        Strategy::ContextValueTable,
        Strategy::MinContext,
        Strategy::OptMinContext,
    ] {
        let v = Engine::new(s).evaluate_str(&doc, &q).unwrap();
        assert_eq!(v.into_node_set().unwrap().len(), 2, "{s}");
    }
}

#[test]
fn budget_error_reports_the_configured_budget() {
    let doc = parse("<a><b/><b/></a>").unwrap();
    let err = Engine::new(Strategy::Naive)
        .with_budget(1_000)
        .evaluate_str(&doc, &family(30))
        .unwrap_err();
    assert_eq!(
        err,
        EvalError::BudgetExhausted {
            cause: Exhausted::Fuel { fuel: 1_000 }
        }
    );
}

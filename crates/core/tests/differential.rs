//! The cross-strategy differential oracle.
//!
//! Every query in the corpus is evaluated under all four strategies on
//! every document — each strategy both with the query-IR rewrite pipeline
//! and on the query as written — and the resulting [`Value`]s must be
//! identical.  The strategies share the value/conversion library but
//! nothing of their evaluation order — naive is top-down
//! context-at-a-time, the tables are bottom-up over all contexts,
//! MINCONTEXT is top-down set-at-a-time with memoization, OPTMINCONTEXT
//! adds backward axis propagation — so agreement here is strong evidence
//! of semantic correctness; the raw-vs-rewritten axis additionally proves
//! every rewrite pass semantics-preserving on the corpus, and every future
//! optimization PR inherits this suite as its safety net.

use minctx_bench::{uniform_tree, values_agree};
use minctx_core::{Engine, Strategy, Value};
use minctx_xml::{parse, Document};

/// Corpus documents: hand-written shapes plus generated trees.
fn documents() -> Vec<(String, Document)> {
    let mut docs = vec![
        (
            "books".to_string(),
            parse(concat!(
                r#"<library xml:lang="en">"#,
                r#"<book id="b1" year="1994"><title>TCP/IP</title><price>65.95</price></book>"#,
                r#"<book id="b2" year="2000"><title>Data on the Web</title><price>39.95</price></book>"#,
                r#"<book id="b3" year="2000" ref="b1"><title>XML</title><price>100</price></book>"#,
                r#"<!-- catalogue -->"#,
                r#"<?render fast?>"#,
                r#"<magazine id="m1"><title>XML</title><price>8</price></magazine>"#,
                r#"</library>"#,
            ))
            .unwrap(),
        ),
        (
            "numbers".to_string(),
            parse(
                "<t><n>1</n><n>2</n><n>3</n><n>100</n><m>2.5</m><m>-4</m>\
                 <mixed>7seven</mixed><empty/></t>",
            )
            .unwrap(),
        ),
        (
            "idchain".to_string(),
            parse(
                r#"<g id="g"><p id="p1">p2 p3</p><p id="p2">p3</p><p id="p3">done</p></g>"#,
            )
            .unwrap(),
        ),
    ];
    // A generated three-level tree (40 elements) — the same generator the
    // benches use, so the oracle covers the benchmarked document shape.
    docs.push(("tree-3-3".to_string(), uniform_tree(3, 3)));
    docs
}

/// The query corpus: ≥40 queries spanning axes, predicates, positional
/// functions, arithmetic, unions, strings, and `id()`.
const QUERIES: &[&str] = &[
    // Plain paths and axes.
    "/",
    "/*",
    "/child::*/child::*",
    "//title",
    "//*",
    "/descendant-or-self::node()",
    "//price/text()",
    "//comment()",
    "//processing-instruction()",
    "//book/attribute::year",
    "//@id",
    "//book/..",
    "//title/parent::*/child::price",
    "//price/ancestor::*",
    "//book[1]/following-sibling::*",
    "//magazine/preceding-sibling::*",
    "//book[2]/following::node()",
    "//magazine/preceding::price",
    "//odd/even",
    "//even[odd]",
    // Predicates, position(), last().
    "//book[1]",
    "//book[last()]",
    "//book[position() = 2]",
    "//book[position() != last()]",
    "//*[position() = 2]",
    "//book[price > 40]",
    "//book[title = 'XML']",
    "//book[@year = 2000][2]",
    "//book[@year = 2000 and price > 50]",
    "//book[not(@ref)]",
    "//*[count(*) > 1]",
    "//*[position() > last() * 0.5]",
    "/descendant::*[position() > last()*0.5 or self::* = 100]",
    "//even[position() mod 2 = 1]",
    "//n[. > 1][position() < 3]",
    // Positional predicates over reverse axes count in reverse document
    // order — a classic divergence spot between evaluators.
    "//magazine/preceding-sibling::*[1]",
    "//price/ancestor::*[2]",
    "//magazine/preceding::node()[3]",
    "//book[last() - 1]",
    // Filters on primaries.
    "(//book)[2]",
    "(//title | //price)[last()]",
    "id('b1 b3')[2]",
    // Unions.
    "//title | //price",
    "//book | //magazine | //book",
    "//n | //m",
    // id().
    "id('b2')",
    "id('p1')",
    "id(//book[3]/@ref)",
    "//p[id(.)]",
    // Scalars: numbers, strings, booleans.
    "count(//book)",
    "count(//book[price < 50]) + count(//magazine)",
    "sum(//n)",
    "sum(//m) * 2",
    "1 div 0",
    "-3 mod 2",
    "string(//book[1]/title)",
    "concat(name(//book[1]), '-', //book[1]/@id)",
    "normalize-space(string(//mixed))",
    "substring(string(//title[1]), 2, 3)",
    "string-length(string(//book[2]/title))",
    "translate(string(//title[3]), 'XML', 'xml')",
    "starts-with(string(//book[1]/@id), 'b')",
    "contains(string(/), 'Web')",
    "boolean(//book)",
    "boolean(//nosuch)",
    "not(//magazine)",
    "//book = //magazine",
    "//n < //m",
    // Node-set vs boolean converts the whole set (§3.4), so an *empty*
    // set equals false() — not the existential member rule.
    "//nosuch = false()",
    "count(//book[nosuch = false()])",
    "//book != true()",
    "//nosuch < true()",
    // Attribute nodes as predicate targets and as context nodes: these
    // pinned down real divergences (backward propagation leaking
    // attributes through node() tests; attribute origins of reverse and
    // or-self axes; descendant-or-self of an attribute context).
    "//*[node() = 'XML']",
    "//*[node()]",
    "//book/@year/descendant-or-self::node()",
    "//@id/ancestor-or-self::node()",
    "//@*[following::magazine]",
    "//@*[ancestor::library]",
    "//@id[self::node() = 'b2']",
    "number(//empty)",
    "floor(sum(//m)) + ceiling(1.2) + round(2.5)",
    "string(number('x'))",
    "lang('en')",
    "local-name(//*[last()])",
    // ---- Function-library edge cases: NaN, signed zero, infinities ----
    // (most of these also constant-fold, so the rewritten run checks the
    // folder against all four live evaluators).
    "0 div 0",
    "-0.5 mod 2",
    "0 mod 0",
    "1 div -0",
    "string(1 div -0)",
    "-1 div 0",
    "0 * (1 div 0)",
    "(1 div 0) + (-1 div 0)",
    "1 div (1 div 0)",
    "(0 div 0) = (0 div 0)",
    "(0 div 0) != (0 div 0)",
    "(0 div 0) < 1",
    "0 = -0",
    "string(-0)",
    "boolean(-0)",
    "boolean(0 div 0)",
    "not(0 div 0)",
    // round/floor/ceiling at the §4.4 signed-zero edges.
    "1 div round(-0.2)",
    "string(round(-0.2))",
    "round(-0.5)",
    "1 div round(-0.5)",
    "round(0.5)",
    "string(round(0 div 0))",
    "round(1 div 0)",
    "round(-1 div 0)",
    "1 div ceiling(-0.3)",
    "floor(-0.5)",
    "//n[. > round(-0.2)]",
    // substring with NaN / infinite start and length (§4.2).
    "substring('12345', 1 div 0)",
    "substring('12345', -1 div 0)",
    "substring('12345', -1 div 0, 1 div 0)",
    "substring('12345', 2, 1 div 0)",
    "substring('12345', 0 div 0, 3)",
    "substring('12345', 2, 0 div 0)",
    "substring('12345', -42, 1 div 0)",
    "substring(string(//title[1]), 1 div 0)",
    // substring-before/-after with empty patterns and subjects.
    "substring-before('abc', '')",
    "substring-after('abc', '')",
    "substring-before('', 'x')",
    "substring-after('', '')",
    "substring-before(string(//mixed), '')",
    // Empty-node-set inputs to the node-set functions.
    "name(//nosuch)",
    "local-name(//nosuch)",
    "namespace-uri(//nosuch)",
    "sum(//nosuch)",
    "string(sum(//nosuch) div count(//nosuch))",
    "number(//nosuch)",
    "string(//nosuch)",
    "string-length(string(//nosuch))",
    "count(//book[sum(nosuch) = 0])",
    // String→number strictness interacting with comparisons.
    "'' = 0",
    "number('') = number('')",
    "//mixed != //mixed",
];

/// Every strategy, each with the rewrite pipeline off and on: 8 engines
/// whose answers must coincide on everything.
fn engines() -> Vec<Engine> {
    Strategy::ALL
        .iter()
        .flat_map(|&s| {
            [
                Engine::new(s).with_optimizer(false),
                Engine::new(s).with_optimizer(true),
            ]
        })
        .collect()
}

/// `"cvt"` / `"cvt+opt"` — for failure messages.
fn tag(e: &Engine) -> String {
    let opt = if e.optimizer() { "+opt" } else { "" };
    format!("{}{opt}", e.strategy())
}

#[test]
fn corpus_has_at_least_forty_queries() {
    assert!(
        QUERIES.len() >= 40,
        "differential corpus shrank to {}",
        QUERIES.len()
    );
}

#[test]
fn all_strategies_agree_on_the_corpus() {
    let docs = documents();
    let engines = engines();
    for (doc_name, doc) in &docs {
        for q in QUERIES {
            let baseline = engines[0]
                .evaluate_str(doc, q)
                .unwrap_or_else(|e| panic!("{doc_name}: naive failed on {q:?}: {e}"));
            for engine in &engines[1..] {
                let v = engine
                    .evaluate_str(doc, q)
                    .unwrap_or_else(|e| panic!("{doc_name}: {} failed on {q:?}: {e}", tag(engine)));
                assert!(
                    values_agree(&baseline, &v),
                    "{doc_name}: {} disagrees with raw naive on {q:?}:\n  naive: {baseline:?}\n  {}: {v:?}",
                    tag(engine),
                    tag(engine),
                );
            }
        }
    }
}

#[test]
fn strategies_agree_at_non_root_contexts() {
    use minctx_core::Context;
    let docs = documents();
    let queries = [
        "n",
        ".",
        "..",
        "self::node()",
        "following-sibling::*[1]",
        "count(preceding-sibling::*)",
        "string(.)",
        "position() + last()",
    ];
    let engines = engines();
    for (doc_name, doc) in &docs {
        for q in queries {
            let query = minctx_syntax::parse_xpath(q).unwrap();
            // Every element of the document becomes a context node.
            for node in doc.all_nodes().filter(|&n| doc.kind(n).is_element()) {
                let ctx = Context::at(node);
                let mut results = engines.iter().map(|e| {
                    e.evaluate_at(doc, &query, ctx).unwrap_or_else(|err| {
                        panic!("{doc_name}: {} failed on {q:?}: {err}", tag(e))
                    })
                });
                let first = results.next().unwrap();
                for v in results {
                    assert!(
                        values_agree(&first, &v),
                        "{doc_name}: node {node} query {q:?}: {first:?} vs {v:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn known_answers_spot_check() {
    // The oracle should not be vacuously agreeing on empty results:
    // pin a few absolute answers on the books document.
    let (_, doc) = &documents()[0];
    for engine in engines() {
        let v = engine.evaluate_str(doc, "count(//book)").unwrap();
        assert_eq!(v, Value::Number(3.0), "{}", tag(&engine));
        let v = engine
            .evaluate_str(doc, "string(//book[last()]/title)")
            .unwrap();
        assert_eq!(v, Value::String("XML".into()), "{}", tag(&engine));
        let v = engine
            .evaluate_str(doc, "id(//book[3]/@ref)/title")
            .unwrap()
            .into_node_set()
            .unwrap();
        assert_eq!(v.len(), 1, "{}", tag(&engine));
        let v = engine.evaluate_str(doc, "//book[price > 40]").unwrap();
        assert_eq!(v.into_node_set().unwrap().len(), 2, "{}", tag(&engine));
    }
}

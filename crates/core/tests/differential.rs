//! The cross-strategy differential oracle.
//!
//! Every query in the corpus is evaluated under all four strategies on
//! every document — each strategy both with the query-IR rewrite pipeline
//! and on the query as written — and the resulting [`Value`]s must be
//! identical.  The strategies share the value/conversion library but
//! nothing of their evaluation order — naive is top-down
//! context-at-a-time, the tables are bottom-up over all contexts,
//! MINCONTEXT is top-down set-at-a-time with memoization, OPTMINCONTEXT
//! adds backward axis propagation — so agreement here is strong evidence
//! of semantic correctness; the raw-vs-rewritten axis additionally proves
//! every rewrite pass semantics-preserving on the corpus, and every future
//! optimization PR inherits this suite as its safety net.

use minctx_bench::corpus::{documents, QUERIES};
use minctx_bench::values_agree;
use minctx_core::{Engine, Strategy, Value};

/// Every strategy, each with the rewrite pipeline off and on: 8 engines
/// whose answers must coincide on everything.
fn engines() -> Vec<Engine> {
    Strategy::ALL
        .iter()
        .flat_map(|&s| {
            [
                Engine::new(s).with_optimizer(false),
                Engine::new(s).with_optimizer(true),
            ]
        })
        .collect()
}

/// `"cvt"` / `"cvt+opt"` — for failure messages.
fn tag(e: &Engine) -> String {
    let opt = if e.optimizer() { "+opt" } else { "" };
    format!("{}{opt}", e.strategy())
}

#[test]
fn corpus_has_at_least_forty_queries() {
    assert!(
        QUERIES.len() >= 40,
        "differential corpus shrank to {}",
        QUERIES.len()
    );
}

#[test]
fn all_strategies_agree_on_the_corpus() {
    let docs = documents();
    let engines = engines();
    for (doc_name, doc) in &docs {
        for q in QUERIES {
            let baseline = engines[0]
                .evaluate_str(doc, q)
                .unwrap_or_else(|e| panic!("{doc_name}: naive failed on {q:?}: {e}"));
            for engine in &engines[1..] {
                let v = engine
                    .evaluate_str(doc, q)
                    .unwrap_or_else(|e| panic!("{doc_name}: {} failed on {q:?}: {e}", tag(engine)));
                assert!(
                    values_agree(&baseline, &v),
                    "{doc_name}: {} disagrees with raw naive on {q:?}:\n  naive: {baseline:?}\n  {}: {v:?}",
                    tag(engine),
                    tag(engine),
                );
            }
        }
    }
}

#[test]
fn strategies_agree_at_non_root_contexts() {
    use minctx_core::Context;
    let docs = documents();
    let queries = [
        "n",
        ".",
        "..",
        "self::node()",
        "following-sibling::*[1]",
        "count(preceding-sibling::*)",
        "string(.)",
        "position() + last()",
    ];
    let engines = engines();
    for (doc_name, doc) in &docs {
        for q in queries {
            let query = minctx_syntax::parse_xpath(q).unwrap();
            // Every element of the document becomes a context node.
            for node in doc.all_nodes().filter(|&n| doc.kind(n).is_element()) {
                let ctx = Context::at(node);
                let mut results = engines.iter().map(|e| {
                    e.evaluate_at(doc, &query, ctx).unwrap_or_else(|err| {
                        panic!("{doc_name}: {} failed on {q:?}: {err}", tag(e))
                    })
                });
                let first = results.next().unwrap();
                for v in results {
                    assert!(
                        values_agree(&first, &v),
                        "{doc_name}: node {node} query {q:?}: {first:?} vs {v:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn known_answers_spot_check() {
    // The oracle should not be vacuously agreeing on empty results:
    // pin a few absolute answers on the books document.
    let (_, doc) = &documents()[0];
    for engine in engines() {
        let v = engine.evaluate_str(doc, "count(//book)").unwrap();
        assert_eq!(v, Value::Number(3.0), "{}", tag(&engine));
        let v = engine
            .evaluate_str(doc, "string(//book[last()]/title)")
            .unwrap();
        assert_eq!(v, Value::String("XML".into()), "{}", tag(&engine));
        let v = engine
            .evaluate_str(doc, "id(//book[3]/@ref)/title")
            .unwrap()
            .into_node_set()
            .unwrap();
        assert_eq!(v.len(), 1, "{}", tag(&engine));
        let v = engine.evaluate_str(doc, "//book[price > 40]").unwrap();
        assert_eq!(v.into_node_set().unwrap().len(), 2, "{}", tag(&engine));
    }
}

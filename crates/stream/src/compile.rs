//! The stream compiler: lowering an arena [`Query`] into the stack-machine
//! automaton the one-pass executor runs.
//!
//! [`compile`] either produces a [`StreamQuery`] — a set of step
//! [`Program`]s (the main path plus one program per predicate atom) over
//! the forward-axis fragment — or reports the first construct that forces
//! the arena path, as a stable `&'static str` reason.  The classifier
//! ([`crate::fragment::classify`]) is exactly this compiler with the
//! result discarded, so "classifier accepts" and "compiler succeeds" can
//! never drift apart.
//!
//! The compiler is document-independent: node tests keep their names and
//! are compared against event names at run time (there is no name table
//! to resolve against — the whole point is that no document is built).

use minctx_core::value::{compare_scalars, Value};
use minctx_syntax::{CmpOp, ExprId, Func, Node, PathStart, Query, Step};
use minctx_xml::axes::{Axis, NodeTest};

/// Index of a [`Program`] in [`StreamQuery::programs`].
pub(crate) type ProgId = usize;

/// The streamable axes: every step of every program walks strictly
/// forward and strictly downward (or sideways onto attributes), which is
/// what lets one document pass with a frame stack answer the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SAxis {
    SelfAxis,
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
}

/// A node test compiled against its axis's principal type (names stay
/// strings; matching is per-event string comparison).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum STest {
    /// `node()` on a tree or self axis: any event node.
    AnyNode,
    /// `*` on a tree axis.
    Element,
    /// A name test on a tree axis.
    ElementNamed(Box<str>),
    /// `*` or `node()` on the attribute axis.
    AnyAttr,
    /// A name test on the attribute axis.
    AttrNamed(Box<str>),
    Text,
    Comment,
    PiAny,
    PiNamed(Box<str>),
    /// A kind test that can never match on this axis (e.g.
    /// `attribute::text()`).
    Never,
}

/// A literal scalar a predicate compares node string values against.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Lit {
    Num(f64),
    Str(Box<str>),
}

/// One compiled location step.
#[derive(Debug, Clone)]
pub(crate) struct CStep {
    pub axis: SAxis,
    pub test: STest,
    /// Existential string-value comparison a matched node must also pass
    /// (compiled from `π op literal` predicates; final steps of atom
    /// programs only, and only where the matched node carries its own
    /// string value — attributes, text, comments, PIs).
    pub value_check: Option<(CmpOp, Lit)>,
    /// Predicate instances to open when a node matches this step.
    pub preds: Vec<PredTree>,
}

/// A compiled predicate: a boolean tree over existence atoms.  Each
/// instance (one per node matching the owning step) allocates
/// `atom_progs.len()` atom cells; atom `i` is true iff program
/// `atom_progs[i]`, run from the matching node, finds a witness.
#[derive(Debug, Clone)]
pub(crate) struct PredTree {
    pub expr: PExpr,
    pub atom_progs: Vec<ProgId>,
}

/// The boolean structure of a predicate.
#[derive(Debug, Clone)]
pub(crate) enum PExpr {
    /// Slot into the owning tree's atom cells.
    Atom(usize),
    Not(Box<PExpr>),
    And(Box<PExpr>, Box<PExpr>),
    Or(Box<PExpr>, Box<PExpr>),
    Const(bool),
}

/// A step chain run from an origin node (the document root for the main
/// program, the candidate node for predicate atoms).
#[derive(Debug, Clone, Default)]
pub(crate) struct Program {
    pub steps: Vec<CStep>,
}

/// What the query's root expression asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResultKind {
    /// The matched node-set itself, in document order.
    Nodes,
    /// `count(π)` — matched nodes are counted, not captured.
    Count,
    /// `boolean(π)` — the stream stops at the first unconditional match.
    Exists,
}

/// A query compiled for one-pass streaming evaluation.
#[derive(Debug, Clone)]
pub struct StreamQuery {
    /// `programs[0]` is the main path; the rest are predicate atoms.
    pub(crate) programs: Vec<Program>,
    pub(crate) result: ResultKind,
}

impl StreamQuery {
    /// Number of compiled step programs (main path + predicate atoms).
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }
}

/// Compiles `query` for streaming, or names the construct that needs the
/// arena.  Callers normally pass the *rewritten* query (post
/// [`minctx_core::rewrite`]), which normalizes reverse axes away where
/// possible and therefore widens the accepted fragment.
pub(crate) fn compile(query: &Query) -> Result<StreamQuery, &'static str> {
    let mut c = Compiler {
        q: query,
        programs: vec![Program::default()],
    };
    let root = query.root();
    let (path, result) = match query.node(root) {
        Node::Path(..) => (root, ResultKind::Nodes),
        Node::Call(Func::Count, args) if matches!(query.node(args[0]), Node::Path(..)) => {
            (args[0], ResultKind::Count)
        }
        Node::Call(Func::Boolean, args) if matches!(query.node(args[0]), Node::Path(..)) => {
            (args[0], ResultKind::Exists)
        }
        Node::Union(..) => return Err(reason::UNION),
        _ => return Err(reason::NOT_A_PATH),
    };
    let steps = c.compile_path(path, true)?;
    c.programs[0].steps = steps;
    Ok(StreamQuery {
        programs: c.programs,
        result,
    })
}

/// The stable fallback reasons [`compile`] reports.  Public (via
/// `fragment`) so callers can match on them in diagnostics and tests.
pub mod reason {
    pub const NOT_A_PATH: &str =
        "query root is not a streamable location path (scalar results are computed on the arena)";
    pub const UNION: &str = "union results need cross-branch merging on the arena";
    pub const FILTER_START: &str = "filter-start path needs its primary expression materialized";
    pub const ABSOLUTE_PREDICATE: &str = "absolute path inside a predicate needs the arena";
    pub const REVERSE_AXIS: &str = "reverse axis needs the arena";
    pub const FOLLOWING_AXIS: &str = "following axes are not streamable yet";
    pub const ID_AXIS: &str = "id() dereferencing needs the document id index";
    pub const POSITIONAL: &str =
        "positional predicate (position()/last()) needs counted candidate lists";
    pub const ELEMENT_VALUE: &str =
        "comparison against an element or node() string value needs the arena";
    pub const NODESET_COMPARE: &str = "comparison between two node-sets needs the arena";
    pub const NON_LITERAL_COMPARE: &str =
        "comparison against a non-literal operand needs the arena";
    pub const PREDICATE_EXPR: &str = "predicate expression outside the streamable fragment";
}

struct Compiler<'q> {
    q: &'q Query,
    programs: Vec<Program>,
}

impl Compiler<'_> {
    /// Compiles a path node's steps.  `main` paths may be absolute or
    /// relative (both start at the document root for whole-document
    /// evaluation); predicate atom paths must be relative.
    fn compile_path(&mut self, id: ExprId, main: bool) -> Result<Vec<CStep>, &'static str> {
        let Node::Path(start, steps) = self.q.node(id) else {
            return Err(reason::NOT_A_PATH);
        };
        match start {
            PathStart::Root if main => {}
            PathStart::Root => return Err(reason::ABSOLUTE_PREDICATE),
            PathStart::Context => {}
            PathStart::Filter { .. } => return Err(reason::FILTER_START),
        }
        steps.iter().map(|s| self.compile_step(s)).collect()
    }

    fn compile_step(&mut self, step: &Step) -> Result<CStep, &'static str> {
        let axis = match step.axis {
            Axis::SelfAxis => SAxis::SelfAxis,
            Axis::Child => SAxis::Child,
            Axis::Descendant => SAxis::Descendant,
            Axis::DescendantOrSelf => SAxis::DescendantOrSelf,
            Axis::Attribute => SAxis::Attribute,
            Axis::Parent
            | Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::Preceding
            | Axis::PrecedingSibling => return Err(reason::REVERSE_AXIS),
            Axis::Following | Axis::FollowingSibling => return Err(reason::FOLLOWING_AXIS),
            Axis::Id => return Err(reason::ID_AXIS),
        };
        let test = compile_test(axis, &step.test);
        let mut preds = Vec::with_capacity(step.predicates.len());
        for &p in &step.predicates {
            let relev = self.q.relev(p);
            if relev.position() || relev.size() {
                return Err(reason::POSITIONAL);
            }
            let mut atom_progs = Vec::new();
            let expr = self.compile_pred(p, &mut atom_progs)?;
            preds.push(PredTree { expr, atom_progs });
        }
        Ok(CStep {
            axis,
            test,
            value_check: None,
            preds,
        })
    }

    /// Compiles a (position-free) predicate expression into a boolean tree
    /// over existence atoms.
    fn compile_pred(&mut self, id: ExprId, atoms: &mut Vec<ProgId>) -> Result<PExpr, &'static str> {
        match self.q.node(id) {
            Node::Call(Func::True, _) => Ok(PExpr::Const(true)),
            Node::Call(Func::False, _) => Ok(PExpr::Const(false)),
            Node::Call(Func::Not, args) => {
                let inner = self.compile_pred(args[0], atoms)?;
                Ok(PExpr::Not(Box::new(inner)))
            }
            Node::Call(Func::Boolean, args) if matches!(self.q.node(args[0]), Node::Path(..)) => {
                self.compile_exists(args[0], atoms)
            }
            // Defensive: the normalizer wraps truth-tested paths in
            // `boolean()`, but a bare path predicate is the same atom.
            Node::Path(..) => self.compile_exists(id, atoms),
            Node::And(a, b) => {
                let (a, b) = (*a, *b);
                let x = self.compile_pred(a, atoms)?;
                let y = self.compile_pred(b, atoms)?;
                Ok(PExpr::And(Box::new(x), Box::new(y)))
            }
            Node::Or(a, b) => {
                let (a, b) = (*a, *b);
                let x = self.compile_pred(a, atoms)?;
                let y = self.compile_pred(b, atoms)?;
                Ok(PExpr::Or(Box::new(x), Box::new(y)))
            }
            Node::Compare(op, a, b) => self.compile_compare(*op, *a, *b, atoms),
            _ => Err(reason::PREDICATE_EXPR),
        }
    }

    /// `boolean(π)`: an existence atom, or a constant when the path has no
    /// steps (`boolean(.)` is true at every node).
    fn compile_exists(
        &mut self,
        path: ExprId,
        atoms: &mut Vec<ProgId>,
    ) -> Result<PExpr, &'static str> {
        let steps = self.compile_path(path, false)?;
        if steps.is_empty() {
            return Ok(PExpr::Const(true));
        }
        let slot = atoms.len();
        atoms.push(self.add_program(steps));
        Ok(PExpr::Atom(slot))
    }

    /// `π op literal` (either orientation): an existence atom whose final
    /// step additionally checks the matched node's own string value —
    /// exactly the §3.4 existential node-set/scalar rule.
    fn compile_compare(
        &mut self,
        op: CmpOp,
        a: ExprId,
        b: ExprId,
        atoms: &mut Vec<ProgId>,
    ) -> Result<PExpr, &'static str> {
        let a_is_path = matches!(self.q.node(a), Node::Path(..));
        let b_is_path = matches!(self.q.node(b), Node::Path(..));
        let (path, lit_id, op) = match (a_is_path, b_is_path) {
            (true, true) => return Err(reason::NODESET_COMPARE),
            (true, false) => (a, b, op),
            (false, true) => (b, a, op.swapped()),
            (false, false) => {
                // Two scalars (reachable with the optimizer off): fold
                // through the shared comparison dispatch.
                let (Some(x), Some(y)) = (self.literal(a), self.literal(b)) else {
                    return Err(reason::NON_LITERAL_COMPARE);
                };
                return Ok(PExpr::Const(compare_scalars(op, &x, &y)));
            }
        };
        let lit = match self.q.node(lit_id) {
            Node::Number(n) => Lit::Num(*n),
            Node::Literal(s) => Lit::Str(s.clone()),
            _ => return Err(reason::NON_LITERAL_COMPARE),
        };
        let mut steps = self.compile_path(path, false)?;
        let Some(last) = steps.last_mut() else {
            // `. op lit` compares the candidate's own (possibly element)
            // string value.
            return Err(reason::ELEMENT_VALUE);
        };
        if !matches!(
            last.test,
            STest::AnyAttr
                | STest::AttrNamed(_)
                | STest::Text
                | STest::Comment
                | STest::PiAny
                | STest::PiNamed(_)
        ) {
            return Err(reason::ELEMENT_VALUE);
        }
        last.value_check = Some((op, lit));
        let slot = atoms.len();
        atoms.push(self.add_program(steps));
        Ok(PExpr::Atom(slot))
    }

    fn literal(&self, id: ExprId) -> Option<Value> {
        match self.q.node(id) {
            Node::Number(n) => Some(Value::Number(*n)),
            Node::Literal(s) => Some(Value::String(s.to_string())),
            Node::Call(Func::True, _) => Some(Value::Boolean(true)),
            Node::Call(Func::False, _) => Some(Value::Boolean(false)),
            _ => None,
        }
    }

    fn add_program(&mut self, steps: Vec<CStep>) -> ProgId {
        self.programs.push(Program { steps });
        self.programs.len() - 1
    }
}

/// Compiles a node test against its axis's principal node type.
fn compile_test(axis: SAxis, test: &NodeTest) -> STest {
    if axis == SAxis::Attribute {
        match test {
            NodeTest::Wildcard | NodeTest::AnyNode => STest::AnyAttr,
            NodeTest::Name(s) => STest::AttrNamed(s.clone()),
            NodeTest::Text | NodeTest::Comment | NodeTest::Pi(_) => STest::Never,
        }
    } else {
        match test {
            NodeTest::Wildcard => STest::Element,
            NodeTest::Name(s) => STest::ElementNamed(s.clone()),
            NodeTest::Text => STest::Text,
            NodeTest::Comment => STest::Comment,
            NodeTest::Pi(None) => STest::PiAny,
            NodeTest::Pi(Some(t)) => STest::PiNamed(t.clone()),
            NodeTest::AnyNode => STest::AnyNode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_core::rewrite;
    use minctx_syntax::parse_xpath;

    fn comp(src: &str) -> Result<StreamQuery, &'static str> {
        compile(&rewrite(&parse_xpath(src).unwrap()))
    }

    #[test]
    fn accepts_the_forward_fragment() {
        for q in [
            "/",
            "//item",
            "//item[@id]",
            "/site/*/item/@id",
            "//item[@id = 'id7']",
            "//a[b][not(c)]/d//text()",
            "count(//item)",
            "boolean(//item[@id and b])",
            "//a[b/@c = 2 or @x != 'y']",
            "//a[b/text() = 'v']",
            "//comment()",
            "//processing-instruction('p')",
        ] {
            assert!(comp(q).is_ok(), "{q} should compile");
        }
    }

    #[test]
    fn main_program_is_first_and_atoms_follow() {
        let sq = comp("//a[b][c/@x = 1]").unwrap();
        // main + one atom per predicate.
        assert_eq!(sq.program_count(), 3);
        assert_eq!(sq.result, ResultKind::Nodes);
        assert_eq!(comp("count(//a)").unwrap().result, ResultKind::Count);
        assert_eq!(comp("boolean(//a)").unwrap().result, ResultKind::Exists);
    }

    #[test]
    fn rejections_carry_stable_reasons() {
        for (q, want) in [
            ("1 + 2", reason::NOT_A_PATH),
            ("//a | //b", reason::UNION),
            ("(//a)[b]", reason::FILTER_START),
            ("//a[/b]", reason::ABSOLUTE_PREDICATE),
            ("//a/ancestor::b", reason::REVERSE_AXIS),
            ("//a/following::b", reason::FOLLOWING_AXIS),
            ("//a[2]", reason::POSITIONAL),
            ("//a[last()]", reason::POSITIONAL),
            ("//a[b = 1]", reason::ELEMENT_VALUE),
            ("//a[. = 'x']", reason::ELEMENT_VALUE),
            ("//a[b = c]", reason::NODESET_COMPARE),
            ("//a[@x = count(b)]", reason::NON_LITERAL_COMPARE),
            ("//a[string-length(@x) > 1]", reason::NON_LITERAL_COMPARE),
            ("//a[lang('en')]", reason::PREDICATE_EXPR),
            ("id(//a)", reason::ID_AXIS),
        ] {
            assert_eq!(comp(q).unwrap_err(), want, "{q}");
        }
    }

    #[test]
    fn attribute_axis_kind_tests_never_match() {
        let sq = comp("/a/attribute::node()").unwrap();
        assert_eq!(sq.programs[0].steps[1].test, STest::AnyAttr);
        let q = parse_xpath("/a/attribute::text()").unwrap();
        let sq = compile(&q).unwrap();
        assert_eq!(sq.programs[0].steps.last().unwrap().test, STest::Never);
    }

    #[test]
    fn scalar_only_comparisons_fold_to_constants() {
        // With the optimizer off nothing pre-folds `[1 = 2]`; the stream
        // compiler folds it through the same §3.4 dispatch.
        let q = parse_xpath("//a[1 = 2]").unwrap();
        let sq = compile(&q).unwrap();
        let pred = &sq.programs[0].steps.last().unwrap().preds[0];
        assert!(matches!(pred.expr, PExpr::Const(false)));
    }
}

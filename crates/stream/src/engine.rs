//! Engine integration: [`StreamingEngine::evaluate_reader`] and the
//! [`StreamOutcome`] it returns.
//!
//! `evaluate_reader` is the read-once entry point: it takes XML *text*
//! (an [`io::Read`] or a `&str`) instead of a [`Document`].  Under
//! [`Strategy::Streaming`], queries the
//! [classifier](crate::fragment::classify) accepts are answered in one
//! SAX-style pass with no arena allocated; everything else falls back to
//! parsing the document and evaluating on the arena, and the outcome
//! reports *which construct* forced the fallback (and hands back the
//! parsed document, so the caller can keep using it).

use crate::compile::{self, StreamQuery};
use crate::exec::{Exec, StreamNodeKind, StreamValue};
use minctx_core::{BudgetMeter, Engine, EvalError, Strategy, Value};
use minctx_syntax::Query;
use minctx_xml::token::{ParseOptions, Tokenizer, XmlEvent};
use minctx_xml::{parse_reader_with_options, parse_with_options, Document};
use std::io::Read;

/// How [`StreamingEngine::evaluate_reader`] answered a query.
#[derive(Debug)]
pub enum StreamOutcome {
    /// Answered in one pass over the text; no [`Document`] was built.
    Streamed(StreamValue),
    /// Fell back to the arena: the input was parsed and evaluated with
    /// the engine's arena evaluator.  `reason` names the construct (or
    /// configuration) that forced the fallback.  The document is boxed so
    /// the streamed variant stays small.
    Arena {
        reason: &'static str,
        doc: Box<Document>,
        value: Value,
    },
}

impl StreamOutcome {
    /// Whether the streaming path answered the query.
    pub fn is_streamed(&self) -> bool {
        matches!(self, StreamOutcome::Streamed(_))
    }

    /// The fallback reason, when the arena path ran.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        match self {
            StreamOutcome::Streamed(_) => None,
            StreamOutcome::Arena { reason, .. } => Some(reason),
        }
    }

    /// The streamed value, when the streaming path answered.
    pub fn streamed(&self) -> Option<&StreamValue> {
        match self {
            StreamOutcome::Streamed(v) => Some(v),
            StreamOutcome::Arena { .. } => None,
        }
    }
}

/// Fallback reason when the engine's strategy is not
/// [`Strategy::Streaming`] (streaming must be opted into: the arena
/// strategies promise arena semantics such as full node-set values).
pub const REASON_ARENA_STRATEGY: &str = "engine strategy is an arena evaluator";

/// Streaming evaluation over XML text, as an extension of
/// [`minctx_core::Engine`].
///
/// ```
/// use minctx_core::{Engine, Strategy};
/// use minctx_stream::{StreamingEngine, StreamValue};
///
/// let engine = Engine::new(Strategy::Streaming);
/// let query = minctx_syntax::parse_xpath("count(//b[@x])").unwrap();
/// let out = engine
///     .evaluate_reader_str(&query, r#"<a><b x="1"/><b/><b x="2"/></a>"#)
///     .unwrap();
/// assert_eq!(out.streamed(), Some(&StreamValue::Number(2.0)));
/// ```
pub trait StreamingEngine {
    /// Evaluates `query` over a reader with explicit [`ParseOptions`],
    /// streaming when possible (see [`StreamOutcome`]).
    fn evaluate_reader_with_options(
        &self,
        query: &Query,
        reader: impl Read,
        opts: &ParseOptions,
    ) -> Result<StreamOutcome, EvalError>;

    /// [`StreamingEngine::evaluate_reader_with_options`] over borrowed
    /// text (zero-copy tokenization).
    fn evaluate_reader_str_with_options(
        &self,
        query: &Query,
        xml: &str,
        opts: &ParseOptions,
    ) -> Result<StreamOutcome, EvalError>;

    /// Evaluates `query` over a reader with default options.
    fn evaluate_reader(
        &self,
        query: &Query,
        reader: impl Read,
    ) -> Result<StreamOutcome, EvalError> {
        self.evaluate_reader_with_options(query, reader, &ParseOptions::default())
    }

    /// Evaluates `query` over borrowed text with default options.
    fn evaluate_reader_str(&self, query: &Query, xml: &str) -> Result<StreamOutcome, EvalError> {
        self.evaluate_reader_str_with_options(query, xml, &ParseOptions::default())
    }
}

impl StreamingEngine for Engine {
    fn evaluate_reader_with_options(
        &self,
        query: &Query,
        reader: impl Read,
        opts: &ParseOptions,
    ) -> Result<StreamOutcome, EvalError> {
        match decide(self, query) {
            Ok(sq) => {
                let mut tok = Tokenizer::from_reader(reader, opts.clone());
                let mut meter = self.budget_config().meter();
                let value = run_traced(self, &sq, &mut tok, &mut meter)?;
                Ok(StreamOutcome::Streamed(value))
            }
            Err(reason) => {
                let doc = Box::new(parse_reader_with_options(reader, opts)?);
                let value = self.evaluate(&doc, query)?;
                Ok(StreamOutcome::Arena { reason, doc, value })
            }
        }
    }

    fn evaluate_reader_str_with_options(
        &self,
        query: &Query,
        xml: &str,
        opts: &ParseOptions,
    ) -> Result<StreamOutcome, EvalError> {
        match decide(self, query) {
            Ok(sq) => {
                let mut tok = Tokenizer::with_options(xml, opts.clone());
                let mut meter = self.budget_config().meter();
                let value = run_traced(self, &sq, &mut tok, &mut meter)?;
                Ok(StreamOutcome::Streamed(value))
            }
            Err(reason) => {
                let doc = Box::new(parse_with_options(xml, opts)?);
                let value = self.evaluate(&doc, query)?;
                Ok(StreamOutcome::Arena { reason, doc, value })
            }
        }
    }
}

/// Stream or fall back?  Mirrors the engine's compile pipeline: the query
/// is rewritten exactly when the engine's optimizer is on, then handed to
/// the stream compiler (= the classifier).
fn decide(engine: &Engine, query: &Query) -> Result<StreamQuery, &'static str> {
    if engine.strategy() != Strategy::Streaming {
        return Err(REASON_ARENA_STRATEGY);
    }
    if engine.optimizer() {
        compile::compile(&minctx_core::rewrite(query))
    } else {
        compile::compile(query)
    }
}

/// [`run`] under the engine's trace recorder: the one-pass evaluation is
/// a [`Phase::Stream`] span (the arena fallback paths emit the usual
/// parse/compile/evaluate spans through [`Engine::evaluate`] instead).
/// Fuel spent is the event-weighted work metered by [`run`].
fn run_traced(
    engine: &Engine,
    sq: &StreamQuery,
    tok: &mut Tokenizer<'_>,
    meter: &mut BudgetMeter,
) -> Result<StreamValue, EvalError> {
    let mut span = engine.recorder().span(minctx_obs::Phase::Stream);
    let result = run(sq, tok, meter);
    span.attr_u64("fuel", meter.spent());
    span.attr_u64("ok", u64::from(result.is_ok()));
    result
}

/// Drives the automaton over the event stream, mirroring the arena
/// builder's pre-order numbering: the root is 0, an element consumes one
/// ordinal plus one per attribute, every other node consumes one.
///
/// Ordinals are `u32` for arena (`NodeId`) parity; a stream with more
/// than 2³² nodes is rejected rather than silently wrapped.
///
/// Work is metered per event (elements charge one unit per attribute
/// too), matching the one-pass cost model — a fuel or deadline budget
/// bounds how much of the stream is read.
fn run(
    sq: &StreamQuery,
    tok: &mut Tokenizer<'_>,
    meter: &mut BudgetMeter,
) -> Result<StreamValue, EvalError> {
    let mut ex = Exec::new(sq);
    let mut next: u64 = 1;
    while let Some(ev) = tok.next_event()? {
        if next > u32::MAX as u64 && !matches!(ev, XmlEvent::EndElement { .. }) {
            return Err(EvalError::DocumentTooLarge {
                nodes: next as usize,
                limit: u32::MAX as usize,
            });
        }
        let ord = next.min(u32::MAX as u64) as u32;
        match &ev {
            XmlEvent::StartElement { attrs, .. } => meter.charge(1 + attrs.len() as u64)?,
            _ => meter.charge(1)?,
        }
        match ev {
            XmlEvent::StartElement { name, attrs } => {
                next += 1 + attrs.len() as u64;
                ex.start_element(name, attrs, ord);
            }
            XmlEvent::EndElement { .. } => ex.end_element(),
            XmlEvent::Text(t) => {
                ex.leaf(StreamNodeKind::Text, None, t, ord);
                next += 1;
            }
            XmlEvent::Comment(c) => {
                ex.leaf(StreamNodeKind::Comment, None, c, ord);
                next += 1;
            }
            XmlEvent::Pi { target, data } => {
                ex.leaf(StreamNodeKind::Pi, Some(target), data, ord);
                next += 1;
            }
        }
        if ex.finished() {
            // An existence query answered `true` unconditionally: stop
            // reading.  (The unread tail is not validated — streaming
            // discovers malformedness only as far as it reads.)
            break;
        }
    }
    Ok(ex.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_syntax::parse_xpath;

    fn streaming() -> Engine {
        Engine::new(Strategy::Streaming)
    }

    fn nodes(out: &StreamOutcome) -> Vec<u32> {
        match out.streamed().expect("streamed") {
            StreamValue::Nodes(ms) => ms.iter().map(|m| m.ordinal).collect(),
            other => panic!("expected nodes, got {other:?}"),
        }
    }

    #[test]
    fn streams_simple_paths_with_arena_exact_ordinals() {
        // root=0, <a>=1, @x=2, <b>=3, t=4, <c>=5, <b>=6
        let xml = r#"<a x="0"><b>t</b><c><b/></c></a>"#;
        let e = streaming();
        let q = parse_xpath("//b").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(nodes(&out), vec![3, 6]);
        let doc = minctx_xml::parse(xml).unwrap();
        let oracle = e.evaluate(&doc, &q).unwrap();
        let ids: Vec<u32> = oracle
            .as_node_set()
            .unwrap()
            .iter()
            .map(|n| n.index() as u32)
            .collect();
        assert_eq!(nodes(&out), ids);
    }

    #[test]
    fn streams_attribute_and_leaf_matches_with_values() {
        let xml = r#"<a><b x="v1"/><b x="v2">txt</b><!--note--></a>"#;
        let e = streaming();
        let q = parse_xpath("//@x").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        let StreamValue::Nodes(ms) = out.streamed().unwrap() else {
            panic!()
        };
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].kind, StreamNodeKind::Attribute);
        assert_eq!(ms[0].name.as_deref(), Some("x"));
        assert_eq!(ms[0].value.as_deref(), Some("v1"));
        let q = parse_xpath("//comment()").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        let StreamValue::Nodes(ms) = out.streamed().unwrap() else {
            panic!()
        };
        assert_eq!(ms[0].value.as_deref(), Some("note"));
    }

    #[test]
    fn predicates_buffer_until_resolved() {
        // The <b> candidates resolve only when their subtree proves or
        // fails [c]; emission order must still be document order.
        let xml = "<r><b><x/><c/></b><b><x/></b><b><d><c/></d></b></r>";
        let e = streaming();
        let q = parse_xpath("//b[c]").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(nodes(&out).len(), 1);
        let q = parse_xpath("//b[.//c]").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(nodes(&out).len(), 2);
        let q = parse_xpath("//b[not(c)]").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(nodes(&out).len(), 2);
    }

    #[test]
    fn count_and_exists_results() {
        let xml = r#"<a><b i="1"/><b/><b i="2"/></a>"#;
        let e = streaming();
        let q = parse_xpath("count(//b[@i])").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(out.streamed(), Some(&StreamValue::Number(2.0)));
        let q = parse_xpath("boolean(//b[@i = '2'])").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(out.streamed(), Some(&StreamValue::Boolean(true)));
        let q = parse_xpath("boolean(//zzz)").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(out.streamed(), Some(&StreamValue::Boolean(false)));
    }

    #[test]
    fn exists_short_circuits_before_malformed_tail() {
        // The first <b> answers the query; the garbage after it is never
        // reached.  The same input errors when fully parsed.
        let xml = "<a><b/><unclosed></a>";
        let e = streaming();
        let q = parse_xpath("boolean(//b)").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(out.streamed(), Some(&StreamValue::Boolean(true)));
        assert!(minctx_xml::parse(xml).is_err());
        // Guarded matches short-circuit too, once every guard is already
        // provable: the [@x] atom resolves at the very <b> event.
        let xml = r#"<a><b x="1"/><unclosed></a>"#;
        let q = parse_xpath("boolean(//b[@x])").unwrap();
        let out = e.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(out.streamed(), Some(&StreamValue::Boolean(true)));
        // …but a guard that cannot be proven mid-stream (not-exists) keeps
        // reading and therefore sees the malformed tail.
        let q = parse_xpath("boolean(//b[not(c)])").unwrap();
        assert!(matches!(
            e.evaluate_reader_str(&q, xml),
            Err(EvalError::Xml(_))
        ));
    }

    #[test]
    fn malformed_input_reports_positions_through_eval_error() {
        let e = streaming();
        let q = parse_xpath("//b").unwrap();
        let err = e.evaluate_reader_str(&q, "<a>\n<b></c>\n</a>").unwrap_err();
        match err {
            EvalError::Xml(x) => {
                assert_eq!(x.line(), 2);
                assert!(x.column() > 1);
            }
            other => panic!("expected EvalError::Xml, got {other}"),
        }
        // The reader path reports the same error.
        let err = e
            .evaluate_reader(&q, "<a>\n<b></c>\n</a>".as_bytes())
            .unwrap_err();
        assert!(matches!(err, EvalError::Xml(_)));
    }

    #[test]
    fn arena_fallback_reports_reason_and_hands_back_the_document() {
        let e = streaming();
        let q = parse_xpath("//b[position() = 2]").unwrap();
        let out = e.evaluate_reader_str(&q, "<a><b/><b/></a>").unwrap();
        let StreamOutcome::Arena { reason, doc, value } = out else {
            panic!("positional predicate must fall back");
        };
        assert_eq!(reason, crate::fragment::reason::POSITIONAL);
        assert_eq!(doc.element_count(), 3);
        assert_eq!(value.as_node_set().unwrap().len(), 1);
    }

    #[test]
    fn arena_strategies_always_fall_back() {
        let e = Engine::new(Strategy::MinContext);
        let q = parse_xpath("//b").unwrap();
        let out = e.evaluate_reader_str(&q, "<a><b/></a>").unwrap();
        assert_eq!(out.fallback_reason(), Some(REASON_ARENA_STRATEGY));
    }

    #[test]
    fn optimizer_widens_streaming_through_evaluate_reader() {
        // Raw `//a/b/..` has a reverse step → arena; rewritten it streams.
        let q = parse_xpath("//a/b/..").unwrap();
        let xml = "<r><a><b/></a><a/></r>";
        // Pin the optimizer explicitly: the default tracks
        // MINCTX_NO_OPTIMIZER (the no-optimizer CI job runs this test).
        let on = streaming().with_optimizer(true);
        let out = on.evaluate_reader_str(&q, xml).unwrap();
        assert!(out.is_streamed(), "rewritten query should stream");
        let off = streaming().with_optimizer(false);
        let out = off.evaluate_reader_str(&q, xml).unwrap();
        assert_eq!(
            out.fallback_reason(),
            Some(crate::fragment::reason::REVERSE_AXIS)
        );
    }

    #[test]
    fn streaming_pass_emits_a_stream_span() {
        use minctx_obs::{AttrValue, CollectSink, Phase, Recorder};
        let sink = std::sync::Arc::new(CollectSink::new());
        let e = streaming().with_recorder(Recorder::to_sink(sink.clone()));
        let q = parse_xpath("count(//b)").unwrap();
        let out = e.evaluate_reader_str(&q, "<a><b/><b/></a>").unwrap();
        assert!(out.is_streamed());
        let spans = sink.take();
        assert_eq!(spans.len(), 1, "one Stream span per one-pass run");
        assert_eq!(spans[0].phase, Phase::Stream);
        assert_eq!(spans[0].attr("ok"), Some(&AttrValue::U64(1)));
        assert!(matches!(spans[0].attr("fuel"), Some(&AttrValue::U64(f)) if f > 0));
        // The arena fallback traces through the engine's usual phases
        // instead (parse of the *query string* is long past: Rewrite,
        // Compile, Evaluate).
        let q = parse_xpath("//b[position() = 2]").unwrap();
        e.evaluate_reader_str(&q, "<a><b/><b/></a>").unwrap();
        let phases: Vec<Phase> = sink.take().iter().map(|s| s.phase).collect();
        assert!(!phases.contains(&Phase::Stream));
        assert!(phases.contains(&Phase::Evaluate));
    }

    #[test]
    fn root_query_matches_ordinal_zero() {
        let e = streaming();
        let q = parse_xpath("/").unwrap();
        let out = e.evaluate_reader_str(&q, "<a/>").unwrap();
        assert_eq!(nodes(&out), vec![0]);
    }
}

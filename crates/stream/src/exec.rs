//! The one-pass stack-automaton executor.
//!
//! [`Exec`] consumes the tokenizer's event stream and maintains, per open
//! element, a **frame** of active automaton states:
//!
//! * a `child` state expects its step to match among the element's
//!   children;
//! * a `desc` state expects its step anywhere in the element's subtree
//!   (it is carried down into every nested frame).
//!
//! When a node matches a state's step, the step's predicate instances are
//! opened (one **group** per predicate, one **atom** cell per existence
//! atom, each atom backed by a sub-program started at the matching node)
//! and the state advances: `self` and or-`self` parts are checked
//! inline, `attribute` steps are checked against the start tag's
//! attributes, and child/descendant expectations are registered in the
//! node's frame.  Completing the final step of the main program records a
//! **candidate** (the node's would-be pre-order id plus the guard chain
//! of every predicate group opened along its derivation); completing an
//! atom program records a witness for that atom.
//!
//! Nothing is ever un-recorded: atoms are monotone (false until a witness
//! arrives), so element close needs no bookkeeping — an existence
//! predicate that never found a witness simply stays false.  At end of
//! stream, [`Exec::finalize`] evaluates every candidate's guard chain
//! (memoized; the dependency order follows creation order, so the
//! recursion terminates), then sorts and deduplicates by pre-order id —
//! this is the *buffered emission* that restores document order when the
//! same node is derivable more than once or attribute matches from
//! distinct states interleave.
//!
//! Memory is `O(depth · active states + candidates + results)` — no
//! structure is proportional to the document.

use crate::compile::{CStep, Lit, PExpr, PredTree, ProgId, ResultKind, SAxis, STest, StreamQuery};
use minctx_core::value::string_to_number;
use minctx_syntax::CmpOp;
use std::rc::Rc;

/// The kind of a matched (or visited) node, mirroring the arena's
/// `NodeKind` without interned names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamNodeKind {
    Root,
    Element,
    Attribute,
    Text,
    Comment,
    Pi,
}

/// One matched node of a streamed node-set query, in document order.
///
/// `ordinal` is the pre-order index the arena builder would assign the
/// node when parsing the same input under the same options — i.e. it
/// equals `NodeId::index()` of the corresponding node in
/// `minctx_xml::parse(...)`, which is what the differential suite checks.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMatch {
    pub ordinal: u32,
    pub kind: StreamNodeKind,
    /// Element tag / attribute name / PI target.
    pub name: Option<Box<str>>,
    /// The node's own string value where it is locally available:
    /// attribute value, text content, comment content, PI data.  `None`
    /// for elements (an element's string value spans its subtree; use the
    /// arena path when you need it).
    pub value: Option<Box<str>>,
}

/// What a streamed evaluation produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamValue {
    /// Matched nodes in document order, deduplicated.
    Nodes(Vec<StreamMatch>),
    /// `count(π)`.
    Number(f64),
    /// `boolean(π)`.
    Boolean(bool),
}

impl StreamValue {
    /// The matched ordinals, for node-set results.
    pub fn ordinals(&self) -> Option<Vec<u32>> {
        match self {
            StreamValue::Nodes(ms) => Some(ms.iter().map(|m| m.ordinal).collect()),
            _ => None,
        }
    }
}

/// A link in a derivation's guard chain: the predicate groups opened at
/// one step, plus the chain accumulated before it.
struct GuardNode {
    groups: Vec<usize>,
    parent: Guards,
}

type Guards = Option<Rc<GuardNode>>;

/// Which completion a state feeds.
#[derive(Clone, Copy)]
enum Target {
    Main,
    Atom(usize),
}

/// An active automaton state: program `prog` waiting for `step` to match.
/// Cloning is cheap — the guard chain is shared through `Rc`.
#[derive(Clone)]
struct State {
    prog: ProgId,
    step: u16,
    target: Target,
    guards: Guards,
}

/// Per-open-element active states.
#[derive(Default)]
struct Frame {
    child: Vec<State>,
    desc: Vec<State>,
}

/// One opened predicate instance.
struct Group<'q> {
    tree: &'q PredTree,
    atom_base: usize,
}

/// One existence-atom cell: monotone false → true.
#[derive(Default)]
struct Atom {
    /// An unconditional witness was found.
    definite: bool,
    /// Guard chains of conditional witnesses (evaluated at finalize).
    witnesses: Vec<Guards>,
    /// Finalize-time memo.
    resolved: Option<bool>,
}

/// A completed main-path match awaiting guard resolution.
struct Candidate {
    ordinal: u32,
    guards: Guards,
    desc: Option<StreamMatch>,
}

/// A node as seen by the automaton while its event is being processed.
#[derive(Clone, Copy)]
pub(crate) struct NodeView<'e> {
    ordinal: u32,
    kind: StreamNodeKind,
    name: Option<&'e str>,
    /// The node's own string value, where locally available.
    content: Option<&'e str>,
    /// For elements: the start tag's attributes (values decoded).
    attrs: Option<&'e [(String, String)]>,
    /// Whether child/descendant expectations can be registered (elements
    /// and the root have frames; leaves and attributes do not).
    has_frame: bool,
}

pub(crate) struct Exec<'q> {
    sq: &'q StreamQuery,
    frames: Vec<Frame>,
    /// Frame recycling pool: steady-state evaluation allocates nothing
    /// per element once the deepest path has been visited.
    spare: Vec<Frame>,
    /// Scratch buffer for the states matched by the current event.
    matched: Vec<State>,
    groups: Vec<Group<'q>>,
    group_vals: Vec<Option<bool>>,
    atoms: Vec<Atom>,
    pending: Vec<Candidate>,
    /// `Exists` resolved unconditionally true: stop the stream.
    done: bool,
}

impl<'q> Exec<'q> {
    pub fn new(sq: &'q StreamQuery) -> Exec<'q> {
        let mut ex = Exec {
            sq,
            frames: vec![Frame::default()],
            spare: Vec::new(),
            matched: Vec::new(),
            groups: Vec::new(),
            group_vals: Vec::new(),
            atoms: Vec::new(),
            pending: Vec::new(),
            done: false,
        };
        // Launch the main program at the document root (ordinal 0).
        let root = NodeView {
            ordinal: 0,
            kind: StreamNodeKind::Root,
            name: None,
            content: None,
            attrs: None,
            has_frame: true,
        };
        if ex.sq.programs[0].steps.is_empty() {
            // `/` — the root node itself is the result.
            ex.complete(Target::Main, None, &root);
        } else {
            ex.start_from(0, 0, Target::Main, None, &root);
        }
        ex
    }

    /// Whether the stream can stop early (existence answered).
    pub fn finished(&self) -> bool {
        self.done
    }

    // ---- event entry points ------------------------------------------

    pub fn start_element(&mut self, name: &str, attrs: &[(String, String)], ordinal: u32) {
        let view = NodeView {
            ordinal,
            kind: StreamNodeKind::Element,
            name: Some(name),
            content: None,
            attrs: Some(attrs),
            has_frame: true,
        };
        // Collect the parent frame's states this element satisfies.
        let mut matched = std::mem::take(&mut self.matched);
        matched.clear();
        {
            let top = self.frames.last().expect("root frame always present");
            for st in top.child.iter().chain(top.desc.iter()) {
                if self.step_of(st).test_matches(&view) {
                    matched.push(st.clone());
                }
            }
        }
        // Open this element's frame; descendant expectations propagate.
        let mut frame = self.spare.pop().unwrap_or_default();
        frame.child.clear();
        frame.desc.clear();
        {
            let top = self.frames.last().expect("root frame always present");
            frame.desc.extend(top.desc.iter().cloned());
        }
        self.frames.push(frame);
        for st in &matched {
            self.advance(st.prog, st.step, st.target, st.guards.clone(), &view);
        }
        self.matched = matched;
    }

    pub fn end_element(&mut self) {
        let f = self.frames.pop().expect("end without start");
        debug_assert!(!self.frames.is_empty(), "root frame popped");
        self.spare.push(f);
    }

    /// A text, comment or PI event (one leaf node).
    pub fn leaf(&mut self, kind: StreamNodeKind, name: Option<&str>, content: &str, ordinal: u32) {
        let view = NodeView {
            ordinal,
            kind,
            name,
            content: Some(content),
            attrs: None,
            has_frame: false,
        };
        let mut matched = std::mem::take(&mut self.matched);
        matched.clear();
        {
            let top = self.frames.last().expect("root frame always present");
            for st in top.child.iter().chain(top.desc.iter()) {
                if self.step_of(st).test_matches(&view) {
                    matched.push(st.clone());
                }
            }
        }
        for st in &matched {
            self.advance(st.prog, st.step, st.target, st.guards.clone(), &view);
        }
        self.matched = matched;
    }

    // ---- automaton core ----------------------------------------------

    fn step_of(&self, st: &State) -> &'q CStep {
        &self.sq.programs[st.prog].steps[st.step as usize]
    }

    /// `view` just matched step `step` of `prog` (test already checked):
    /// apply the step's value check and predicates, then complete the
    /// program or start its next step at `view`.
    fn advance(
        &mut self,
        prog: ProgId,
        step: u16,
        target: Target,
        guards: Guards,
        view: &NodeView,
    ) {
        // Borrow the step through the compiled query's own lifetime so the
        // recursive calls below can take `&mut self`.
        let sq: &'q StreamQuery = self.sq;
        let cstep = &sq.programs[prog].steps[step as usize];
        if let Some((op, lit)) = &cstep.value_check {
            match view.content {
                Some(s) if scalar_cmp(*op, s, lit) => {}
                _ => return,
            }
        }
        let mut guards = guards;
        if !cstep.preds.is_empty() {
            let mut gids = Vec::with_capacity(cstep.preds.len());
            for tree in &cstep.preds {
                let gid = self.groups.len();
                let atom_base = self.atoms.len();
                self.atoms
                    .extend(tree.atom_progs.iter().map(|_| Atom::default()));
                self.groups.push(Group { tree, atom_base });
                self.group_vals.push(None);
                gids.push(gid);
                for (slot, &p) in tree.atom_progs.iter().enumerate() {
                    // Atom programs run from the candidate node with a
                    // fresh guard chain: their own truth is what feeds the
                    // group, and their inner predicates guard only their
                    // own witnesses.
                    self.start_from(p, 0, Target::Atom(atom_base + slot), None, view);
                }
            }
            guards = Some(Rc::new(GuardNode {
                groups: gids,
                parent: guards,
            }));
        }
        if step as usize + 1 == sq.programs[prog].steps.len() {
            self.complete(target, guards, view);
        } else {
            self.start_from(prog, step + 1, target, guards, view);
        }
    }

    /// Begins step `step` of `prog` at origin `view`: inline `self` /
    /// or-`self` / `attribute` parts, frame registration for the rest.
    fn start_from(
        &mut self,
        prog: ProgId,
        step: u16,
        target: Target,
        guards: Guards,
        view: &NodeView,
    ) {
        let sq: &'q StreamQuery = self.sq;
        let cstep = &sq.programs[prog].steps[step as usize];
        match cstep.axis {
            SAxis::SelfAxis => {
                if cstep.test_matches(view) {
                    self.advance(prog, step, target, guards, view);
                }
            }
            SAxis::Attribute => {
                if let Some(attrs) = view.attrs {
                    for (i, (name, value)) in attrs.iter().enumerate() {
                        let av = NodeView {
                            ordinal: view.ordinal + 1 + i as u32,
                            kind: StreamNodeKind::Attribute,
                            name: Some(name),
                            content: Some(value),
                            attrs: None,
                            has_frame: false,
                        };
                        if cstep.test_matches(&av) {
                            self.advance(prog, step, target, guards.clone(), &av);
                        }
                    }
                }
            }
            SAxis::Child | SAxis::Descendant | SAxis::DescendantOrSelf => {
                if cstep.axis == SAxis::DescendantOrSelf && cstep.test_matches(view) {
                    self.advance(prog, step, target, guards.clone(), view);
                }
                if view.has_frame {
                    let st = State {
                        prog,
                        step,
                        target,
                        guards,
                    };
                    let frame = self.frames.last_mut().expect("frame for view");
                    if cstep.axis == SAxis::Child {
                        frame.child.push(st);
                    } else {
                        frame.desc.push(st);
                    }
                }
            }
        }
    }

    fn complete(&mut self, target: Target, guards: Guards, view: &NodeView) {
        match target {
            Target::Main => {
                // An existence query stops the stream as soon as a match
                // is *definitely* in: no guards, or every guard group
                // already provable from monotone atom state (e.g. the
                // `[@id]` atom of `boolean(//item[@id])` resolves at the
                // very event that completes the candidate).
                if self.sq.result == ResultKind::Exists && self.chain_definitely_true(&guards) {
                    self.done = true;
                    return;
                }
                let desc = (self.sq.result == ResultKind::Nodes).then(|| StreamMatch {
                    ordinal: view.ordinal,
                    kind: view.kind,
                    name: view.name.map(Into::into),
                    value: view.content.map(Into::into),
                });
                self.pending.push(Candidate {
                    ordinal: view.ordinal,
                    guards,
                    desc,
                });
            }
            Target::Atom(aid) => {
                let atom = &mut self.atoms[aid];
                if atom.definite {
                    return;
                }
                match guards {
                    None => {
                        atom.definite = true;
                        atom.witnesses.clear();
                    }
                    some => atom.witnesses.push(some),
                }
            }
        }
    }

    /// Whether a guard chain is already provably true *mid-stream*.
    /// Atoms are monotone (false may still become true), so only
    /// positive evidence counts: an atom proves nothing under `not()`
    /// until end of stream, while constants prove either polarity.
    fn chain_definitely_true(&self, guards: &Guards) -> bool {
        fn def_true(ex: &Exec<'_>, e: &PExpr, base: usize) -> bool {
            match e {
                PExpr::Atom(slot) => ex.atoms[base + slot].definite,
                PExpr::Not(x) => def_false(ex, x, base),
                PExpr::And(x, y) => def_true(ex, x, base) && def_true(ex, y, base),
                PExpr::Or(x, y) => def_true(ex, x, base) || def_true(ex, y, base),
                PExpr::Const(b) => *b,
            }
        }
        fn def_false(ex: &Exec<'_>, e: &PExpr, base: usize) -> bool {
            match e {
                // A not-yet-witnessed atom may still find a witness.
                PExpr::Atom(_) => false,
                PExpr::Not(x) => def_true(ex, x, base),
                PExpr::And(x, y) => def_false(ex, x, base) || def_false(ex, y, base),
                PExpr::Or(x, y) => def_false(ex, x, base) && def_false(ex, y, base),
                PExpr::Const(b) => !*b,
            }
        }
        let mut cur = guards.clone();
        while let Some(node) = cur {
            for &gid in &node.groups {
                let g = &self.groups[gid];
                if !def_true(self, &g.tree.expr, g.atom_base) {
                    return false;
                }
            }
            cur = node.parent.clone();
        }
        true
    }

    // ---- finalize ----------------------------------------------------

    /// Resolves every candidate's guards, then sorts and deduplicates by
    /// pre-order id (buffered emission: restores document order).
    pub fn finalize(mut self) -> StreamValue {
        if self.done {
            return StreamValue::Boolean(true);
        }
        let mut candidates = std::mem::take(&mut self.pending);
        let mut accepted: Vec<(u32, Option<StreamMatch>)> = Vec::new();
        for c in candidates.drain(..) {
            if self.chain_true(&c.guards) {
                accepted.push((c.ordinal, c.desc));
            }
        }
        accepted.sort_by_key(|(o, _)| *o);
        accepted.dedup_by_key(|(o, _)| *o);
        match self.sq.result {
            ResultKind::Nodes => StreamValue::Nodes(
                accepted
                    .into_iter()
                    .map(|(_, d)| d.expect("Nodes candidates capture a description"))
                    .collect(),
            ),
            ResultKind::Count => StreamValue::Number(accepted.len() as f64),
            ResultKind::Exists => StreamValue::Boolean(!accepted.is_empty()),
        }
    }

    fn chain_true(&mut self, guards: &Guards) -> bool {
        let mut cur = guards.clone();
        while let Some(node) = cur {
            for &gid in &node.groups {
                if !self.group_true(gid) {
                    return false;
                }
            }
            cur = node.parent.clone();
        }
        true
    }

    /// Memoized group evaluation.  Groups opened at a node can only
    /// depend (through atom witnesses) on groups opened strictly later,
    /// so the recursion is well-founded.
    fn group_true(&mut self, gid: usize) -> bool {
        if let Some(v) = self.group_vals[gid] {
            return v;
        }
        let (tree, base) = {
            let g = &self.groups[gid];
            (g.tree, g.atom_base)
        };
        let v = self.pexpr_true(&tree.expr, base);
        self.group_vals[gid] = Some(v);
        v
    }

    fn pexpr_true(&mut self, e: &PExpr, base: usize) -> bool {
        match e {
            PExpr::Atom(slot) => self.atom_true(base + slot),
            PExpr::Not(x) => !self.pexpr_true(x, base),
            PExpr::And(x, y) => self.pexpr_true(x, base) && self.pexpr_true(y, base),
            PExpr::Or(x, y) => self.pexpr_true(x, base) || self.pexpr_true(y, base),
            PExpr::Const(b) => *b,
        }
    }

    fn atom_true(&mut self, aid: usize) -> bool {
        if self.atoms[aid].definite {
            return true;
        }
        if let Some(v) = self.atoms[aid].resolved {
            return v;
        }
        let witnesses = std::mem::take(&mut self.atoms[aid].witnesses);
        let v = witnesses.iter().any(|w| self.chain_true(w));
        self.atoms[aid].resolved = Some(v);
        v
    }
}

impl CStep {
    /// Whether a node passes this step's (axis-resolved) test.
    fn test_matches(&self, view: &NodeView) -> bool {
        match &self.test {
            STest::AnyNode => true,
            STest::Element => view.kind == StreamNodeKind::Element,
            STest::ElementNamed(n) => {
                view.kind == StreamNodeKind::Element && view.name == Some(&**n)
            }
            STest::AnyAttr => view.kind == StreamNodeKind::Attribute,
            STest::AttrNamed(n) => {
                view.kind == StreamNodeKind::Attribute && view.name == Some(&**n)
            }
            STest::Text => view.kind == StreamNodeKind::Text,
            STest::Comment => view.kind == StreamNodeKind::Comment,
            STest::PiAny => view.kind == StreamNodeKind::Pi,
            STest::PiNamed(n) => view.kind == StreamNodeKind::Pi && view.name == Some(&**n),
            STest::Never => false,
        }
    }
}

/// `strval op literal`, with the §3.4 scalar dispatch (numbers compare
/// numerically; strings compare textually under equality, numerically
/// under the relational operators) — shared with the arena evaluators
/// through [`string_to_number`].
fn scalar_cmp(op: CmpOp, s: &str, lit: &Lit) -> bool {
    match lit {
        Lit::Num(n) => cmp_num(op, string_to_number(s), *n),
        Lit::Str(t) => {
            if op.is_equality() {
                match op {
                    CmpOp::Eq => s == &**t,
                    _ => s != &**t,
                }
            } else {
                cmp_num(op, string_to_number(s), string_to_number(t))
            }
        }
    }
}

fn cmp_num(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

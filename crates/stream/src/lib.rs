//! # minctx-stream — one-pass SAX-style XPath evaluation
//!
//! The streaming evaluation subsystem: answers the **forward-axis
//! fragment** of XPath 1.0 in a single pass over XML *text* — an
//! [`io::Read`](std::io::Read) or a `&str` — without materializing a
//! [`Document`](minctx_xml::Document) arena.  `//item[@id]` over a
//! multi-gigabyte feed runs in memory proportional to document depth
//! plus the result, not the input (cf. the tree-automata execution model
//! of *XPath Whole Query Optimization*, PAPERS.md).
//!
//! Three layers:
//!
//! * the shared pull [`Tokenizer`](minctx_xml::token::Tokenizer) in
//!   `minctx-xml` — the workspace's one XML lexer, consumed by both the
//!   DOM builder and this crate, which is why streamed matches carry the
//!   *exact* pre-order ordinals the arena would assign;
//! * the [stream compiler](crate::compile::StreamQuery) and
//!   [classifier]([`fragment::classify`]): the rewritten query IR is
//!   lowered into a stack-machine automaton (per-open-element state
//!   frames, predicate subautomata, buffered emission), or the first
//!   non-streamable construct is reported;
//! * engine integration: [`StreamingEngine::evaluate_reader`] extends
//!   [`Engine`](minctx_core::Engine) — under
//!   [`Strategy::Streaming`](minctx_core::Strategy) it streams what the
//!   classifier accepts and falls back to parse-then-evaluate otherwise,
//!   reporting which construct forced the fallback.
//!
//! ```
//! use minctx_core::{Engine, Strategy};
//! use minctx_stream::{StreamingEngine, StreamValue};
//!
//! let engine = Engine::new(Strategy::Streaming);
//! let query = minctx_syntax::parse_xpath("//item[@id]").unwrap();
//! let xml = r#"<site><item id="a"/><item/><item id="b"/></site>"#;
//! let out = engine.evaluate_reader_str(&query, xml).unwrap();
//! let StreamValue::Nodes(matches) = out.streamed().unwrap() else { panic!() };
//! assert_eq!(matches.len(), 2); // no Document was built
//! ```

#![forbid(unsafe_code)]

pub mod compile;
mod exec;
pub mod fragment;

mod engine;

pub use engine::{StreamOutcome, StreamingEngine, REASON_ARENA_STRATEGY};
pub use exec::{StreamMatch, StreamNodeKind, StreamValue};
pub use fragment::{classify, Streamability};

//! The streamable-fragment classifier.
//!
//! [`classify`] decides statically — before any input is read — whether a
//! lowered [`Query`] can be answered by the one-pass streaming engine, and
//! if not, which construct forces the arena path.  It is implemented *as*
//! the stream compiler with the compiled automaton discarded, so the
//! classifier and the engine can never disagree about the fragment.
//!
//! The accepted fragment, precisely:
//!
//! * the query root is a location path, `count(path)` or `boolean(path)`;
//! * the path starts at the root (absolute) or at the evaluation context
//!   (which for whole-document streaming *is* the root);
//! * every step's axis is `self`, `child`, `descendant`,
//!   `descendant-or-self` or `attribute`;
//! * every predicate is position-free (no `position()`/`last()` in its
//!   [`Relev`](minctx_syntax::Relev) set) and built from `and` / `or` /
//!   `not(...)` / `true()` / `false()` over relative forward paths
//!   (existence tests) and `π op literal` comparisons whose `π` ends in a
//!   node that carries its own string value (attribute, `text()`,
//!   `comment()`, `processing-instruction()`).
//!
//! Classify the *rewritten* query (post [`minctx_core::rewrite`]) to get
//! the widest fragment: the rewriter fuses `//`-chains and normalizes
//! reverse axes away where possible, turning e.g. `a/parent::node()`
//! (reverse, rejected) into `self::node()[a]` (accepted).

use crate::compile;
use minctx_syntax::Query;
use std::fmt;

/// The classifier's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Streamability {
    /// The one-pass engine answers this query exactly.
    Streamable,
    /// The named construct needs a materialized document.
    NeedsArena(&'static str),
}

impl Streamability {
    /// Whether the query streams.
    pub fn is_streamable(self) -> bool {
        matches!(self, Streamability::Streamable)
    }

    /// The fallback reason, if any.
    pub fn reason(self) -> Option<&'static str> {
        match self {
            Streamability::Streamable => None,
            Streamability::NeedsArena(r) => Some(r),
        }
    }
}

impl fmt::Display for Streamability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Streamability::Streamable => f.write_str("streamable"),
            Streamability::NeedsArena(r) => write!(f, "needs arena: {r}"),
        }
    }
}

/// Classifies a query for streaming evaluation.  Static — reads no input,
/// builds no document.
pub fn classify(query: &Query) -> Streamability {
    match compile::compile(query) {
        Ok(_) => Streamability::Streamable,
        Err(r) => Streamability::NeedsArena(r),
    }
}

/// The stable reason strings [`classify`] can report (re-exported from the
/// compiler so tests and diagnostics can match on them).
pub use crate::compile::reason;

#[cfg(test)]
mod tests {
    use super::*;
    use minctx_core::rewrite;
    use minctx_syntax::parse_xpath;

    #[test]
    fn rewriting_widens_the_fragment() {
        // Raw `//a/b/..` has a reverse step; the rewriter flips it into a
        // forward existence test, which classifies as streamable.
        let q = parse_xpath("//a/b/..").unwrap();
        assert_eq!(
            classify(&q),
            Streamability::NeedsArena(reason::REVERSE_AXIS)
        );
        assert!(classify(&rewrite(&q)).is_streamable());
    }

    #[test]
    fn verdict_accessors() {
        let q = parse_xpath("//a[2]").unwrap();
        let v = classify(&q);
        assert!(!v.is_streamable());
        assert_eq!(v.reason(), Some(reason::POSITIONAL));
        assert!(v.to_string().contains("position"));
        assert_eq!(
            classify(&parse_xpath("//a").unwrap()),
            Streamability::Streamable
        );
    }
}

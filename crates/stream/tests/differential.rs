//! The streaming differential suite: `Strategy::Streaming` against the
//! MINCONTEXT oracle on the shared corpus.
//!
//! Every corpus document is serialized back to XML text; every corpus
//! query is sent through `evaluate_reader` (both the `&str` and the
//! `io::Read` paths, optimizer on and off).  Queries the classifier
//! accepts must produce exactly the oracle's answer — node-set results
//! are compared ordinal-for-ordinal against the `NodeId`s MINCONTEXT
//! computes on a parse of the *same* serialized text, which pins the
//! streamer's pre-order numbering to the arena builder's.  Queries the
//! classifier rejects must take the arena fallback and still agree with
//! the oracle (they share the evaluator, so this also proves the
//! fallback plumbing loses nothing).

use minctx_bench::corpus::{documents, QUERIES};
use minctx_bench::values_agree;
use minctx_core::{Engine, Strategy, Value};
use minctx_stream::{classify, StreamOutcome, StreamValue, Streamability, StreamingEngine};
use minctx_syntax::{parse_xpath, Query};
use minctx_xml::serialize::to_xml_string;
use minctx_xml::{parse, Document};

/// Compares a streamed value against the oracle's arena value.
fn assert_stream_agrees(doc: &Document, got: &StreamValue, want: &Value, ctx: &str) {
    match (got, want) {
        (StreamValue::Nodes(ms), Value::NodeSet(ns)) => {
            let got_ids: Vec<usize> = ms.iter().map(|m| m.ordinal as usize).collect();
            let want_ids: Vec<usize> = ns.iter().map(|n| n.index()).collect();
            assert_eq!(got_ids, want_ids, "{ctx}: ordinals diverge");
            // Matched names must agree with the arena's labels too.
            for m in ms {
                let id = minctx_xml::NodeId::from_index(m.ordinal as usize);
                if let Some(name) = &m.name {
                    assert_eq!(doc.label_str(id), Some(&**name), "{ctx}: name of {id}");
                }
            }
        }
        (StreamValue::Number(x), Value::Number(y)) => {
            assert!((x == y) || (x.is_nan() && y.is_nan()), "{ctx}: {x} vs {y}");
        }
        (StreamValue::Boolean(x), Value::Boolean(y)) => assert_eq!(x, y, "{ctx}"),
        _ => panic!("{ctx}: shape mismatch: {got:?} vs {want:?}"),
    }
}

#[test]
fn streaming_agrees_with_mincontext_on_the_corpus() {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for (doc_name, doc) in documents() {
        let xml = to_xml_string(&doc);
        // The oracle evaluates on a parse of the same serialized text the
        // streamer reads, so pre-order ids line up by construction.
        let reparsed = parse(&xml).unwrap_or_else(|e| panic!("{doc_name}: reserialize: {e}"));
        let oracle = Engine::new(Strategy::MinContext);
        for optimize in [true, false] {
            let engine = Engine::new(Strategy::Streaming).with_optimizer(optimize);
            let oracle = oracle.clone().with_optimizer(optimize);
            for q in QUERIES {
                let query: Query = parse_xpath(q).unwrap();
                let ctx = format!("{doc_name} opt={optimize} {q:?}");
                let want = oracle.evaluate(&reparsed, &query).unwrap();
                let out = engine
                    .evaluate_reader_str(&query, &xml)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                match &out {
                    StreamOutcome::Streamed(v) => {
                        accepted += 1;
                        assert_stream_agrees(&reparsed, v, &want, &ctx);
                        // The io::Read path must agree byte-for-byte.
                        let out2 = engine.evaluate_reader(&query, xml.as_bytes()).unwrap();
                        let StreamOutcome::Streamed(v2) = &out2 else {
                            panic!("{ctx}: reader path fell back");
                        };
                        assert_eq!(v, v2, "{ctx}: str vs reader divergence");
                    }
                    StreamOutcome::Arena { value, .. } => {
                        rejected += 1;
                        assert!(
                            values_agree(value, &want),
                            "{ctx}: fallback {value:?} vs oracle {want:?}"
                        );
                    }
                }
            }
        }
    }
    // The suite is vacuous if the classifier stops accepting anything:
    // pin a healthy floor on streamed coverage (per document × optimizer
    // pass, the corpus has 140+ queries; ≥20 must stream).
    assert!(
        accepted >= 20 * 4 * 2,
        "only {accepted} streamed runs (rejected {rejected})"
    );
}

#[test]
fn classifier_verdict_matches_evaluate_reader_behavior() {
    // `classify` (on the rewritten query, mirroring an optimizing
    // engine) must predict exactly which corpus queries stream.  The
    // optimizer is pinned on: the default tracks MINCTX_NO_OPTIMIZER.
    let (_, doc) = &documents()[0];
    let xml = to_xml_string(doc);
    let engine = Engine::new(Strategy::Streaming).with_optimizer(true);
    for q in QUERIES {
        let query = parse_xpath(q).unwrap();
        let verdict = classify(&minctx_core::rewrite(&query));
        let out = engine.evaluate_reader_str(&query, &xml).unwrap();
        match verdict {
            Streamability::Streamable => {
                assert!(out.is_streamed(), "{q:?}: classifier says streamable");
            }
            Streamability::NeedsArena(reason) => {
                assert_eq!(out.fallback_reason(), Some(reason), "{q:?}");
            }
        }
    }
}

#[test]
fn streamed_known_answers_spot_check() {
    // Not vacuous: pin absolute streamed answers on the books document.
    let (_, doc) = &documents()[0];
    let xml = to_xml_string(doc);
    let e = Engine::new(Strategy::Streaming);
    let q = parse_xpath("count(//book)").unwrap();
    let out = e.evaluate_reader_str(&q, &xml).unwrap();
    assert_eq!(out.streamed(), Some(&StreamValue::Number(3.0)));
    let q = parse_xpath("//book[@year = 2000]").unwrap();
    let out = e.evaluate_reader_str(&q, &xml).unwrap();
    let Some(StreamValue::Nodes(ms)) = out.streamed() else {
        panic!("should stream")
    };
    assert_eq!(ms.len(), 2);
    let q = parse_xpath("boolean(//magazine[title])").unwrap();
    let out = e.evaluate_reader_str(&q, &xml).unwrap();
    assert_eq!(out.streamed(), Some(&StreamValue::Boolean(true)));
}

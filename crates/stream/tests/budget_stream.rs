//! Budget metering on the streaming path: the one-pass engine charges
//! per event, so fuel and deadline budgets bound how much of a stream is
//! read — `BudgetExhausted`, never a hang or a wrong partial answer.

use minctx_core::{Engine, EvalError, Exhausted, Strategy};
use minctx_stream::{StreamValue, StreamingEngine};
use minctx_syntax::parse_xpath;
use std::time::Duration;

fn big_xml(items: usize) -> String {
    let mut s = String::from("<a>");
    for i in 0..items {
        s.push_str(&format!("<b i=\"{i}\">x</b>"));
    }
    s.push_str("</a>");
    s
}

#[test]
fn streaming_exhausts_a_tiny_fuel_budget() {
    let xml = big_xml(500);
    let q = parse_xpath("count(//b)").unwrap();
    let e = Engine::new(Strategy::Streaming).with_budget(40);
    let err = e.evaluate_reader_str(&q, &xml).unwrap_err();
    assert_eq!(
        err,
        EvalError::BudgetExhausted {
            cause: Exhausted::Fuel { fuel: 40 }
        }
    );
    // The reader path meters identically.
    let err = e.evaluate_reader(&q, xml.as_bytes()).unwrap_err();
    assert!(matches!(err, EvalError::BudgetExhausted { .. }));
}

#[test]
fn streaming_honors_an_expired_deadline() {
    let xml = big_xml(500);
    let q = parse_xpath("count(//b)").unwrap();
    let e = Engine::new(Strategy::Streaming).with_timeout(Duration::ZERO);
    let err = e.evaluate_reader_str(&q, &xml).unwrap_err();
    assert_eq!(
        err,
        EvalError::BudgetExhausted {
            cause: Exhausted::Deadline
        }
    );
}

#[test]
fn sufficient_fuel_streams_to_the_same_answer() {
    let xml = big_xml(100);
    let q = parse_xpath("count(//b[@i])").unwrap();
    let unmetered = Engine::new(Strategy::Streaming)
        .evaluate_reader_str(&q, &xml)
        .unwrap();
    let metered = Engine::new(Strategy::Streaming)
        .with_budget(1_000_000)
        .with_timeout(Duration::from_secs(600))
        .evaluate_reader_str(&q, &xml)
        .unwrap();
    assert_eq!(unmetered.streamed(), metered.streamed());
    assert_eq!(metered.streamed(), Some(&StreamValue::Number(100.0)));
}

#[test]
fn short_circuit_beats_the_meter() {
    // An existence query answered by the first element never reads (or
    // charges) the rest of the stream: tiny fuel is still enough.
    let xml = big_xml(500);
    let q = parse_xpath("boolean(//b)").unwrap();
    let e = Engine::new(Strategy::Streaming).with_budget(40);
    let out = e.evaluate_reader_str(&q, &xml).unwrap();
    assert_eq!(out.streamed(), Some(&StreamValue::Boolean(true)));
}

#[test]
fn arena_fallback_is_metered_too() {
    // A positional predicate forces the arena path, which meters under
    // the same engine budget via the arena evaluators.
    let xml = big_xml(500);
    let q = parse_xpath("//b[position() = 2]").unwrap();
    let e = Engine::new(Strategy::Streaming)
        .with_optimizer(false)
        .with_budget(40);
    let err = e.evaluate_reader_str(&q, &xml).unwrap_err();
    assert!(matches!(err, EvalError::BudgetExhausted { .. }), "{err:?}");
}

#[test]
fn depth_limit_guards_the_streaming_path() {
    // An adversarially deep document must come back as a clean
    // `EvalError::Xml(TooDeep)` from the one-pass engine — constant
    // memory is the streaming path's whole point, and an attacker
    // nesting elements must not turn the open-tag stack into a
    // memory bomb.
    use minctx_xml::{ParseOptions, XmlErrorKind};
    let deep: String = "<d>".repeat(3000) + &"</d>".repeat(3000);
    let q = parse_xpath("count(//d)").unwrap();
    let e = Engine::new(Strategy::Streaming);

    let opts = ParseOptions {
        max_element_depth: 64,
        ..ParseOptions::default()
    };
    let err = e
        .evaluate_reader_str_with_options(&q, &deep, &opts)
        .unwrap_err();
    match err {
        EvalError::Xml(x) => {
            assert!(
                matches!(x.kind(), XmlErrorKind::TooDeep { limit: 64 }),
                "{x:?}"
            );
        }
        other => panic!("expected XML depth error, got {other:?}"),
    }

    // The default limit (1024) also cuts off a 3000-deep chain, on the
    // reader path too.
    let err = e.evaluate_reader(&q, deep.as_bytes()).unwrap_err();
    assert!(
        matches!(&err, EvalError::Xml(x) if matches!(x.kind(), XmlErrorKind::TooDeep { .. })),
        "{err:?}"
    );

    // Within the limit nothing changes.
    let ok: String = "<d>".repeat(64).to_string() + &"</d>".repeat(64);
    let out = e.evaluate_reader_str_with_options(&q, &ok, &opts).unwrap();
    assert_eq!(out.streamed(), Some(&StreamValue::Number(64.0)));
}

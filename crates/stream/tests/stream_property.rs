//! Randomized streaming-soundness property test.
//!
//! A seeded generator (xorshift, shared with the other property suites)
//! emits random *forward-fragment* queries — step chains over
//! `child`/`descendant(-or-self)`/`self`/`attribute` with nested
//! existence, negation and literal-comparison predicates — and random
//! documents with attributes, text, comments and repeated labels.  Each
//! document is serialized; each query is streamed over the text and
//! checked ordinal-for-ordinal against MINCONTEXT on a parse of the same
//! text.  Any unsound corner of the stack automaton (frame propagation,
//! or-self matching, predicate guard chains, buffered-emission ordering,
//! ordinal bookkeeping) shows up as a divergence on some seed.

use minctx_bench::xorshift;
use minctx_core::{Engine, Strategy};
use minctx_stream::{StreamOutcome, StreamValue, StreamingEngine};
use minctx_syntax::parse_xpath;
use minctx_xml::serialize::to_xml_string;
use minctx_xml::{parse, Document, DocumentBuilder};

const LABELS: &[&str] = &["a", "b", "c", "d"];
const ATTRS: &[&str] = &["p", "q"];
const TEXTS: &[&str] = &["v", "x", "1", "2.5"];

fn pick<'a>(rng: &mut u64, pool: &[&'a str]) -> &'a str {
    pool[xorshift(rng) as usize % pool.len()]
}

/// A random nested document with attributes (random small values), text,
/// and the occasional comment/PI, over a 4-letter alphabet.
fn random_doc(seed: u64, target: usize) -> Document {
    let mut rng = seed | 1;
    let mut b = DocumentBuilder::new();
    let mut open = 1usize;
    let mut made = 1usize;
    b.start_element("r", &[]);
    while made < target {
        match xorshift(&mut rng) % 8 {
            0 if open > 1 => {
                b.end_element();
                open -= 1;
            }
            1 => {
                b.text(pick(&mut rng, TEXTS));
                made += 1;
            }
            2 => {
                b.comment("c");
                made += 1;
            }
            3 => {
                b.processing_instruction("pi", "d");
                made += 1;
            }
            _ => {
                let label = pick(&mut rng, LABELS);
                match xorshift(&mut rng) % 3 {
                    0 => b.start_element(label, &[]),
                    1 => b.start_element(label, &[(pick(&mut rng, ATTRS), pick(&mut rng, TEXTS))]),
                    _ => b.start_element(
                        label,
                        &[("p", pick(&mut rng, TEXTS)), ("q", pick(&mut rng, TEXTS))],
                    ),
                };
                open += 1;
                made += 1;
            }
        }
    }
    for _ in 0..open {
        b.end_element();
    }
    b.finish().expect("random doc is well-formed")
}

/// One random forward step with 0–2 predicates.
fn random_step(rng: &mut u64, depth: usize) -> String {
    let axis_test = match xorshift(rng) % 10 {
        0 | 1 => format!("descendant-or-self::node()/child::{}", pick(rng, LABELS)),
        2 => format!("descendant::{}", pick(rng, LABELS)),
        3 => format!("descendant-or-self::{}", pick(rng, &["a", "b", "*"])),
        4 => format!("@{}", pick(rng, &["p", "q", "*"])),
        5 => pick(rng, &["text()", "comment()", "node()", "*", "self::node()"]).to_string(),
        _ => format!("child::{}", pick(rng, &["a", "b", "c", "d", "*"])),
    };
    // Attribute and leaf steps end a chain; only element-ish steps take
    // predicates here (predicates on leaves are legal but vacuous).
    if axis_test.contains('@') || axis_test.contains("()") {
        return axis_test;
    }
    let mut s = axis_test;
    for _ in 0..(xorshift(rng) % 3).saturating_sub(1) {
        s.push('[');
        s.push_str(&random_pred(rng, depth));
        s.push(']');
    }
    s
}

/// A random position-free predicate from the streamable fragment (with
/// occasional constructs *outside* it, to exercise the fallback path).
fn random_pred(rng: &mut u64, depth: usize) -> String {
    match xorshift(rng) % 10 {
        0 => format!("not({})", pick(rng, LABELS)),
        1 => format!("@{} = '{}'", pick(rng, ATTRS), pick(rng, TEXTS)),
        2 => format!("@{} != {}", pick(rng, ATTRS), xorshift(rng) % 3),
        3 => format!(".//{}", pick(rng, LABELS)),
        4 => format!("text() = '{}'", pick(rng, TEXTS)),
        5 if depth > 0 => format!("{}[{}]", pick(rng, LABELS), random_pred(rng, depth - 1)),
        6 => format!("{} and @{}", pick(rng, LABELS), pick(rng, ATTRS)),
        7 => format!("{} or .//{}", pick(rng, LABELS), pick(rng, LABELS)),
        // Outside the fragment: positional / element-value comparisons —
        // these must fall back, and the fallback must agree too.
        8 => format!("{} = '{}'", pick(rng, LABELS), pick(rng, TEXTS)),
        _ => pick(rng, LABELS).to_string(),
    }
}

fn random_query(rng: &mut u64) -> String {
    let mut q = String::new();
    let steps = 1 + (xorshift(rng) % 3) as usize;
    for i in 0..steps {
        q.push('/');
        let step = random_step(rng, 1);
        if i > 0 && (step.starts_with('@') || step.contains("()")) {
            q.push_str(&step);
            break;
        }
        q.push_str(&step);
    }
    match xorshift(rng) % 4 {
        0 => format!("count({q})"),
        1 => format!("boolean({q})"),
        _ => q,
    }
}

#[test]
fn random_forward_queries_stream_exactly() {
    let mut streamed = 0usize;
    let mut fell_back = 0usize;
    for seed in 1..=60u64 {
        let doc = random_doc(seed.wrapping_mul(0x9e37_79b9), 60 + (seed as usize % 40));
        let xml = to_xml_string(&doc);
        let reparsed = parse(&xml).unwrap();
        let oracle = Engine::new(Strategy::MinContext);
        let engine = Engine::new(Strategy::Streaming);
        let mut rng = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        for _ in 0..12 {
            let src = random_query(&mut rng);
            let query = match parse_xpath(&src) {
                Ok(q) => q,
                Err(e) => panic!("seed {seed}: generator emitted bad query {src:?}: {e}"),
            };
            let want = oracle.evaluate(&reparsed, &query).unwrap();
            let out = engine
                .evaluate_reader_str(&query, &xml)
                .unwrap_or_else(|e| panic!("seed {seed} {src:?}: {e}"));
            match out {
                StreamOutcome::Streamed(v) => {
                    streamed += 1;
                    match (&v, &want) {
                        (StreamValue::Nodes(ms), minctx_core::Value::NodeSet(ns)) => {
                            let got: Vec<usize> = ms.iter().map(|m| m.ordinal as usize).collect();
                            let want: Vec<usize> = ns.iter().map(|n| n.index()).collect();
                            assert_eq!(got, want, "seed {seed} {src:?}");
                        }
                        (StreamValue::Number(x), minctx_core::Value::Number(y)) => {
                            assert_eq!(x, y, "seed {seed} {src:?}");
                        }
                        (StreamValue::Boolean(x), minctx_core::Value::Boolean(y)) => {
                            assert_eq!(x, y, "seed {seed} {src:?}");
                        }
                        other => panic!("seed {seed} {src:?}: shape mismatch {other:?}"),
                    }
                }
                StreamOutcome::Arena { value, .. } => {
                    fell_back += 1;
                    assert!(
                        minctx_bench::values_agree(&value, &want),
                        "seed {seed} {src:?}: fallback diverged"
                    );
                }
            }
        }
    }
    // The generator must keep feeding the streaming path, not just the
    // fallback.
    assert!(
        streamed > 300,
        "only {streamed} streamed out of {}",
        streamed + fell_back
    );
}

//! Section 1's headline plot: running time against *query* size on the
//! five-node document, naive vs. the polynomial strategies.
//!
//! Naive time doubles with every `parent::a/child::b` round trip; the
//! polynomial strategies grow linearly in the number of steps.

use minctx_bench::{exponential_doc, exponential_family, fmt_ms, time_strategy};
use minctx_core::Strategy;

fn main() {
    let doc = exponential_doc();
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} (median ms; naive budget-capped)",
        "i", "naive", "cvt", "mincontext", "optminctx"
    );
    for i in (0..=20).step_by(2) {
        let q = exponential_family(i);
        print!("{i:>6}");
        for s in Strategy::ALL {
            let budget = (s == Strategy::Naive).then_some(20_000_000);
            print!(" {}", fmt_ms(time_strategy(&doc, s, &q, budget, 3)));
        }
        println!();
    }
    // The polynomial strategies keep going far past naive's horizon.
    println!("\nlarge members (polynomial strategies only):");
    for i in [40usize, 80, 160] {
        let q = exponential_family(i);
        print!("{i:>6} {:>10}", "—");
        for s in &Strategy::ALL[1..] {
            print!(" {}", fmt_ms(time_strategy(&doc, *s, &q, None, 3)));
        }
        println!();
    }
}

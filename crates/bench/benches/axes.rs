fn main() {}

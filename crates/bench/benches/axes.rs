//! Times the `O(|D|)` axis set functions of Definition 1 — the substrate
//! every evaluator leans on.

use minctx_bench::{time, uniform_tree};
use minctx_xml::axes::{axis_image, axis_preimage, Axis, NodeTest};
use minctx_xml::NodeSet;

fn main() {
    for (depth, fanout) in [(4, 4), (5, 5)] {
        let doc = uniform_tree(depth, fanout);
        let all: NodeSet = doc.all_nodes().collect();
        println!(
            "document: depth {depth}, fanout {fanout} — {} nodes",
            doc.len()
        );
        for axis in Axis::ALL {
            let img = time(5, || axis_image(&doc, axis, &all, &NodeTest::AnyNode));
            let pre = time(5, || axis_preimage(&doc, axis, &all));
            println!(
                "  {:>18}  image {:>9.3} ms   preimage {:>9.3} ms",
                axis.as_str(),
                img.as_secs_f64() * 1e3,
                pre.as_secs_f64() * 1e3,
            );
        }
    }
}

//! Times the `O(|D|)` axis set functions of Definition 1 — the substrate
//! every evaluator leans on — on uniform trees and XMark-style corpora up
//! to a few hundred thousand nodes.

use minctx_bench::{time, uniform_tree, xmark_doc, XmarkConfig};
use minctx_xml::axes::{axis_image, axis_preimage, Axis, NodeTest};
use minctx_xml::{Document, NodeSet};

fn sweep(title: &str, doc: &Document) {
    let all: NodeSet = doc.all_nodes().collect();
    println!("document: {title} — {} nodes", doc.len());
    for axis in Axis::ALL {
        let img = time(5, || axis_image(doc, axis, &all, &NodeTest::AnyNode));
        let pre = time(5, || axis_preimage(doc, axis, &all));
        println!(
            "  {:>18}  image {:>9.3} ms   preimage {:>9.3} ms",
            axis.as_str(),
            img.as_secs_f64() * 1e3,
            pre.as_secs_f64() * 1e3,
        );
    }
    // Name-test fast path: postings-backed once the label index landed.
    let root = NodeSet::singleton(doc.root());
    let item = NodeTest::name("item");
    let desc = time(5, || axis_image(doc, Axis::Descendant, &root, &item));
    let child = time(5, || axis_image(doc, Axis::Child, &all, &item));
    println!(
        "  {:>18}  descendant::item {:>9.3} ms   child::item {:>9.3} ms",
        "name tests",
        desc.as_secs_f64() * 1e3,
        child.as_secs_f64() * 1e3,
    );
}

fn main() {
    for (depth, fanout) in [(4, 4), (5, 5)] {
        sweep(
            &format!("uniform depth {depth}, fanout {fanout}"),
            &uniform_tree(depth, fanout),
        );
    }
    for elements in [100_000usize, 300_000] {
        sweep(
            &format!("xmark {elements} elements"),
            &xmark_doc(&XmarkConfig::sized(elements)),
        );
    }
}

//! Theorem 13: full XPath 1.0 in polynomial time.  Runs the paper's
//! running example E and friends under every polynomial strategy on
//! deep *and* wide documents, with OPTMINCONTEXT's backward propagation
//! visible on the comparison-heavy queries.

use minctx_bench::{fmt_ms, time_strategy, uniform_tree, wide_doc, FULL_XPATH_QUERIES};
use minctx_core::Strategy;
use minctx_xml::Document;

fn main() {
    let docs: Vec<(String, Document)> = vec![
        ("wide-100".into(), wide_doc(100)),
        ("tree-4-4".into(), uniform_tree(4, 4)),
        ("tree-7-2".into(), uniform_tree(7, 2)),
    ];
    println!(
        "{:>10} {:>10} {:>10} {:>10} (median ms)",
        "", "cvt", "mincontext", "optminctx"
    );
    for q in FULL_XPATH_QUERIES {
        println!("query: {q}");
        for (name, doc) in &docs {
            print!("{name:>10}");
            for s in [
                Strategy::ContextValueTable,
                Strategy::MinContext,
                Strategy::OptMinContext,
            ] {
                // Cubic tables on position-dependent queries are only
                // feasible on the small documents; skip the big ones.
                let skip = s == Strategy::ContextValueTable && doc.len() > 350;
                let t = if skip {
                    None
                } else {
                    time_strategy(doc, s, q, None, 3)
                };
                print!(" {}", fmt_ms(t));
            }
            println!();
        }
    }
}

//! Theorem 10: the Extended Wadler fragment (position()/last() inside
//! predicates) stays `O(|D| · |Q|)` under MINCONTEXT, while the VLDB'02
//! context-value tables pay for every `(k, n)` pair — cubic space and
//! time — on exactly these queries.

use minctx_bench::{fmt_ms, time_strategy, wide_doc, WADLER_QUERIES};
use minctx_core::Strategy;

fn main() {
    println!(
        "{:>8} {:>10} {:>10} {:>10} (median ms)",
        "", "cvt", "mincontext", "optminctx"
    );
    for q in WADLER_QUERIES {
        println!("query: {q}");
        for n in [30usize, 60, 120] {
            let doc = wide_doc(n);
            print!("{:>8}", format!("|D|={}", doc.len()));
            for s in [
                Strategy::ContextValueTable,
                Strategy::MinContext,
                Strategy::OptMinContext,
            ] {
                print!(" {}", fmt_ms(time_strategy(&doc, s, q, None, 3)));
            }
            println!();
        }
    }
}

//! Theorem 7: MINCONTEXT evaluates Core XPath (no positional functions)
//! in time `O(|D| · |Q|)`.  Doubling the document should roughly double
//! the time; the printed ns/node column should stay flat.

use minctx_bench::{time_strategy, wide_doc, CORE_XPATH_QUERIES};
use minctx_core::Strategy;

fn main() {
    for q in CORE_XPATH_QUERIES {
        println!("query: {q}");
        for n in [250usize, 500, 1000, 2000] {
            let doc = wide_doc(n);
            let t = time_strategy(&doc, Strategy::MinContext, q, None, 5)
                .expect("core xpath always evaluates");
            println!(
                "  |D| = {:>5}   {:>9.3} ms   {:>8.1} ns/node",
                doc.len(),
                t.as_secs_f64() * 1e3,
                t.as_secs_f64() * 1e9 / doc.len() as f64,
            );
        }
    }
}

//! Shared machinery for the benchmark harnesses: synthetic document
//! generators, the paper's query families, and a dependency-free timing
//! loop (the workspace is `std`-only by design, so no criterion).
//!
//! The benches are wired as `harness = false` cargo benches; run them with
//! `cargo bench -p minctx-bench` or individually, e.g.
//! `cargo bench -p minctx-bench --bench exp_query_size`.  The
//! `tables` binary (`cargo run --release -p minctx-bench --bin tables`)
//! prints the paper-style strategy × document-size timing tables.

use minctx_core::{Engine, Strategy};
use minctx_xml::{Document, DocumentBuilder};
use std::time::{Duration, Instant};

/// A balanced tree of alternating `<even>`/`<odd>` elements, `fanout`
/// children per node down to `depth`, leaves carrying their pre-order
/// number as text.  `size ≈ fanout^depth` elements.
pub fn uniform_tree(depth: usize, fanout: usize) -> Document {
    fn rec(b: &mut DocumentBuilder, depth: usize, fanout: usize, counter: &mut usize) {
        let v = counter.to_string();
        *counter += 1;
        b.start_element(if depth % 2 == 0 { "even" } else { "odd" }, &[("v", &v)]);
        if depth == 0 {
            b.text(&v);
        } else {
            for _ in 0..fanout {
                rec(b, depth - 1, fanout, counter);
            }
        }
        b.end_element();
    }
    let mut b = DocumentBuilder::new();
    rec(&mut b, depth, fanout, &mut 0);
    b.finish().expect("generated tree is well-formed")
}

/// A flat document `<r><e>0</e><e>1</e>…</r>` with `n` children — the
/// shape the paper's Figure 2 measurements use.
pub fn wide_doc(n: usize) -> Document {
    let mut b = DocumentBuilder::new();
    b.start_element("r", &[]);
    for i in 0..n {
        b.leaf("e", &[("v", &i.to_string())], &i.to_string());
    }
    b.end_element();
    b.finish().expect("generated doc is well-formed")
}

/// The paper's Section-1 exponential query family: `//b` followed by `i`
/// copies of `/parent::a/child::b`.
pub fn exponential_family(i: usize) -> String {
    let mut q = String::from("//b");
    for _ in 0..i {
        q.push_str("/parent::a/child::b");
    }
    q
}

/// The two-`<b/>` document the exponential family runs on.
pub fn exponential_doc() -> Document {
    minctx_xml::parse("<a><b/><b/></a>").expect("static doc")
}

/// Core XPath queries (no positional functions) — the Theorem 7 fragment.
pub const CORE_XPATH_QUERIES: &[&str] = &[
    "//odd",
    "/descendant::even/child::odd",
    "//even[odd/even]",
    "//odd[not(following-sibling::odd)]",
    "//even[descendant::odd and ancestor::even]",
    "count(//even | //odd)",
];

/// Extended Wadler fragment queries (position()/last() in predicates) —
/// the Theorem 10 fragment.
pub const WADLER_QUERIES: &[&str] = &[
    "//odd[position() = last()]",
    "//even/odd[position() = 2]",
    "//odd[position() > last() * 0.5]",
    "//even[last()]",
];

/// Full-XPath showcase queries, including the paper's running example E.
pub const FULL_XPATH_QUERIES: &[&str] = &[
    "/descendant::*[position() > last()*0.5 or self::* = 100]",
    "//even[count(odd) > 1]/odd[position() != last()]",
    "sum(//@v) > 100",
];

/// Median-of-`runs` wall-clock time of `f`.
pub fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(runs > 0);
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            let elapsed = start.elapsed();
            std::hint::black_box(r);
            elapsed
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Times one strategy on one query (budgeted engines return `None` on
/// budget exhaustion so tables can print `>cap`).
///
/// The query is compiled *once*, outside the timing loop: the tables
/// compare evaluation algorithms, so parsing/normalization/lowering cost
/// must not flatten the ratios.
pub fn time_strategy(
    doc: &Document,
    strategy: Strategy,
    query: &str,
    budget: Option<u64>,
    runs: usize,
) -> Option<Duration> {
    let mut engine = Engine::new(strategy);
    if let Some(b) = budget {
        engine = engine.with_budget(b);
    }
    let compiled = minctx_syntax::parse_xpath(query).ok()?;
    // Reject once up front so the timing loop measures successes only.
    engine.evaluate(doc, &compiled).ok()?;
    Some(time(runs, || engine.evaluate(doc, &compiled).unwrap()))
}

/// Formats a duration in fixed-width milliseconds for table output.
pub fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:>10.3}", d.as_secs_f64() * 1e3),
        None => format!("{:>10}", "—"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_shapes() {
        let d = uniform_tree(2, 3);
        // 1 + 3 + 9 = 13 elements.
        assert_eq!(d.element_count(), 13);
        let w = wide_doc(5);
        assert_eq!(w.element_count(), 6);
        assert_eq!(
            exponential_family(2),
            "//b/parent::a/child::b/parent::a/child::b"
        );
    }

    #[test]
    fn bench_queries_run_under_every_strategy() {
        // Guard the bench query lists against rot: they must all evaluate.
        let doc = uniform_tree(2, 2);
        for q in CORE_XPATH_QUERIES
            .iter()
            .chain(WADLER_QUERIES)
            .chain(FULL_XPATH_QUERIES)
        {
            for s in Strategy::ALL {
                Engine::new(s)
                    .evaluate_str(&doc, q)
                    .unwrap_or_else(|e| panic!("{s} failed on {q:?}: {e}"));
            }
        }
    }

    #[test]
    fn time_strategy_reports_budget_exhaustion_as_none() {
        let doc = exponential_doc();
        let t = time_strategy(
            &doc,
            Strategy::Naive,
            &exponential_family(40),
            Some(1_000),
            1,
        );
        assert!(t.is_none());
        assert_eq!(fmt_ms(t).trim(), "—");
    }
}

//! Shared machinery for the benchmark harnesses: synthetic document
//! generators, the paper's query families, and a dependency-free timing
//! loop (the workspace is `std`-only by design, so no criterion).
//!
//! The benches are wired as `harness = false` cargo benches; run them with
//! `cargo bench -p minctx-bench` or individually, e.g.
//! `cargo bench -p minctx-bench --bench exp_query_size`.  The
//! `tables` binary (`cargo run --release -p minctx-bench --bin tables`)
//! prints the paper-style strategy × document-size timing tables.

use minctx_core::{Engine, Strategy, Value};
use minctx_xml::{Document, DocumentBuilder};
use std::time::{Duration, Instant};

/// A balanced tree of alternating `<even>`/`<odd>` elements, `fanout`
/// children per node down to `depth`, leaves carrying their pre-order
/// number as text.  `size ≈ fanout^depth` elements.
pub fn uniform_tree(depth: usize, fanout: usize) -> Document {
    fn rec(b: &mut DocumentBuilder, depth: usize, fanout: usize, counter: &mut usize) {
        let v = counter.to_string();
        *counter += 1;
        b.start_element(if depth % 2 == 0 { "even" } else { "odd" }, &[("v", &v)]);
        if depth == 0 {
            b.text(&v);
        } else {
            for _ in 0..fanout {
                rec(b, depth - 1, fanout, counter);
            }
        }
        b.end_element();
    }
    let mut b = DocumentBuilder::new();
    rec(&mut b, depth, fanout, &mut 0);
    b.finish().expect("generated tree is well-formed")
}

/// A flat document `<r><e>0</e><e>1</e>…</r>` with `n` children — the
/// shape the paper's Figure 2 measurements use.
pub fn wide_doc(n: usize) -> Document {
    let mut b = DocumentBuilder::new();
    b.start_element("r", &[]);
    for i in 0..n {
        b.leaf("e", &[("v", &i.to_string())], &i.to_string());
    }
    b.end_element();
    b.finish().expect("generated doc is well-formed")
}

/// Configuration for the XMark-style synthetic document generator
/// ([`xmark_doc`]): an irregular auction-site-shaped tree with a small
/// label alphabet, attribute ids and leaf text, deterministic in `seed`.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of *element* nodes to generate (total node count lands at
    /// roughly 2–2.5× this once attributes and text nodes are counted).
    pub elements: usize,
    /// Maximum children per element; actual fan-out is uniform in
    /// `0..=max_fanout`.
    pub max_fanout: usize,
    /// Size of the label alphabet (drawn from an XMark-ish name pool,
    /// synthesized as `tagN` beyond the pool).
    pub labels: usize,
    /// Percentage (0–100) of elements carrying a unique `id` attribute.
    pub id_density_pct: u8,
    /// Percentage (0–100) of leaf elements carrying a text child.
    pub text_density_pct: u8,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl XmarkConfig {
    /// A config with representative defaults at the given element count.
    pub fn sized(elements: usize) -> XmarkConfig {
        XmarkConfig {
            elements,
            max_fanout: 8,
            labels: 12,
            id_density_pct: 20,
            text_density_pct: 60,
            seed: 0x5eed_cafe,
        }
    }
}

/// XMark-flavoured label pool; index 0 (`item`) is the label the axis-step
/// benchmarks single out, so it always exists.
const XMARK_LABELS: &[&str] = &[
    "item",
    "person",
    "category",
    "open_auction",
    "closed_auction",
    "bid",
    "seller",
    "description",
    "parlist",
    "listitem",
    "keyword",
    "annotation",
    "quantity",
    "location",
    "interest",
    "watch",
];

/// The seeded RNG behind every deterministic generator in the workspace
/// (xorshift64*: good enough spread for workload shaping, zero deps).
/// Public so the randomized test suites share one definition.
#[inline]
pub fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// [`Value`] equality where NaN equals NaN — the agreement relation of the
/// differential and rewrite-soundness suites (two evaluators that both
/// produce NaN agree, even though `NaN != NaN`).  Zero *signs* must match:
/// `-0.0 == 0.0` under IEEE `==`, but §4.4's `round()` rule makes the sign
/// observable (`1 div round(-0.2)`), so losing it is a real divergence.
pub fn values_agree(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => {
            (x.is_nan() && y.is_nan()) || (x == y && x.is_sign_negative() == y.is_sign_negative())
        }
        _ => a == b,
    }
}

#[inline]
fn pct(state: &mut u64, p: u8) -> bool {
    xorshift(state) % 100 < p as u64
}

/// Generates an XMark-style document (see [`XmarkConfig`]).  Shape is an
/// irregular tree: depth-capped, fan-out uniform in `0..=max_fanout`,
/// every element labeled from the alphabet, ids and text sprinkled at the
/// configured densities.  Deterministic: a config generates one document.
pub fn xmark_doc(cfg: &XmarkConfig) -> Document {
    assert!(cfg.labels > 0, "label alphabet must be non-empty");
    const MAX_DEPTH: usize = 14;
    fn label(i: usize) -> String {
        match XMARK_LABELS.get(i) {
            Some(s) => (*s).to_string(),
            None => format!("tag{i}"),
        }
    }
    fn subtree(
        b: &mut DocumentBuilder,
        cfg: &XmarkConfig,
        rng: &mut u64,
        remaining: &mut usize,
        depth: usize,
        next_id: &mut usize,
    ) {
        if *remaining == 0 {
            return;
        }
        *remaining -= 1;
        let lbl = label(xorshift(rng) as usize % cfg.labels);
        let id_value;
        let mut attrs: Vec<(&str, &str)> = Vec::new();
        if pct(rng, cfg.id_density_pct) {
            id_value = format!("id{}", *next_id);
            *next_id += 1;
            attrs.push(("id", &id_value));
        }
        let v_value = (xorshift(rng) % 1_000).to_string();
        attrs.push(("v", &v_value));
        b.start_element(&lbl, &attrs);
        let kids = if depth >= MAX_DEPTH {
            0
        } else {
            xorshift(rng) as usize % (cfg.max_fanout + 1)
        };
        if kids == 0 {
            if pct(rng, cfg.text_density_pct) {
                b.text(&v_value);
            }
        } else {
            for _ in 0..kids {
                subtree(b, cfg, rng, remaining, depth + 1, next_id);
            }
        }
        b.end_element();
    }
    let mut b = DocumentBuilder::with_capacity(cfg.elements * 2);
    let mut rng = cfg.seed | 1;
    let mut next_id = 0usize;
    b.start_element("site", &[]);
    let mut remaining = cfg.elements.saturating_sub(1);
    while remaining > 0 {
        subtree(&mut b, cfg, &mut rng, &mut remaining, 1, &mut next_id);
    }
    b.end_element();
    b.finish().expect("generated xmark document is well-formed")
}

/// The paper's Section-1 exponential query family: `//b` followed by `i`
/// copies of `/parent::a/child::b`.
pub fn exponential_family(i: usize) -> String {
    let mut q = String::from("//b");
    for _ in 0..i {
        q.push_str("/parent::a/child::b");
    }
    q
}

/// The two-`<b/>` document the exponential family runs on.
pub fn exponential_doc() -> Document {
    minctx_xml::parse("<a><b/><b/></a>").expect("static doc")
}

/// Core XPath queries (no positional functions) — the Theorem 7 fragment.
pub const CORE_XPATH_QUERIES: &[&str] = &[
    "//odd",
    "/descendant::even/child::odd",
    "//even[odd/even]",
    "//odd[not(following-sibling::odd)]",
    "//even[descendant::odd and ancestor::even]",
    "count(//even | //odd)",
];

/// Extended Wadler fragment queries (position()/last() in predicates) —
/// the Theorem 10 fragment.
pub const WADLER_QUERIES: &[&str] = &[
    "//odd[position() = last()]",
    "//even/odd[position() = 2]",
    "//odd[position() > last() * 0.5]",
    "//even[last()]",
];

/// Full-XPath showcase queries, including the paper's running example E.
pub const FULL_XPATH_QUERIES: &[&str] = &[
    "/descendant::*[position() > last()*0.5 or self::* = 100]",
    "//even[count(odd) > 1]/odd[position() != last()]",
    "sum(//@v) > 100",
];

/// The cross-suite differential corpus: documents and queries shared by
/// the arena differential oracle (`crates/core/tests/differential.rs`)
/// and the streaming differential suite
/// (`crates/stream/tests/differential.rs`), so every query construct is
/// exercised by both.
pub mod corpus {
    use super::uniform_tree;
    use minctx_xml::{parse, Document};

    /// Corpus documents: hand-written shapes plus generated trees.
    pub fn documents() -> Vec<(String, Document)> {
        let mut docs = vec![
            (
                "books".to_string(),
                parse(concat!(
                    r#"<library xml:lang="en">"#,
                    r#"<book id="b1" year="1994"><title>TCP/IP</title><price>65.95</price></book>"#,
                    r#"<book id="b2" year="2000"><title>Data on the Web</title><price>39.95</price></book>"#,
                    r#"<book id="b3" year="2000" ref="b1"><title>XML</title><price>100</price></book>"#,
                    r#"<!-- catalogue -->"#,
                    r#"<?render fast?>"#,
                    r#"<magazine id="m1"><title>XML</title><price>8</price></magazine>"#,
                    r#"</library>"#,
                ))
                .unwrap(),
            ),
            (
                "numbers".to_string(),
                parse(
                    "<t><n>1</n><n>2</n><n>3</n><n>100</n><m>2.5</m><m>-4</m>\
                     <mixed>7seven</mixed><empty/></t>",
                )
                .unwrap(),
            ),
            (
                "idchain".to_string(),
                parse(
                    r#"<g id="g"><p id="p1">p2 p3</p><p id="p2">p3</p><p id="p3">done</p></g>"#,
                )
                .unwrap(),
            ),
        ];
        // A generated three-level tree (40 elements) — the same generator
        // the benches use, so the oracle covers the benchmarked shape.
        docs.push(("tree-3-3".to_string(), uniform_tree(3, 3)));
        docs
    }

    /// The query corpus: ≥40 queries spanning axes, predicates, positional
    /// functions, arithmetic, unions, strings, and `id()`.
    pub const QUERIES: &[&str] = &[
        // Plain paths and axes.
        "/",
        "/*",
        "/child::*/child::*",
        "//title",
        "//*",
        "/descendant-or-self::node()",
        "//price/text()",
        "//comment()",
        "//processing-instruction()",
        "//book/attribute::year",
        "//@id",
        "//book/..",
        "//title/parent::*/child::price",
        "//price/ancestor::*",
        "//book[1]/following-sibling::*",
        "//magazine/preceding-sibling::*",
        "//book[2]/following::node()",
        "//magazine/preceding::price",
        "//odd/even",
        "//even[odd]",
        // following/preceding spec-expansion chains: the rewriter fuses
        // these onto single sliced-postings steps (PR 4); the raw runs
        // keep the unfused evaluation honest.
        "//book[1]/ancestor-or-self::node()/following-sibling::node()/descendant-or-self::price",
        "//magazine/ancestor-or-self::node()/preceding-sibling::node()/descendant-or-self::title",
        "/library/book/following::node()/descendant-or-self::price",
        "//price/preceding::node()/descendant-or-self::text()",
        "//book[2]/following::price",
        "//magazine/preceding::title",
        "//@id/ancestor-or-self::node()/following-sibling::node()/descendant-or-self::title",
        // Predicates, position(), last().
        "//book[1]",
        "//book[last()]",
        "//book[position() = 2]",
        "//book[position() != last()]",
        "//*[position() = 2]",
        "//book[price > 40]",
        "//book[title = 'XML']",
        "//book[@year = 2000][2]",
        "//book[@year = 2000 and price > 50]",
        "//book[not(@ref)]",
        "//book[@year = 2000]",
        "//book[@id = 'b2' or @ref = 'b1']",
        "//*[count(*) > 1]",
        "//*[position() > last() * 0.5]",
        "/descendant::*[position() > last()*0.5 or self::* = 100]",
        "//even[position() mod 2 = 1]",
        "//n[. > 1][position() < 3]",
        // Positional predicates over reverse axes count in reverse document
        // order — a classic divergence spot between evaluators.
        "//magazine/preceding-sibling::*[1]",
        "//price/ancestor::*[2]",
        "//magazine/preceding::node()[3]",
        "//book[last() - 1]",
        // Filters on primaries.
        "(//book)[2]",
        "(//title | //price)[last()]",
        "id('b1 b3')[2]",
        // Unions.
        "//title | //price",
        "//book | //magazine | //book",
        "//n | //m",
        // id().
        "id('b2')",
        "id('p1')",
        "id(//book[3]/@ref)",
        "//p[id(.)]",
        // Scalars: numbers, strings, booleans.
        "count(//book)",
        "count(//book[price < 50]) + count(//magazine)",
        // count(π) RelOp c existence shapes: rewritten to boolean(π) /
        // not(π) by the optimizer (PR 5), so the raw runs keep the
        // counting evaluation honest and the rewritten runs exercise the
        // backward-propagatable boolean(π) form.
        "count(//book) > 0",
        "count(//nosuch) != 0",
        "count(//book[price > 40]) >= 1",
        "count(//nosuch) = 0",
        "count(//book) < 1",
        "count(//magazine) <= 0",
        "0 < count(//price)",
        "1 > count(//nosuch)",
        "0 = count(//comment())",
        "//*[count(*) > 0]",
        "//book[count(nosuch) = 0]",
        "//*[count(../*) >= 1]",
        // Near-miss thresholds that must keep counting.
        "count(//book) > 1",
        "count(//book) >= 2",
        "count(//nosuch) <= 1",
        "sum(//n)",
        "sum(//m) * 2",
        "1 div 0",
        "-3 mod 2",
        "string(//book[1]/title)",
        "concat(name(//book[1]), '-', //book[1]/@id)",
        "normalize-space(string(//mixed))",
        "substring(string(//title[1]), 2, 3)",
        "string-length(string(//book[2]/title))",
        "translate(string(//title[3]), 'XML', 'xml')",
        "starts-with(string(//book[1]/@id), 'b')",
        "contains(string(/), 'Web')",
        "boolean(//book)",
        "boolean(//nosuch)",
        "not(//magazine)",
        "//book = //magazine",
        "//n < //m",
        // Node-set vs boolean converts the whole set (§3.4), so an *empty*
        // set equals false() — not the existential member rule.
        "//nosuch = false()",
        "count(//book[nosuch = false()])",
        "//book != true()",
        "//nosuch < true()",
        // Attribute nodes as predicate targets and as context nodes: these
        // pinned down real divergences (backward propagation leaking
        // attributes through node() tests; attribute origins of reverse and
        // or-self axes; descendant-or-self of an attribute context).
        "//*[node() = 'XML']",
        "//*[node()]",
        "//book/@year/descendant-or-self::node()",
        "//@id/ancestor-or-self::node()",
        "//@*[following::magazine]",
        "//@*[ancestor::library]",
        "//@id[self::node() = 'b2']",
        "number(//empty)",
        "floor(sum(//m)) + ceiling(1.2) + round(2.5)",
        "string(number('x'))",
        "lang('en')",
        "local-name(//*[last()])",
        // ---- Function-library edge cases: NaN, signed zero, infinities ----
        // (most of these also constant-fold, so the rewritten run checks the
        // folder against all four live evaluators).
        "0 div 0",
        "-0.5 mod 2",
        "0 mod 0",
        "1 div -0",
        "string(1 div -0)",
        "-1 div 0",
        "0 * (1 div 0)",
        "(1 div 0) + (-1 div 0)",
        "1 div (1 div 0)",
        "(0 div 0) = (0 div 0)",
        "(0 div 0) != (0 div 0)",
        "(0 div 0) < 1",
        "0 = -0",
        "string(-0)",
        "boolean(-0)",
        "boolean(0 div 0)",
        "not(0 div 0)",
        // round/floor/ceiling at the §4.4 signed-zero edges.
        "1 div round(-0.2)",
        "string(round(-0.2))",
        "round(-0.5)",
        "1 div round(-0.5)",
        "round(0.5)",
        "string(round(0 div 0))",
        "round(1 div 0)",
        "round(-1 div 0)",
        "1 div ceiling(-0.3)",
        "floor(-0.5)",
        "//n[. > round(-0.2)]",
        // substring with NaN / infinite start and length (§4.2).
        "substring('12345', 1 div 0)",
        "substring('12345', -1 div 0)",
        "substring('12345', -1 div 0, 1 div 0)",
        "substring('12345', 2, 1 div 0)",
        "substring('12345', 0 div 0, 3)",
        "substring('12345', 2, 0 div 0)",
        "substring('12345', -42, 1 div 0)",
        "substring(string(//title[1]), 1 div 0)",
        // substring-before/-after with empty patterns and subjects.
        "substring-before('abc', '')",
        "substring-after('abc', '')",
        "substring-before('', 'x')",
        "substring-after('', '')",
        "substring-before(string(//mixed), '')",
        // Empty-node-set inputs to the node-set functions.
        "name(//nosuch)",
        "local-name(//nosuch)",
        "namespace-uri(//nosuch)",
        "sum(//nosuch)",
        "string(sum(//nosuch) div count(//nosuch))",
        "number(//nosuch)",
        "string(//nosuch)",
        "string-length(string(//nosuch))",
        "count(//book[sum(nosuch) = 0])",
        // String→number strictness interacting with comparisons.
        "'' = 0",
        "number('') = number('')",
        "//mixed != //mixed",
    ];
}

/// A byte-counting [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper over
/// the system allocator, for the streaming allocation-ceiling smoke and
/// the `stream/*` bench rows: tracks total bytes ever allocated and the
/// peak live working set.  Install it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator::new();`.
pub struct CountingAllocator {
    live: std::sync::atomic::AtomicUsize,
    peak: std::sync::atomic::AtomicUsize,
    total: std::sync::atomic::AtomicUsize,
}

impl CountingAllocator {
    /// A fresh counter (all gauges zero).
    pub const fn new() -> CountingAllocator {
        use std::sync::atomic::AtomicUsize;
        CountingAllocator {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes.
    pub fn live(&self) -> usize {
        self.live.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// High-water mark of live bytes since the last [`reset_peak`].
    ///
    /// [`reset_peak`]: CountingAllocator::reset_peak
    pub fn peak(&self) -> usize {
        self.peak.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total bytes ever allocated (monotone).
    pub fn total(&self) -> usize {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Restarts the peak gauge from the current live size (call before
    /// the measured region).
    pub fn reset_peak(&self) {
        use std::sync::atomic::Ordering;
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn record_alloc(&self, size: usize) {
        use std::sync::atomic::Ordering;
        self.total.fetch_add(size, Ordering::Relaxed);
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn record_dealloc(&self, size: usize) {
        self.live
            .fetch_sub(size, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates allocation to `System` unchanged; only counters are
// maintained around it.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    // SAFETY: `unsafe fn` is mandated by the trait; the caller upholds
    // `GlobalAlloc`'s layout contract.
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        // SAFETY: `layout` is passed through unchanged to the system
        // allocator under the caller's `GlobalAlloc` contract.
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            self.record_alloc(layout.size());
        }
        p
    }

    // SAFETY: `unsafe fn` is mandated by the trait; the caller upholds
    // `GlobalAlloc`'s layout contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        // SAFETY: `ptr`/`layout` came from a matching `alloc` on the
        // same underlying `System` allocator (caller's contract).
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        self.record_dealloc(layout.size());
    }

    // SAFETY: `unsafe fn` is mandated by the trait; the caller upholds
    // `GlobalAlloc`'s layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments forwarded unchanged under the caller's
        // `GlobalAlloc` contract.
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            self.record_dealloc(layout.size());
            self.record_alloc(new_size);
        }
        p
    }
}

/// Median-of-`runs` wall-clock time of `f`.
pub fn time<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(runs > 0);
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            let elapsed = start.elapsed();
            std::hint::black_box(r);
            elapsed
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Times one strategy on one query (budgeted engines return `None` on
/// budget exhaustion so tables can print `>cap`).
///
/// The query is compiled *once*, outside the timing loop: the tables
/// compare evaluation algorithms, so parsing/normalization/lowering cost
/// must not flatten the ratios.  The query-IR optimizer is pinned on
/// (regardless of `MINCTX_NO_OPTIMIZER`); [`time_strategy_opt`] chooses.
pub fn time_strategy(
    doc: &Document,
    strategy: Strategy,
    query: &str,
    budget: Option<u64>,
    runs: usize,
) -> Option<Duration> {
    time_strategy_opt(doc, strategy, query, budget, runs, true)
}

/// [`time_strategy`] with the query-IR rewrite pipeline pinned on or off —
/// the snapshot bin times both so the fused-vs-raw gap lands in
/// `BENCH_baseline.json`.
pub fn time_strategy_opt(
    doc: &Document,
    strategy: Strategy,
    query: &str,
    budget: Option<u64>,
    runs: usize,
    optimizer: bool,
) -> Option<Duration> {
    let mut engine = Engine::new(strategy).with_optimizer(optimizer);
    if let Some(b) = budget {
        engine = engine.with_budget(b);
    }
    let compiled = minctx_syntax::parse_xpath(query).ok()?;
    // Reject once up front so the timing loop measures successes only.
    engine.evaluate(doc, &compiled).ok()?;
    Some(time(runs, || engine.evaluate(doc, &compiled).unwrap()))
}

/// Formats a duration in fixed-width milliseconds for table output.
pub fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:>10.3}", d.as_secs_f64() * 1e3),
        None => format!("{:>10}", "—"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_shapes() {
        let d = uniform_tree(2, 3);
        // 1 + 3 + 9 = 13 elements.
        assert_eq!(d.element_count(), 13);
        let w = wide_doc(5);
        assert_eq!(w.element_count(), 6);
        assert_eq!(
            exponential_family(2),
            "//b/parent::a/child::b/parent::a/child::b"
        );
    }

    #[test]
    fn xmark_generator_is_deterministic_and_sized() {
        let cfg = XmarkConfig::sized(2_000);
        let a = xmark_doc(&cfg);
        let b = xmark_doc(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.element_count(), 2_000);
        assert_eq!(a.debug_tree(), b.debug_tree());
        // Ids are indexed and dense enough to be useful.
        assert!(a.element_by_id("id0").is_some());
        // A different seed generates a different document.
        let c = xmark_doc(&XmarkConfig {
            seed: 1,
            ..cfg.clone()
        });
        assert_ne!(a.debug_tree(), c.debug_tree());
    }

    #[test]
    fn bench_queries_run_under_every_strategy() {
        // Guard the bench query lists against rot: they must all evaluate.
        let doc = uniform_tree(2, 2);
        for q in CORE_XPATH_QUERIES
            .iter()
            .chain(WADLER_QUERIES)
            .chain(FULL_XPATH_QUERIES)
        {
            for s in Strategy::ALL {
                Engine::new(s)
                    .evaluate_str(&doc, q)
                    .unwrap_or_else(|e| panic!("{s} failed on {q:?}: {e}"));
            }
        }
    }

    #[test]
    fn time_strategy_reports_budget_exhaustion_as_none() {
        let doc = exponential_doc();
        let t = time_strategy(
            &doc,
            Strategy::Naive,
            &exponential_family(40),
            Some(1_000),
            1,
        );
        assert!(t.is_none());
        assert_eq!(fmt_ms(t).trim(), "—");
    }
}

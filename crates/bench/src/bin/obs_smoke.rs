//! Observability smoke: proves the instrumentation added by `minctx-obs`
//! is free when unused and truthful when used.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin obs_smoke [elements]
//! ```
//!
//! Builds the XMark-style corpus (10⁵ elements by default) and asserts:
//!
//! * the engine's hot evaluation path with its default **disabled
//!   recorder** stays within 1% of a never-instrumented call straight
//!   into the evaluator — the no-op recorder is one branch, never a
//!   clock read;
//! * an **enabled** recorder draining to a discarding JSON-lines sink
//!   stays within coarse bounds (it adds one span per evaluation, not
//!   per node);
//! * the Prometheus text exposition and the JSON exposition of a worked
//!   serving pool actually **parse** — every sample line is declared by
//!   a `# TYPE` comment, every value is a number, histogram buckets are
//!   cumulative, and the JSON is syntactically well-formed;
//! * `Engine::explain` on `//item[@id]` reports the golden plan: the
//!   `fuse-descendant` rewrite fired exactly once, the fused descendant
//!   step ran on the **postings** route, and the per-step cardinalities
//!   agree with independently evaluated `count()` queries.
//!
//! The CI `obs-smoke` job runs this binary; see DESIGN.md
//! "Observability".

use minctx_bench::{xmark_doc, XmarkConfig};
use minctx_core::{
    AxisRoute, BudgetMeter, CompiledQuery, Context, Engine, Evaluator, MinContext, Rule, Strategy,
    Value,
};
use minctx_obs::{JsonLinesSink, Recorder};
use minctx_serve::{Corpus, ServeEngine, ServeError};
use minctx_xml::Scratch;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The plan under the microscope throughout: a descendant name test
/// fused by the rewrite pipeline, answered off the label postings
/// index, filtered by an attribute-existence predicate.
const QUERY: &str = "//item[@id]";

/// Evaluations per timing sample.  The 1% bound is asserted on the
/// *minimum* over [`ROUNDS`] short interleaved samples per side: noise
/// on shared CI hardware is one-sided (preemption and frequency dips
/// only ever add time), so with the sides interleaved, both minima land
/// in the machine's fast phase and compare cleanly.
const ITERS: u32 = 8;
const ROUNDS: usize = 40;

/// Absolute slack absorbing timer granularity on top of the 1% bound.
const SLACK: Duration = Duration::from_micros(20);

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("elements must be an integer"))
        .unwrap_or(100_000);
    let doc = xmark_doc(&XmarkConfig::sized(elements));
    println!(
        "corpus: {} nodes ({} elements)",
        doc.len(),
        doc.element_count()
    );

    overhead_check(&doc);
    exposition_check(&doc);
    explain_check(&doc);
    println!("obs smoke OK");
}

/// One timing sample: the per-call mean over [`ITERS`] back-to-back
/// calls.
fn sample<R>(mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(f());
    }
    t0.elapsed() / ITERS
}

/// The tentpole claim: carrying a disabled [`Recorder`] costs the hot
/// path nothing measurable.  Baseline is a direct call into the
/// [`MinContext`] evaluator on a pre-compiled query — no engine, no
/// recorder field anywhere near the stack — against
/// [`Engine::evaluate_compiled`] on the same compilation, whose
/// evaluation is wrapped in the (disabled) lifecycle span.  The
/// compiled entry point is the comparison that isolates the recorder:
/// `Engine::evaluate` also pays the per-call compiled-query cache
/// lookup, which predates and is orthogonal to the instrumentation.
fn overhead_check(doc: &minctx_xml::Document) {
    let parsed = minctx_syntax::parse_xpath(QUERY).unwrap();
    // The engine rewrites before compiling; hand the baseline the same
    // rewritten IR so both sides evaluate identical plans.
    let rewritten = minctx_core::rewrite(&parsed);
    let compiled = CompiledQuery::new(doc, &rewritten);
    let evaluator = MinContext {
        optimized: false,
        parallel: None,
    };
    let mut scratch = Scratch::new();

    let engine = Engine::new(Strategy::MinContext);
    let traced = Engine::new(Strategy::MinContext).with_recorder(Recorder::to_sink(Arc::new(
        JsonLinesSink::new(std::io::sink()),
    )));

    // Same answer down all three paths before any timing.
    let want = evaluator
        .evaluate(
            doc,
            &compiled,
            Context::document(doc),
            &mut scratch,
            &mut BudgetMeter::unlimited(),
        )
        .unwrap();
    for e in [&engine, &traced] {
        assert_eq!(e.evaluate(doc, &parsed).unwrap(), want);
    }

    // A genuine regression fails every attempt; an unlucky scheduling
    // phase fails at most one or two.  Three strikes keeps the 1% bound
    // assertable without turning CI red on ambient noise.
    let mut verdict = Err(String::new());
    for attempt in 1..=3 {
        let mut base = Duration::MAX;
        let mut noop = Duration::MAX;
        let mut enabled = Duration::MAX;
        for _ in 0..ROUNDS {
            base = base.min(sample(|| {
                evaluator
                    .evaluate(
                        doc,
                        &compiled,
                        Context::document(doc),
                        &mut scratch,
                        &mut BudgetMeter::unlimited(),
                    )
                    .unwrap()
            }));
            noop = noop.min(sample(|| {
                engine
                    .evaluate_compiled(doc, &compiled, Context::document(doc))
                    .unwrap()
            }));
            enabled = enabled.min(sample(|| {
                traced
                    .evaluate_compiled(doc, &compiled, Context::document(doc))
                    .unwrap()
            }));
        }
        let pct = |d: Duration| (d.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        println!(
            "  eval {QUERY} (attempt {attempt}): baseline {:.4} ms; \
             overhead disabled {:+.2}%, enabled {:+.2}%",
            base.as_secs_f64() * 1e3,
            pct(noop),
            pct(enabled),
        );
        if noop > base + base / 100 + SLACK {
            verdict = Err(format!(
                "disabled-recorder path runs {:+.2}% over the uninstrumented baseline (bound: +1%)",
                pct(noop)
            ));
            continue;
        }
        // Coarse guard only — one span per evaluation must stay O(1),
        // but its exact cost is not a regression surface worth a tight
        // bound.
        if enabled > base + base / 2 + SLACK {
            verdict = Err(format!(
                "enabled recorder runs {:+.2}% over baseline (bound: +50%)",
                pct(enabled)
            ));
            continue;
        }
        verdict = Ok(());
        break;
    }
    if let Err(msg) = verdict {
        panic!("{msg} on all attempts");
    }
}

/// Works a small serving pool, then validates both exposition formats
/// instead of just grepping for substrings.
fn exposition_check(doc: &minctx_xml::Document) {
    let doc = Arc::new(doc.clone());
    let serve = ServeEngine::builder().workers(2).build();
    for q in ["count(//item)", "count(//item[@id])", "boolean(//listitem)"] {
        for _ in 0..4 {
            serve
                .query(Corpus::Document(Arc::clone(&doc)), q)
                .wait()
                .unwrap();
        }
    }
    let err = serve
        .query(Corpus::Document(Arc::clone(&doc)), "//item[")
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServeError::Eval(_)));

    let text = serve.metrics_text();
    check_prometheus(&text);
    assert!(text.contains("serve_requests 13"), "{text}");

    let json = serve.metrics_json();
    check_json(&json);
    assert!(json.contains("\"serve/requests\":13"), "{json}");

    // The process-global registry (xml/index counters) renders too.
    let global = minctx_obs::metrics_text();
    check_prometheus(&global);
    // (The corpus is generated through DocumentBuilder, so the builder
    // counter is the one guaranteed to have registered by now.)
    assert!(
        global.contains("xml_documents_built"),
        "global exposition lost the xml counters:\n{global}"
    );
}

/// Strict-enough Prometheus text-format check: every sample belongs to
/// a `# TYPE`-declared family, every value parses, histogram buckets
/// are cumulative and end at `+Inf` with the family's `_count`.
fn check_prometheus(text: &str) {
    let mut declared: HashSet<&str> = HashSet::new();
    let mut bucket_cum: Option<(String, u64)> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name");
            let kind = it.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric kind in {line:?}"
            );
            assert!(it.next().is_none(), "trailing tokens in {line:?}");
            declared.insert(name);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line {line:?} is not `name value`");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        assert!(value.is_finite() && value >= 0.0, "bad value in {line:?}");
        let name = series.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_max"))
            .filter(|f| declared.contains(f))
            .unwrap_or(name);
        assert!(
            declared.contains(family),
            "sample {line:?} has no # TYPE declaration"
        );
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name in {line:?} leaves the Prometheus alphabet"
        );
        // Bucket lines must be cumulative within a family and close at
        // +Inf; `_count` then repeats the +Inf total.
        if name.ends_with("_bucket") && declared.contains(family) {
            let cum = value as u64;
            if let Some((prev_family, prev)) = &bucket_cum {
                if prev_family == family {
                    assert!(cum >= *prev, "non-cumulative buckets at {line:?}");
                }
            }
            bucket_cum = Some((family.to_string(), cum));
            if series.contains("+Inf") {
                bucket_cum = None;
            }
        }
    }
    assert!(
        bucket_cum.is_none(),
        "histogram {bucket_cum:?} never closed with a +Inf bucket"
    );
}

/// Minimal JSON well-formedness scan: string/escape-aware bracket
/// matching.  Not a full parser, but it fails on every truncation or
/// quoting bug a renderer regression could introduce.
fn check_json(s: &str) {
    let mut stack: Vec<char> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced }} in exposition"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ] in exposition"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in JSON exposition");
    assert!(stack.is_empty(), "unclosed brackets in JSON exposition");
}

/// The golden plan: `Engine::explain` must show the PR2/PR3 behavior —
/// postings fast path, fused descendant step — as first-class data, and
/// its cardinalities must agree with `count()` ground truth.
fn explain_check(doc: &minctx_xml::Document) {
    let engine = Engine::new(Strategy::MinContext);
    let count = |q: &str| match engine.evaluate_str(doc, q).unwrap() {
        Value::Number(n) => n as u64,
        v => panic!("{q} returned {v:?}"),
    };
    let items = count("count(//item)");
    let with_id = count(&format!("count({QUERY})"));
    assert!(items > 0 && with_id > 0 && with_id < items);

    let profile = engine.explain(doc, QUERY).unwrap();
    assert_eq!(
        profile.ir_after, "/descendant::item[boolean(attribute::id)]",
        "rewrite no longer fuses the descendant chain"
    );
    assert_eq!(profile.fired_rules, vec![(Rule::FuseDescendant, 1)]);

    assert_eq!(profile.steps.len(), 2, "{}", profile.plan_text());
    let outer = &profile.steps[0];
    assert_eq!(outer.display, "descendant::item");
    assert_eq!(outer.route, AxisRoute::Postings, "postings fast path lost");
    assert_eq!(outer.input, 1, "descendant step starts from the root");
    assert_eq!(outer.output, with_id, "post-predicate cardinality");
    let pred = &profile.steps[1];
    assert_eq!(pred.display, "attribute::id");
    assert_eq!(
        pred.invocations, items,
        "predicate must run once per candidate item"
    );
    assert_eq!(profile.result, format!("node-set n={with_id}"));

    let plan = profile.plan_text();
    assert!(plan.contains("route=postings"), "{plan}");
    assert!(plan.contains("fired=fuse-descendant:1"), "{plan}");
    println!("{plan}");
}

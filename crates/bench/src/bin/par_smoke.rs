//! Parallel-evaluation smoke: proves the threads knob is agreeing and
//! free when off.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin par_smoke [elements]
//! ```
//!
//! Builds the XMark-style corpus (10⁵ elements by default) and asserts:
//!
//! * `Engine::with_threads(4)` produces **identical** values to
//!   `with_threads(1)` on every smoke query at real (default) split
//!   thresholds, under both serving strategies — and the run is not
//!   vacuous: the `par/*` counters must show chunked regions actually
//!   dispatched;
//! * a `with_threads(1)` engine stays within 1% of the default-built
//!   engine — threads=1 constructs no pool and must *be* the pre-knob
//!   sequential code path, not a gated version of it;
//! * for the record it prints the measured t=4 vs t=1 wall times (not
//!   asserted: CI containers are often pinned to one core, where the
//!   pool can only break even at best — see DESIGN.md "Parallel
//!   evaluation").
//!
//! The CI `par-smoke` job runs this binary.

use minctx_bench::{values_agree, xmark_doc, XmarkConfig};
use minctx_core::{Engine, Strategy};
use std::time::{Duration, Instant};

/// Queries spanning the parallel surfaces: postings sweeps (fused
/// descendant), wide child steps, predicate fan-out over large context
/// sets, reverse axes, and a scalar aggregate.
const QUERIES: &[&str] = &[
    "//item",
    "//item[@id]",
    "/site/*/*",
    "//item[bid]/seller",
    "//keyword/ancestor::item",
    "//bid[position() mod 7 = 0]",
    "count(//item[@id]) + count(//person)",
    "sum(//@v)",
];

/// Evaluations per timing sample; bound asserted on the minimum over
/// interleaved rounds (one-sided noise — see obs_smoke).
const ITERS: u32 = 8;
const ROUNDS: usize = 40;

/// Absolute slack absorbing timer granularity on top of the 1% bound.
const SLACK: Duration = Duration::from_micros(20);

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("elements must be an integer"))
        .unwrap_or(100_000);
    let doc = xmark_doc(&XmarkConfig::sized(elements));
    println!(
        "corpus: {} nodes ({} elements)",
        doc.len(),
        doc.element_count()
    );

    agreement_check(&doc);
    overhead_check(&doc);
    println!("par smoke OK");
}

/// threads=4 must agree with threads=1, value for value (node-sets
/// compare by pre-order ordinal), at the engine's *default* thresholds
/// — the production gating, not a forced-down test geometry.
fn agreement_check(doc: &minctx_xml::Document) {
    let chunks_before = minctx_xml::par::par_chunks_dispatched();
    for strategy in [Strategy::MinContext, Strategy::OptMinContext] {
        let seq = Engine::new(strategy).with_threads(1);
        let par = Engine::new(strategy).with_threads(4);
        for q in QUERIES {
            let a = seq.evaluate_str(doc, q).unwrap();
            let b = par.evaluate_str(doc, q).unwrap();
            assert!(
                values_agree(&a, &b),
                "{strategy} / {q}: threads=1 {a:?} != threads=4 {b:?}"
            );
        }
    }
    let dispatched = minctx_xml::par::par_chunks_dispatched() - chunks_before;
    assert!(
        dispatched > 0,
        "no chunks dispatched at 10^5 scale — the agreement check is vacuous"
    );
    println!(
        "  agreement: {} queries x 2 strategies identical at t=4 \
         ({dispatched} chunks dispatched, {} bypasses)",
        QUERIES.len(),
        minctx_xml::par::par_bypasses(),
    );
}

/// One timing sample: the per-call mean over [`ITERS`] back-to-back
/// calls.
fn sample<R>(mut f: impl FnMut() -> R) -> Duration {
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(f());
    }
    t0.elapsed() / ITERS
}

/// threads=1 vs the default-built engine: both must be the same
/// sequential code path (`with_threads(1)` spawns no pool), so the
/// knob's mere existence costs the sequential user nothing.
fn overhead_check(doc: &minctx_xml::Document) {
    const QUERY: &str = "//item[@id]";
    let base_engine = Engine::new(Strategy::MinContext);
    let knob_engine = Engine::new(Strategy::MinContext).with_threads(1);
    let par_engine = Engine::new(Strategy::MinContext).with_threads(4);
    let parsed = minctx_syntax::parse_xpath(QUERY).unwrap();
    let want = base_engine.evaluate(doc, &parsed).unwrap();
    assert_eq!(knob_engine.evaluate(doc, &parsed).unwrap(), want);

    // Three attempts: a genuine regression fails all of them, an
    // unlucky scheduling phase at most one or two (same protocol as
    // obs_smoke's recorder bound).
    let mut verdict = Err(String::new());
    for attempt in 1..=3 {
        let mut base = Duration::MAX;
        let mut knob = Duration::MAX;
        let mut par4 = Duration::MAX;
        for _ in 0..ROUNDS {
            base = base.min(sample(|| base_engine.evaluate(doc, &parsed).unwrap()));
            knob = knob.min(sample(|| knob_engine.evaluate(doc, &parsed).unwrap()));
            par4 = par4.min(sample(|| par_engine.evaluate(doc, &parsed).unwrap()));
        }
        let pct = (knob.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        println!(
            "  eval {QUERY} (attempt {attempt}): default {:.4} ms, \
             threads=1 {:+.2}%, threads=4 {:.4} ms (informational)",
            base.as_secs_f64() * 1e3,
            pct,
            par4.as_secs_f64() * 1e3,
        );
        if knob > base + base / 100 + SLACK {
            verdict = Err(format!(
                "threads=1 runs {pct:+.2}% over the default sequential engine (bound: +1%)"
            ));
            continue;
        }
        verdict = Ok(());
        break;
    }
    if let Err(msg) = verdict {
        panic!("{msg} on all attempts");
    }
}

//! Concurrent-service smoke: proves the `minctx-serve` worker pool
//! serves a shared snapshot **without re-parsing, re-building, or
//! copying** it, and that per-request budgets shed pathological work.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin serve_smoke [elements]
//! ```
//!
//! Builds the XMark-style corpus (10⁵ elements by default), snapshots
//! it, then runs 4 workers × 1 000 requests from 4 client threads and
//! asserts:
//!
//! * every concurrent answer agrees with a single-threaded evaluation
//!   of the same query on the same snapshot;
//! * `minctx_xml::tokenizers_created()` and
//!   `minctx_xml::builder::documents_built()` stay **flat** across the
//!   serving phase — after warm-up the pool never lexes XML or rebuilds
//!   an arena (the snapshot is mapped once per content stamp, compiled
//!   queries are cached per `(query, doc stamp)`);
//! * mean allocation per request stays under a fixed ceiling orders of
//!   magnitude below the document footprint — no per-request copy;
//! * a pathological request under a 100 ms deadline comes back as
//!   `BudgetExhausted` promptly, and the pool keeps serving;
//! * a burst of 4× the queue capacity against a small pool is shed as
//!   `Overloaded` at admission — instantly, not after a timeout — while
//!   every admitted request resolves within a bounded p99, and a
//!   retrying client (`query_with_retry`) gets through once the burst
//!   drains.
//!
//! The CI `serve-smoke` job runs this binary; see DESIGN.md
//! "Concurrent service" and "Fault tolerance".

use minctx_bench::{values_agree, xmark_doc, CountingAllocator, XmarkConfig};
use minctx_core::{open_snapshot, write_snapshot, Budget, Engine, EvalError, Strategy};
use minctx_serve::{Corpus, RetryPolicy, ServeEngine, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const WORKERS: usize = 4;
const CLIENTS: usize = 4;
const REQUESTS: usize = 1_000;

/// Mean bytes allocated per steady-state request.  Scalar answers over
/// cached compilations allocate intermediate node-sets bounded by the
/// query, never an `O(file)` snapshot copy (~10 MB at the default
/// tier), which is what this ceiling makes falsifiable.
const PER_REQUEST_ALLOC_CEILING: usize = 4 << 20;

/// The steady-state mix: scalar answers so the reply channel, not the
/// result size, dominates per-request allocation.
const QUERIES: &[&str] = &[
    "count(//item)",
    "count(//item[@id])",
    "count(//parlist/listitem)",
    "count(/site/item)",
    "boolean(//listitem)",
    "count(//item) + count(//parlist)",
];

/// Quadratic on purpose: a per-node `preceding::*` sweep that would run
/// for minutes at the default tier without a deadline.
const PATHOLOGICAL: &str = "count(//*[count(preceding::*) > 1])";

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let cfg = XmarkConfig::sized(elements);

    let build_start = Instant::now();
    let doc = xmark_doc(&cfg);
    println!(
        "corpus: {} nodes ({elements} elements), built in {:.1?}",
        doc.len(),
        build_start.elapsed()
    );

    let path = std::env::temp_dir().join(format!("minctx-serve-smoke-{}.mctx", std::process::id()));
    write_snapshot(&doc, &path).unwrap();
    drop(doc);

    // Single-threaded ground truth on the same mapped snapshot, same
    // strategy as the pool's workers.
    let mapped = open_snapshot(&path).unwrap();
    let engine = Engine::new(Strategy::OptMinContext);
    let expected: Vec<_> = QUERIES
        .iter()
        .map(|q| engine.evaluate_str(&mapped, q).unwrap())
        .collect();
    drop(mapped);

    let serve = Arc::new(ServeEngine::builder().workers(WORKERS).build());

    // Warm-up: one request per query maps the snapshot (once) and fills
    // the compiled-query cache.
    for (q, want) in QUERIES.iter().zip(&expected) {
        let got = serve
            .query(Corpus::Snapshot(path.clone()), q)
            .wait()
            .unwrap();
        assert!(values_agree(&got, want), "{q}: warm-up {got:?} != {want:?}");
    }

    let toks_before = minctx_xml::tokenizers_created();
    let docs_before = minctx_xml::builder::documents_built();
    let alloc_before = ALLOC.total();
    let serve_start = Instant::now();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let serve = Arc::clone(&serve);
            let path = path.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for i in 0..REQUESTS / CLIENTS {
                    let qi = (c + i) % QUERIES.len();
                    let got = serve
                        .query(Corpus::Snapshot(path.clone()), QUERIES[qi])
                        .wait()
                        .unwrap();
                    assert!(
                        values_agree(&got, &expected[qi]),
                        "{}: got {got:?}, want {:?}",
                        QUERIES[qi],
                        expected[qi]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let serve_time = serve_start.elapsed();
    let per_request_alloc = (ALLOC.total() - alloc_before) / REQUESTS;
    assert_eq!(
        minctx_xml::tokenizers_created(),
        toks_before,
        "the pool lexed XML mid-serve: a snapshot was re-parsed"
    );
    assert_eq!(
        minctx_xml::builder::documents_built(),
        docs_before,
        "the pool re-built an arena mid-serve: the snapshot cache missed"
    );
    assert!(
        per_request_alloc <= PER_REQUEST_ALLOC_CEILING,
        "mean {per_request_alloc} bytes/request (ceiling {PER_REQUEST_ALLOC_CEILING}): \
         something is copied per request"
    );

    // A pathological request is shed by its deadline — promptly, as an
    // error — and the pool stays healthy.
    let shed_start = Instant::now();
    let err = serve
        .query_with_budget(
            Corpus::Snapshot(path.clone()),
            PATHOLOGICAL,
            Budget::timeout(Duration::from_millis(100)),
        )
        .wait()
        .unwrap_err();
    let shed_time = shed_start.elapsed();
    assert!(
        matches!(err, ServeError::Eval(EvalError::BudgetExhausted { .. })),
        "pathological request returned {err:?}"
    );
    assert!(
        shed_time < Duration::from_secs(2),
        "deadline enforcement took {shed_time:.1?}: metering is too coarse"
    );
    let after = serve
        .query(Corpus::Snapshot(path.clone()), QUERIES[0])
        .wait()
        .unwrap();
    assert!(values_agree(&after, &expected[0]));

    let stats = serve.stats();
    assert!(
        stats.snapshot_hits > stats.snapshot_misses && stats.query_hits > stats.query_misses,
        "caches did not absorb the steady state: {stats:?}"
    );

    println!(
        "served {REQUESTS} requests on {WORKERS} workers in {serve_time:.1?} \
         ({:.0} req/s), {per_request_alloc} bytes/request (ceiling {PER_REQUEST_ALLOC_CEILING})",
        REQUESTS as f64 / serve_time.as_secs_f64()
    );
    println!("pathological query shed in {shed_time:.1?} (100 ms deadline); stats: {stats:?} — OK");
    drop(serve);

    overload_phase(&path, &expected[0]);
    std::fs::remove_file(&path).ok();
}

/// Admission control under a 4× burst: a deliberately small pool (2
/// workers, queue capacity 64) takes 256 near-simultaneous requests.
/// Excess load must bounce as `Overloaded` *at submission*, admitted
/// requests must all resolve with a bounded p99, and a backoff-retrying
/// client must get through once the burst drains.
fn overload_phase(path: &std::path::Path, want_first: &minctx_core::Value) {
    const QUEUE_CAPACITY: usize = 64;
    const BURST: usize = 4 * QUEUE_CAPACITY;

    let serve = ServeEngine::builder()
        .workers(2)
        .queue_capacity(QUEUE_CAPACITY)
        .build();
    // Warm the caches so burst latency measures queueing, not mapping.
    serve
        .query(Corpus::Snapshot(path.to_path_buf()), QUERIES[0])
        .wait()
        .unwrap();

    let burst_start = Instant::now();
    let tickets: Vec<_> = (0..BURST)
        .map(|i| {
            let t = serve.query_with_budget(
                Corpus::Snapshot(path.to_path_buf()),
                QUERIES[i % QUERIES.len()],
                Budget::timeout(Duration::from_secs(2)),
            );
            (Instant::now(), t)
        })
        .collect();
    let submit_time = burst_start.elapsed();

    let mut latencies = Vec::with_capacity(BURST);
    let (mut ok, mut shed, mut deadline) = (0usize, 0usize, 0usize);
    for (submitted, t) in tickets {
        let got = t
            .wait_timeout(Duration::from_secs(20))
            .expect("burst ticket hung");
        latencies.push(submitted.elapsed());
        match got {
            Ok(_) => ok += 1,
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, QUEUE_CAPACITY);
                shed += 1;
            }
            Err(ServeError::Eval(EvalError::BudgetExhausted { .. })) => deadline += 1,
            Err(e) => panic!("burst request failed oddly: {e:?}"),
        }
    }
    latencies.sort_unstable();
    let p99 = latencies[latencies.len() * 99 / 100 - 1];

    assert!(
        shed > 0,
        "a {BURST}-request burst against capacity {QUEUE_CAPACITY} shed nothing \
         (submit took {submit_time:.1?}; the workers outran the client?)"
    );
    assert!(ok > 0, "the burst starved every admitted request");
    assert!(
        p99 < Duration::from_secs(5),
        "burst p99 {p99:.1?}: admission control failed to bound tail latency"
    );
    let stats = serve.stats();
    assert_eq!(stats.shed as usize, shed);
    assert!(stats.max_queue_depth <= QUEUE_CAPACITY as u64);

    // With the burst drained, a retrying client succeeds.
    let retried = serve
        .query_with_retry(
            Corpus::Snapshot(path.to_path_buf()),
            QUERIES[0],
            Budget::timeout(Duration::from_secs(10)),
            RetryPolicy::default()
                .attempts(6)
                .base_delay(Duration::from_millis(20)),
        )
        .expect("retry never got through after the burst");
    assert!(values_agree(&retried, want_first));

    println!(
        "overload burst: {BURST} submitted against capacity {QUEUE_CAPACITY} → \
         {ok} ok, {shed} shed (Overloaded), {deadline} deadline-exhausted; \
         p99 {p99:.1?}, max depth {} — OK",
        stats.max_queue_depth
    );
}

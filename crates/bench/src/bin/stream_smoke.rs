//! The streaming allocation-ceiling smoke (CI: `stream-smoke` job).
//!
//! Generates the 10⁶-element XMark bench corpus, serializes it, drops
//! the arena, and evaluates the serving-shaped query family through
//! `evaluate_reader` under a counting allocator.  It asserts, per query:
//!
//! * the classifier streamed it (no fallback);
//! * the peak working set of the pass stayed under a ceiling that is a
//!   small fraction of what the arena for this corpus costs — i.e.
//!   memory is bounded by document depth + result size, not `|D|`;
//! * `documents_built()` is unchanged — the arena was *never* built.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin stream_smoke [-- elements [ceiling-mb]]
//! ```

use minctx_bench::{xmark_doc, CountingAllocator, XmarkConfig};
use minctx_core::{Engine, Strategy};
use minctx_stream::{StreamValue, StreamingEngine};
use minctx_xml::serialize::to_xml_string;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let elements: usize = args
        .next()
        .map(|a| a.parse().expect("elements must be a number"))
        .unwrap_or(1_000_000);
    let ceiling_mb: usize = args
        .next()
        .map(|a| a.parse().expect("ceiling must be a number"))
        .unwrap_or(64);

    let doc = xmark_doc(&XmarkConfig::sized(elements));
    let arena_nodes = doc.len();
    let xml = to_xml_string(&doc);
    drop(doc);
    println!(
        "corpus: {elements} elements ({arena_nodes} arena nodes), {:.1} MB of XML text",
        xml.len() as f64 / (1024.0 * 1024.0)
    );

    let engine = Engine::new(Strategy::Streaming);
    let built_before = minctx_xml::builder::documents_built();
    let ceiling = ceiling_mb * 1024 * 1024;
    for q in [
        "//item",
        "//item[@id]",
        "//item/@id",
        "count(//item[@id])",
        "boolean(//nosuchlabel)",
    ] {
        let query = minctx_syntax::parse_xpath(q).unwrap();
        let live = ALLOC.live();
        ALLOC.reset_peak();
        // The io::Read path: sliding-window tokenization end to end.
        let out = engine
            .evaluate_reader(&query, xml.as_bytes())
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let peak = ALLOC.peak().saturating_sub(live);
        let value = out
            .streamed()
            .unwrap_or_else(|| panic!("{q}: fell back ({:?})", out.fallback_reason()));
        let size = match value {
            StreamValue::Nodes(ms) => ms.len().to_string(),
            StreamValue::Number(n) => format!("={n}"),
            StreamValue::Boolean(b) => format!("={b}"),
        };
        println!(
            "  {q:<24} result {size:>8}   peak {:>8.2} MB (ceiling {ceiling_mb} MB)",
            peak as f64 / (1024.0 * 1024.0)
        );
        assert!(
            peak <= ceiling,
            "{q}: streaming peak {peak} bytes exceeds the {ceiling}-byte ceiling"
        );
    }
    assert_eq!(
        minctx_xml::builder::documents_built(),
        built_before,
        "a Document arena was built on the streamable path"
    );
    println!("stream smoke OK: no arena built, all passes under the allocation ceiling");
}

//! Persistent-index smoke: proves `open_snapshot` is what it claims —
//! **zero-copy and parser-free** — on the benchmark corpus.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin index_smoke [elements]
//! ```
//!
//! Builds the XMark-style corpus (10⁶ elements by default, matching the
//! stream smoke's tier), snapshots it, drops the arena, reopens the
//! snapshot, and asserts:
//!
//! * `minctx_xml::tokenizers_created()` did not move — the open never
//!   lexed a byte of XML (no re-parse, structurally impossible to fake);
//! * `minctx_xml::builder::documents_built()` did not move — no arena
//!   was re-built either, the columns were adopted in place;
//! * total bytes allocated during the open stay under a fixed ceiling
//!   (1 MiB) that is orders of magnitude below the document's own
//!   footprint — only the name table and the document shell may
//!   allocate, never an `O(|D|)` column copy;
//! * a query answered from the reopened snapshot agrees with the answer
//!   computed on the original arena, and the snapshot stamp round-trips.
//!
//! The CI `index-smoke` job runs this binary; see DESIGN.md "Persistent
//! index".

use minctx_bench::{values_agree, xmark_doc, CountingAllocator, XmarkConfig};
use minctx_core::{open_snapshot, write_snapshot, Engine, Strategy};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Bytes `open_snapshot` may allocate: name table + document shell +
/// file handles.  The 10⁶-element corpus itself is ~10⁸ bytes, so this
/// ceiling is what makes "zero-copy" falsifiable.  (The heap fallback
/// for platforms without `mmap` would blow straight through it — by
/// design; this smoke pins the mapped path.)
const OPEN_ALLOC_CEILING: usize = 1 << 20;

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = XmarkConfig::sized(elements);

    let build_start = Instant::now();
    let doc = xmark_doc(&cfg);
    let nodes = doc.len();
    println!(
        "corpus: {nodes} nodes ({elements} elements), built in {:.1?}",
        build_start.elapsed()
    );

    let engine = Engine::new(Strategy::OptMinContext);
    let expected = engine.evaluate_str(&doc, "count(//item)").unwrap();

    let path = std::env::temp_dir().join(format!("minctx-index-smoke-{}.mctx", std::process::id()));
    let write_start = Instant::now();
    let info = write_snapshot(&doc, &path).unwrap();
    println!(
        "snapshot: {} bytes written in {:.1?} (stamp {:#018x})",
        info.file_len,
        write_start.elapsed(),
        info.stamp
    );
    drop(doc);

    let docs_before = minctx_xml::builder::documents_built();
    let toks_before = minctx_xml::tokenizers_created();
    let alloc_before = ALLOC.total();
    let open_start = Instant::now();
    let snap = open_snapshot(&path).unwrap();
    let open_time = open_start.elapsed();
    let open_alloc = ALLOC.total() - alloc_before;

    assert_eq!(
        minctx_xml::tokenizers_created(),
        toks_before,
        "open_snapshot constructed a Tokenizer: the snapshot was re-lexed"
    );
    assert_eq!(
        minctx_xml::builder::documents_built(),
        docs_before,
        "open_snapshot ran the DocumentBuilder: the arena was re-built"
    );
    assert!(
        open_alloc <= OPEN_ALLOC_CEILING,
        "open_snapshot allocated {open_alloc} bytes (ceiling {OPEN_ALLOC_CEILING}): \
         a column was copied instead of mapped"
    );

    let got = engine.evaluate_str(&snap, "count(//item)").unwrap();
    assert!(
        values_agree(&got, &expected),
        "snapshot answer {got:?} != arena answer {expected:?}"
    );
    assert_eq!(
        minctx_xml::tokenizers_created(),
        toks_before,
        "evaluating on a snapshot lexed XML"
    );
    assert_eq!(
        snap.stamp(),
        info.stamp,
        "stamp did not survive the round trip"
    );

    println!(
        "open_snapshot: {open_time:.1?}, {open_alloc} bytes allocated \
         (ceiling {OPEN_ALLOC_CEILING}); count(//item) = {got:?} — OK"
    );
    std::fs::remove_file(&path).ok();
}

//! Reproduces the paper's timing tables: every strategy on every query
//! family, across growing synthetic documents.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin tables [--quick]
//! ```
//!
//! Output is one table per query family, rows = document size, columns =
//! strategy, cells = median milliseconds ("—" where the naive budget
//! tripped or a strategy was skipped as hopeless at that size).

use minctx_bench::{
    exponential_doc, exponential_family, fmt_ms, time_strategy, wide_doc, CORE_XPATH_QUERIES,
    FULL_XPATH_QUERIES, WADLER_QUERIES,
};
use minctx_core::Strategy;
use minctx_xml::Document;

const NAIVE_BUDGET: u64 = 50_000_000;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, runs) = if quick {
        (vec![50, 100], 3)
    } else {
        (vec![50, 200, 800], 5)
    };
    let docs: Vec<(usize, Document)> = sizes.iter().map(|&n| (n, wide_doc(n))).collect();

    banner("Exponential family (Section 1): query size grows, |D| = 5");
    header();
    let doc = exponential_doc();
    for i in [4usize, 8, 12, 16, 20] {
        let q = exponential_family(i);
        print!("{:>8}", format!("i={i}"));
        for s in Strategy::ALL {
            let budget = (s == Strategy::Naive).then_some(NAIVE_BUDGET);
            print!(" {}", fmt_ms(time_strategy(&doc, s, &q, budget, runs)));
        }
        println!();
    }

    for (title, queries) in [
        ("Core XPath (Theorem 7)", CORE_XPATH_QUERIES),
        ("Extended Wadler (Theorem 10)", WADLER_QUERIES),
        ("Full XPath (Theorem 13)", FULL_XPATH_QUERIES),
    ] {
        banner(title);
        for q in queries {
            println!("  query: {q}");
            header();
            for (_, doc) in &docs {
                print!("{:>8}", format!("|D|={}", doc.len()));
                for s in Strategy::ALL {
                    // The cubic tables are hopeless beyond small documents
                    // when the query is position-dependent; skip instead of
                    // stalling the table (that cliff is the paper's point).
                    let skip_cvt = s == Strategy::ContextValueTable && doc.len() > 650;
                    let budget = (s == Strategy::Naive).then_some(NAIVE_BUDGET);
                    let t = if skip_cvt {
                        None
                    } else {
                        time_strategy(doc, s, q, budget, runs)
                    };
                    print!(" {}", fmt_ms(t));
                }
                println!();
            }
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn header() {
    print!("{:>8}", "");
    for s in Strategy::ALL {
        print!(" {:>10}", s.as_str());
    }
    println!(" (median ms)");
}

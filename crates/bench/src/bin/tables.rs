//! Reproduces the paper's timing tables, plus the axis-kernel regression
//! snapshot used to guard the postings-index fast paths.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin tables [--quick]
//! cargo run --release -p minctx-bench --bin tables -- --json BENCH_baseline.json
//! ```
//!
//! Default mode prints one table per query family (rows = document size,
//! columns = strategy, cells = median milliseconds, "—" where the naive
//! budget tripped or a strategy was skipped as hopeless at that size),
//! followed by the axis-step section on an XMark-style corpus.
//!
//! `--json PATH` skips the strategy tables and runs the regression
//! snapshot — the axis-step section (10⁵-element corpus; 2·10⁴ with
//! `--quick`), the `stream/*` rows (streaming vs arena at the 10⁵ and
//! 10⁶ tiers; quick: 2·10⁴/10⁵), the `index/*` rows (snapshot
//! write / zero-copy open vs re-parse / cold first-query at the same
//! tiers), the `serve/*` rows (worker-pool qps and p50/p99 latency
//! at 1/2/4/8 workers over a shared snapshot, plus a
//! pathological-query injection run whose tail is bounded by the
//! request deadline), the `obs/*` rows (engine evaluation with the
//! default disabled recorder vs. a recorder draining to a discarding
//! sink, `Engine::explain`, and Prometheus exposition rendering), and
//! the `par/*` rows (`Engine::with_threads` wall time and speedup at
//! threads 1/2/4 plus a split-threshold sweep) — writing
//! machine-diffable JSON to `PATH`.
//! `BENCH_baseline.json` at the repo root is one such committed
//! snapshot; regenerate and diff against it before landing kernel,
//! streaming or snapshot-format changes.

use minctx_bench::{
    exponential_doc, exponential_family, fmt_ms, time, time_strategy, time_strategy_opt, wide_doc,
    xmark_doc, CountingAllocator, XmarkConfig, CORE_XPATH_QUERIES, FULL_XPATH_QUERIES,
    WADLER_QUERIES,
};
use minctx_core::{Engine, Strategy};
use minctx_stream::StreamingEngine;
use minctx_xml::axes::{axis_image, Axis, NodeTest};
use minctx_xml::serialize::to_xml_string;
use minctx_xml::{Document, NodeSet};

const NAIVE_BUDGET: u64 = 50_000_000;

/// Byte counters behind the `stream/*/alloc-*` rows.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let snapshot_elements = if quick { 20_000 } else { 100_000 };
    let snapshot_runs = if quick { 3 } else { 5 };

    // Streaming tiers: a comparison corpus and a 10⁶-element scale
    // corpus (streaming's memory stays bounded by depth + result there —
    // that is its point; since PR 5 the arena evaluators run at this
    // scale too, so the comparison covers both tiers).
    let (stream_compare, stream_scale) = if quick {
        (20_000, 100_000)
    } else {
        (100_000, 1_000_000)
    };

    if let Some(path) = json_path {
        let cfg = XmarkConfig::sized(snapshot_elements);
        let doc = xmark_doc(&cfg);
        let mut entries = axis_snapshot(&doc, snapshot_runs);
        entries.extend(stream_snapshot(stream_compare, snapshot_runs));
        entries.extend(stream_snapshot(stream_scale, snapshot_runs));
        entries.extend(index_snapshot(stream_compare, snapshot_runs));
        entries.extend(index_snapshot(stream_scale, snapshot_runs));
        entries.extend(serve_snapshot(stream_compare));
        entries.extend(serve_snapshot(stream_scale));
        entries.extend(obs_snapshot(&doc, snapshot_runs));
        entries.extend(par_snapshot(stream_compare, snapshot_runs));
        entries.extend(par_snapshot(stream_scale, snapshot_runs));
        print_snapshot(&doc, &entries);
        std::fs::write(&path, snapshot_json(&cfg, &doc, &entries))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
        return;
    }

    let (sizes, runs) = if quick {
        (vec![50, 100], 3)
    } else {
        (vec![50, 200, 800], 5)
    };
    let docs: Vec<(usize, Document)> = sizes.iter().map(|&n| (n, wide_doc(n))).collect();

    banner("Exponential family (Section 1): query size grows, |D| = 5");
    header();
    let doc = exponential_doc();
    for i in [4usize, 8, 12, 16, 20] {
        let q = exponential_family(i);
        print!("{:>8}", format!("i={i}"));
        for s in Strategy::ALL {
            let budget = (s == Strategy::Naive).then_some(NAIVE_BUDGET);
            print!(" {}", fmt_ms(time_strategy(&doc, s, &q, budget, runs)));
        }
        println!();
    }

    for (title, queries) in [
        ("Core XPath (Theorem 7)", CORE_XPATH_QUERIES),
        ("Extended Wadler (Theorem 10)", WADLER_QUERIES),
        ("Full XPath (Theorem 13)", FULL_XPATH_QUERIES),
    ] {
        banner(title);
        for q in queries {
            println!("  query: {q}");
            header();
            for (_, doc) in &docs {
                print!("{:>8}", format!("|D|={}", doc.len()));
                for s in Strategy::ALL {
                    // The cubic tables are hopeless beyond small documents
                    // when the query is position-dependent; skip instead of
                    // stalling the table (that cliff is the paper's point).
                    let skip_cvt = s == Strategy::ContextValueTable && doc.len() > 650;
                    let budget = (s == Strategy::Naive).then_some(NAIVE_BUDGET);
                    let t = if skip_cvt {
                        None
                    } else {
                        time_strategy(doc, s, q, budget, runs)
                    };
                    print!(" {}", fmt_ms(t));
                }
                println!();
            }
        }
    }

    banner("Axis-step kernels (XMark-style corpus)");
    let cfg = XmarkConfig::sized(snapshot_elements);
    let doc = xmark_doc(&cfg);
    let entries = axis_snapshot(&doc, snapshot_runs);
    print_snapshot(&doc, &entries);

    banner("Streaming vs arena (one-pass evaluate_reader)");
    for elements in [stream_compare, stream_scale] {
        let entries = stream_snapshot(elements, snapshot_runs);
        for (key, v) in &entries {
            println!("  {key:<52} {v:>10.4}");
        }
    }

    banner("Persistent index (snapshot write / zero-copy open)");
    for elements in [stream_compare, stream_scale] {
        let entries = index_snapshot(elements, snapshot_runs);
        for (key, v) in &entries {
            println!("  {key:<52} {v:>10.4}");
        }
    }

    banner("Concurrent service (shared-snapshot worker pool)");
    for elements in [stream_compare, stream_scale] {
        let entries = serve_snapshot(elements);
        for (key, v) in &entries {
            println!("  {key:<52} {v:>10.4}");
        }
    }

    banner("Observability (recorder overhead / explain / exposition)");
    for (key, v) in &obs_snapshot(&doc, snapshot_runs) {
        println!("  {key:<52} {v:>10.4}");
    }

    banner("Parallel evaluation (threads knob / threshold sweep)");
    for elements in [stream_compare, stream_scale] {
        for (key, v) in &par_snapshot(elements, snapshot_runs) {
            println!("  {key:<52} {v:>10.4}");
        }
    }
}

/// The `par/*` rows: what `Engine::with_threads` buys (or costs) on
/// this machine.  For each tier, evaluation wall time of two
/// parallel-eligible queries at threads 1/2/4 with a derived
/// `speedup/tN` ratio (t1 / tN, so >1 means the pool helped), plus a
/// sweep of the split threshold at threads=4 showing where the
/// chunk-coordination cost crosses the split benefit.  On a single-core
/// container the speedups sit at ~1.0 — the rows then record that the
/// coordination overhead stays in the noise, not a speedup (see
/// DESIGN.md "Parallel evaluation").
fn par_snapshot(elements: usize, runs: usize) -> Vec<(String, f64)> {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let tag = format!("{}k", elements / 1000);
    let doc = xmark_doc(&XmarkConfig::sized(elements));
    let mut out: Vec<(String, f64)> = Vec::new();
    for q in ["//item[@id]", "/site/*/*"] {
        let query = minctx_syntax::parse_xpath(q).unwrap();
        let mut t1_ms = 0.0;
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(Strategy::MinContext).with_threads(threads);
            engine.evaluate(&doc, &query).unwrap(); // warm compile + pool
            let t = ms(time(runs, || engine.evaluate(&doc, &query).unwrap()));
            out.push((format!("par/{tag}/eval-ms/t{threads}/{q}"), t));
            if threads == 1 {
                t1_ms = t;
            } else {
                out.push((format!("par/{tag}/speedup/t{threads}/{q}"), t1_ms / t));
            }
        }
    }
    // Threshold sweep at threads=4 on the fused-descendant query: low
    // thresholds chunk nearly every step, high ones bypass all but the
    // biggest sweeps.
    let query = minctx_syntax::parse_xpath("//item[@id]").unwrap();
    for threshold in [512usize, 4096, 32768, 262_144] {
        let engine = Engine::new(Strategy::MinContext)
            .with_threads(4)
            .with_par_threshold(threshold);
        engine.evaluate(&doc, &query).unwrap();
        out.push((
            format!("par/{tag}/eval-ms/t4-thr{threshold}"),
            ms(time(runs, || engine.evaluate(&doc, &query).unwrap())),
        ));
    }
    out
}

/// The `serve/*` rows: saturation throughput and latency of the
/// `minctx-serve` worker pool on a shared snapshot.  16 client threads
/// issue blocking round trips over a mixed scalar workload; rows record
/// qps and p50/p99 latency at 1/2/4/8 workers (the scaling acceptance:
/// ≥3× qps at 4 workers vs 1 on the 10⁵ tier), plus a run with a
/// pathological `preceding::*` query injected at 1/100 density under a
/// 100 ms deadline — its p99 must stay bounded by that deadline, not by
/// the query's natural (multi-second) cost.
fn serve_snapshot(elements: usize) -> Vec<(String, f64)> {
    use minctx_core::{write_snapshot, Budget, EvalError};
    use minctx_serve::{Corpus, ServeEngine, ServeError};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const CLIENTS: usize = 16;
    const MIX: &[&str] = &[
        "count(//item)",
        "count(//item[@id])",
        "count(//parlist/listitem)",
        "boolean(//listitem)",
    ];
    const PATHOLOGICAL: &str = "count(//*[count(preceding::*) > 1])";
    const DEADLINE: Duration = Duration::from_millis(100);

    let tag = format!("{}k", elements / 1000);
    let per_client = (3_200_000 / elements.max(1)).clamp(8, 32);
    let doc = xmark_doc(&XmarkConfig::sized(elements));
    let path = std::env::temp_dir().join(format!(
        "minctx-tables-serve-{}-{tag}.mctx",
        std::process::id()
    ));
    write_snapshot(&doc, &path).unwrap();
    drop(doc);

    // One saturation run: `clients` threads in blocking round trips,
    // returning (wall time, sorted per-request latencies, shed count).
    let run = |workers: usize, inject: bool| -> (Duration, Vec<Duration>, usize) {
        let serve = Arc::new(ServeEngine::builder().workers(workers).build());
        for q in MIX {
            serve
                .query(Corpus::Snapshot(path.clone()), q)
                .wait()
                .unwrap();
        }
        let start = Instant::now();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let serve = Arc::clone(&serve);
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    let mut shed = 0usize;
                    for i in 0..per_client {
                        let n = c * per_client + i;
                        let t0 = Instant::now();
                        let res = if inject && n % 100 == 0 {
                            serve.query_with_budget(
                                Corpus::Snapshot(path.clone()),
                                PATHOLOGICAL,
                                Budget::timeout(DEADLINE),
                            )
                        } else {
                            serve.query(Corpus::Snapshot(path.clone()), MIX[n % MIX.len()])
                        }
                        .wait();
                        lats.push(t0.elapsed());
                        match res {
                            Ok(_) => {}
                            Err(ServeError::Eval(EvalError::BudgetExhausted { .. })) => shed += 1,
                            Err(e) => panic!("serve bench request failed: {e:?}"),
                        }
                    }
                    (lats, shed)
                })
            })
            .collect();
        let mut lats = Vec::new();
        let mut shed = 0;
        for h in handles {
            let (l, s) = h.join().unwrap();
            lats.extend(l);
            shed += s;
        }
        let wall = start.elapsed();
        lats.sort_unstable();
        (wall, lats, shed)
    };

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let total = (CLIENTS * per_client) as f64;
    let mut out: Vec<(String, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (wall, lats, _) = run(workers, false);
        out.push((
            format!("serve/{tag}/qps/w{workers}"),
            total / wall.as_secs_f64(),
        ));
        out.push((
            format!("serve/{tag}/p50-ms/w{workers}"),
            ms(lats[lats.len() / 2]),
        ));
        out.push((
            format!("serve/{tag}/p99-ms/w{workers}"),
            ms(lats[lats.len() * 99 / 100]),
        ));
    }
    // Pathological injection at 4 workers: the deadline bounds the tail.
    let (wall, lats, shed) = run(4, true);
    out.push((
        format!("serve/{tag}/qps/w4-injected"),
        total / wall.as_secs_f64(),
    ));
    out.push((
        format!("serve/{tag}/p99-ms/w4-injected"),
        ms(lats[lats.len() * 99 / 100]),
    ));
    out.push((format!("serve/{tag}/shed/w4-injected"), shed as f64));
    std::fs::remove_file(&path).ok();
    out
}

/// The `index/*` rows: snapshot write time, zero-copy open time vs the
/// XML re-parse it replaces (the acceptance ratio: open must be ≥ 5×
/// faster at the 10⁶ tier), and cold first-query latency — open a fresh
/// snapshot, compile and answer one serving query end to end.
fn index_snapshot(elements: usize, runs: usize) -> Vec<(String, f64)> {
    use minctx_core::{open_snapshot, write_snapshot};
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let tag = format!("{}k", elements / 1000);
    let cfg = XmarkConfig::sized(elements);
    let doc = xmark_doc(&cfg);
    let xml = to_xml_string(&doc);
    let path = std::env::temp_dir().join(format!(
        "minctx-tables-index-{}-{tag}.mctx",
        std::process::id()
    ));
    let mut out: Vec<(String, f64)> = Vec::new();
    out.push((
        format!("index/{tag}/write-snapshot"),
        ms(time(runs, || write_snapshot(&doc, &path).unwrap())),
    ));
    drop(doc);
    out.push((
        format!("index/{tag}/arena-parse"),
        ms(time(runs, || minctx_xml::parse(&xml).unwrap())),
    ));
    drop(xml);
    out.push((
        format!("index/{tag}/open-snapshot"),
        ms(time(runs, || open_snapshot(&path).unwrap())),
    ));
    for q in ["//item", "//item[@id]", "count(//item)"] {
        let query = minctx_syntax::parse_xpath(q).unwrap();
        // Cold serve: fresh open, fresh engine (compile included).
        out.push((
            format!("index/{tag}/first-query/{q}"),
            ms(time(runs, || {
                let snap = open_snapshot(&path).unwrap();
                Engine::new(Strategy::MinContext)
                    .evaluate(&snap, &query)
                    .unwrap()
            })),
        ));
    }
    std::fs::remove_file(&path).ok();
    out
}

/// The streaming rows: wall-time of `evaluate_reader` over serialized
/// XMark text vs. the arena pipeline (parse + MINCONTEXT evaluate) on
/// the same text, plus bytes-allocated / peak-working-set for the
/// streamed pass.  Keys carry the element count so tiers diff cleanly.
fn stream_snapshot(elements: usize, runs: usize) -> Vec<(String, f64)> {
    use minctx_stream::StreamOutcome;
    let mut out: Vec<(String, f64)> = Vec::new();
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let cfg = XmarkConfig::sized(elements);
    let doc = xmark_doc(&cfg);
    let xml = to_xml_string(&doc);
    let tag = format!("{}k", elements / 1000);
    out.push((
        format!("stream/{tag}/arena-parse"),
        ms(time(runs, || minctx_xml::parse(&xml).unwrap())),
    ));
    drop(doc);
    let engine = Engine::new(Strategy::Streaming);
    let arena = Engine::new(Strategy::MinContext);
    // One reparse for the whole arena comparison (its cost is the
    // `arena-parse` row above).  PR 5 widened the arena memo keys to
    // u128, so the arena evaluators run at every tier (the old 2²¹-node
    // packed-key cap excluded the 10⁶ tier, whose rows used to stop at
    // the parse cost).
    let arena_doc = minctx_xml::parse(&xml).unwrap();
    for q in ["//item", "//item[@id]", "count(//item)"] {
        let query = minctx_syntax::parse_xpath(q).unwrap();
        let streamed = engine.evaluate_reader_str(&query, &xml).unwrap();
        assert!(
            streamed.is_streamed(),
            "{q} fell back: {:?}",
            streamed.fallback_reason()
        );
        out.push((
            format!("stream/{tag}/stream/{q}"),
            ms(time(runs, || {
                engine.evaluate_reader_str(&query, &xml).unwrap()
            })),
        ));
        // One instrumented pass for the allocation story.
        let live = ALLOC.live();
        let total_before = ALLOC.total();
        ALLOC.reset_peak();
        let outc = engine.evaluate_reader_str(&query, &xml).unwrap();
        let peak = ALLOC.peak().saturating_sub(live);
        let total = ALLOC.total() - total_before;
        std::hint::black_box(&outc);
        out.push((format!("stream/{tag}/alloc-peak-mb/{q}"), mb(peak)));
        out.push((format!("stream/{tag}/alloc-total-mb/{q}"), mb(total)));
        // Arena wall-time on a prebuilt document (the steady-state
        // serving shape; `arena-parse` above is the build cost).
        let t = time(runs, || arena.evaluate(&arena_doc, &query).unwrap());
        out.push((format!("stream/{tag}/arena-eval/{q}"), ms(t)));
        if let StreamOutcome::Streamed(v) = &streamed {
            let want = arena.evaluate(&arena_doc, &query).unwrap();
            let agree = match (v, &want) {
                (minctx_stream::StreamValue::Nodes(msv), minctx_core::Value::NodeSet(ns)) => {
                    msv.len() == ns.len()
                        && msv
                            .iter()
                            .zip(ns.iter())
                            .all(|(m, n)| m.ordinal as usize == n.index())
                }
                (minctx_stream::StreamValue::Number(x), minctx_core::Value::Number(y)) => x == y,
                _ => false,
            };
            assert!(agree, "{q}: stream/arena divergence on the bench corpus");
        }
    }
    out
}

/// The `obs/*` rows: what the observability layer costs.  `eval` is the
/// production compiled-query path carrying the engine's default
/// *disabled* recorder, `eval-traced` the same engine draining lifecycle
/// spans into a discarding JSON-lines sink, and `explain` the fully
/// profiled evaluation (per-step timers on).  The committed
/// eval/eval-traced gap is the record that tracing stays in the noise;
/// the `obs_smoke` binary asserts the bound, these rows track it.
fn obs_snapshot(doc: &Document, runs: usize) -> Vec<(String, f64)> {
    use minctx_obs::{JsonLinesSink, Recorder, Registry};
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut out: Vec<(String, f64)> = Vec::new();
    let q = "//item[@id]";
    let query = minctx_syntax::parse_xpath(q).unwrap();

    let plain = Engine::new(Strategy::MinContext);
    plain.evaluate(doc, &query).unwrap(); // warm the compile cache
    out.push((
        format!("obs/eval/{q}"),
        ms(time(runs, || plain.evaluate(doc, &query).unwrap())),
    ));
    let traced = Engine::new(Strategy::MinContext).with_recorder(Recorder::to_sink(
        std::sync::Arc::new(JsonLinesSink::new(std::io::sink())),
    ));
    traced.evaluate(doc, &query).unwrap();
    out.push((
        format!("obs/eval-traced/{q}"),
        ms(time(runs, || traced.evaluate(doc, &query).unwrap())),
    ));
    out.push((
        format!("obs/explain/{q}"),
        ms(time(runs, || plain.explain(doc, q).unwrap())),
    ));

    // Exposition cost on a registry shaped like a busy serving pool's.
    let registry = Registry::new();
    for i in 0..8 {
        registry.counter(&format!("bench/counter_{i}")).add(i);
    }
    for i in 0..4 {
        let h = registry.histogram(&format!("bench/histogram_{i}"));
        for v in 0..10_000u64 {
            h.record(v * v);
        }
    }
    out.push((
        "obs/render-prometheus".into(),
        ms(time(runs, || registry.render_prometheus())),
    ));
    out
}

/// Times the name-test axis kernels and a handful of serving-shaped engine
/// queries on one document.  Keys are stable across revisions so JSON
/// snapshots diff cleanly.
fn axis_snapshot(doc: &Document, runs: usize) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let root = NodeSet::singleton(doc.root());
    let elems: NodeSet = doc
        .all_nodes()
        .filter(|&n| doc.kind(n).is_element())
        .collect();
    let item = NodeTest::name("item");
    let parlist_set = axis_image(doc, Axis::Descendant, &root, &NodeTest::name("parlist"));

    out.push((
        "axis/descendant::item/from-root".into(),
        ms(time(runs, || {
            axis_image(doc, Axis::Descendant, &root, &item)
        })),
    ));
    out.push((
        "axis/descendant::item/from-parlist".into(),
        ms(time(runs, || {
            axis_image(doc, Axis::Descendant, &parlist_set, &item)
        })),
    ));
    out.push((
        "axis/child::item/from-all-elements".into(),
        ms(time(runs, || axis_image(doc, Axis::Child, &elems, &item))),
    ));
    out.push((
        "axis/attribute::id/from-all-elements".into(),
        ms(time(runs, || {
            axis_image(doc, Axis::Attribute, &elems, &NodeTest::name("id"))
        })),
    ));
    out.push((
        "axis/following::item/from-parlist".into(),
        ms(time(runs, || {
            axis_image(doc, Axis::Following, &parlist_set, &item)
        })),
    ));
    // Control: a kind test over everything — no postings fast path exists,
    // so this row should stay flat across kernel revisions.
    out.push((
        "axis/descendant::node()/from-root".into(),
        ms(time(runs, || {
            axis_image(doc, Axis::Descendant, &root, &NodeTest::AnyNode)
        })),
    ));

    for q in [
        "//item",
        "/site/item",
        "//parlist/listitem",
        "count(//item)",
        "//item[@id]",
    ] {
        let t = time_strategy(doc, Strategy::MinContext, q, None, runs)
            .unwrap_or_else(|| panic!("query {q} failed on the snapshot corpus"));
        out.push((format!("query/{q}"), ms(t)));
    }
    // The same serving queries with the query-IR rewrite pipeline off:
    // the query-opt/raw gap is the committed record of what the rewrite
    // passes buy on this corpus.
    for q in ["//item", "//item[@id]"] {
        let t = time_strategy_opt(doc, Strategy::MinContext, q, None, runs, false)
            .unwrap_or_else(|| panic!("query {q} (raw) failed on the snapshot corpus"));
        out.push((format!("query-raw/{q}"), ms(t)));
    }
    out
}

fn print_snapshot(doc: &Document, entries: &[(String, f64)]) {
    println!(
        "corpus: {} nodes ({} elements)",
        doc.len(),
        doc.element_count()
    );
    for (key, v) in entries {
        // Keys carry their unit: `…/alloc-*-mb/…` rows are megabytes,
        // `serve/*/qps/*` requests per second, `serve/*/shed/*` a
        // request count, everything else median milliseconds.
        let unit = if key.contains("-mb/") {
            "MB"
        } else if key.contains("/qps/") {
            "q/s"
        } else if key.contains("/shed/") {
            "req"
        } else {
            "ms"
        };
        println!("  {key:<52} {v:>10.4} {unit}");
    }
}

fn snapshot_json(cfg: &XmarkConfig, doc: &Document, entries: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"elements\": {}, \"max_fanout\": {}, \"labels\": {}, \
         \"id_density_pct\": {}, \"text_density_pct\": {}, \"seed\": {}}},\n",
        cfg.elements,
        cfg.max_fanout,
        cfg.labels,
        cfg.id_density_pct,
        cfg.text_density_pct,
        cfg.seed
    ));
    s.push_str(&format!(
        "  \"doc\": {{\"nodes\": {}, \"elements\": {}}},\n",
        doc.len(),
        doc.element_count()
    ));
    s.push_str("  \"timings_ms\": {\n");
    let rows: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.4}"))
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn header() {
    print!("{:>8}", "");
    for s in Strategy::ALL {
        print!(" {:>10}", s.as_str());
    }
    println!(" (median ms)");
}

//! Chaos smoke: runs the worker pool under seeded fault injection and
//! asserts the serving layer's four fault-tolerance invariants —
//!
//! 1. no ticket hangs,
//! 2. no `Ok` answer differs from a fault-free evaluation,
//! 3. no worker leaks (the pool is back to full strength afterwards),
//! 4. the pool serves everything correctly once chaos clears.
//!
//! ```text
//! cargo run --release -p minctx-bench --bin chaos_smoke [extra-seed]
//! ```
//!
//! Three fixed seeds make the CI `chaos-smoke` job reproducible; one
//! extra time-derived seed (overridable by the first CLI argument)
//! widens coverage run-over-run.  Every assertion message names the
//! active seed, so a red run can be replayed exactly with
//! `chaos_smoke <seed>`.

use minctx_bench::{values_agree, xmark_doc, XmarkConfig};
use minctx_core::{Budget, Engine, EvalError, Strategy, Value};
use minctx_serve::{chaos, ChaosPlan, Corpus, ServeEngine, ServeError};
use minctx_xml::Document;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FIXED_SEEDS: [u64; 3] = [1, 2, 3];
const WORKERS: usize = 4;
const ROUNDS: usize = 3;
const RESOLVE_WITHIN: Duration = Duration::from_secs(20);

const QUERIES: &[&str] = &[
    "count(//item)",
    "count(//item[@id])",
    "count(/site/item)",
    "boolean(//listitem)",
    "count(//item) + count(//parlist)",
    "count(//listitem/ancestor::*)",
];

fn wait_until(seed: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + RESOLVE_WITHIN;
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "seed {seed}: pool never settled: {what}"
        );
        std::thread::yield_now();
    }
}

fn run_seed(seed: u64, doc: &Arc<Document>, expected: &[Value]) {
    let serve = ServeEngine::builder().workers(WORKERS).shards(2).build();
    chaos::install(ChaosPlan {
        seed,
        eval_panic_per_mille: 100,
        worker_kill_per_mille: 80,
        shard_panic_per_mille: 60,
    });

    let (mut ok, mut contained, mut killed) = (0usize, 0usize, 0usize);
    for _ in 0..ROUNDS {
        // Mixed load: the query set plus dead-on-arrival deadlines.
        let tickets: Vec<_> = QUERIES
            .iter()
            .map(|q| (false, *q, serve.query(Corpus::Document(Arc::clone(doc)), q)))
            .chain((0..4).map(|_| {
                (
                    true,
                    QUERIES[0],
                    serve.query_with_budget(
                        Corpus::Document(Arc::clone(doc)),
                        QUERIES[0],
                        Budget::timeout(Duration::ZERO),
                    ),
                )
            }))
            .collect();
        for (i, (doa, q, t)) in tickets.into_iter().enumerate() {
            let got = t
                .wait_timeout(RESOLVE_WITHIN)
                .unwrap_or_else(|| panic!("seed {seed}: ticket for {q:?} hung"));
            match got {
                Ok(v) => {
                    assert!(!doa, "seed {seed}: dead-on-arrival budget answered Ok");
                    let want = &expected[i % QUERIES.len()];
                    assert!(
                        values_agree(&v, want),
                        "seed {seed}: {q}: chaos answer {v:?} != fault-free {want:?}"
                    );
                    ok += 1;
                }
                Err(ServeError::WorkerPanicked { .. }) => contained += 1,
                Err(ServeError::Disconnected) => killed += 1,
                Err(ServeError::Eval(EvalError::BudgetExhausted { .. })) if doa => {}
                Err(e) => panic!("seed {seed}: {q}: unexpected outcome {e:?}"),
            }
        }
    }

    wait_until(seed, "full worker strength", || {
        serve.live_workers() == serve.worker_count()
    });
    let ticks = chaos::ticks();
    chaos::clear();

    // Post-chaos, the same pool must answer everything correctly.
    for (q, want) in QUERIES.iter().zip(expected) {
        let got = serve
            .query(Corpus::Document(Arc::clone(doc)), q)
            .wait_timeout(RESOLVE_WITHIN)
            .unwrap_or_else(|| panic!("seed {seed}: post-chaos ticket for {q:?} hung"))
            .unwrap_or_else(|e| panic!("seed {seed}: post-chaos {q}: {e:?}"));
        assert!(
            values_agree(&got, want),
            "seed {seed}: post-chaos {q}: {got:?} != {want:?}"
        );
    }

    let stats = serve.stats();
    println!(
        "seed {seed}: {ok} ok, {contained} contained panics, {killed} worker kills \
         ({} respawns), {ticks} chaos ticks — pool healthy",
        stats.worker_respawns,
    );
    drop(serve); // must shut down promptly, leaking nothing
}

fn main() {
    // Injected panics are the point of this binary; keep their
    // backtraces out of the log so a real failure stands out.  Anything
    // NOT marked as chaos still reports through the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));

    let extra_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xC0FFEE)
        });

    let doc = Arc::new(xmark_doc(&XmarkConfig::sized(5_000)));
    let engine = Engine::new(Strategy::OptMinContext);
    let expected: Vec<Value> = QUERIES
        .iter()
        .map(|q| engine.evaluate_str(&doc, q).unwrap())
        .collect();

    let start = Instant::now();
    for seed in FIXED_SEEDS {
        run_seed(seed, &doc, &expected);
    }
    println!("extra seed this run: {extra_seed} (replay: chaos_smoke {extra_seed})");
    run_seed(extra_seed, &doc, &expected);

    println!(
        "chaos smoke: {} seeds survived in {:.1?} — no hangs, no wrong answers, \
         no leaked workers — OK",
        FIXED_SEEDS.len() + 1,
        start.elapsed()
    );
}

//! Parallel-evaluation differential suite: the full cross-suite corpus
//! must produce **identical** results at `threads ∈ {1, 2, 4}` — query
//! for query, ordinal for ordinal (node-set values compare by `NodeId`,
//! which *is* the pre-order ordinal) — against the plain sequential
//! engine, under all four arena strategies.
//!
//! This is the acceptance gate for the chunk-and-merge kernels and the
//! per-context fan-out: chunks are disjoint ascending index ranges
//! merged in chunk order, so a threaded engine is required to be
//! bit-identical to the sequential one, not merely set-equal.  The
//! thresholds are forced far below their defaults so the corpus's small
//! documents actually cross the parallel gates instead of vacuously
//! bypassing them.

use minctx_bench::{corpus, values_agree, xmark_doc, xorshift, XmarkConfig};
use minctx_core::{Engine, Strategy, Value};
use minctx_xml::Document;

/// Corpus documents plus an XMark-style generated document so the
/// postings fast paths split realistic column slices.
fn documents() -> Vec<(String, Document)> {
    let mut docs = corpus::documents();
    docs.push((
        "xmark-2k".to_string(),
        xmark_doc(&XmarkConfig::sized(2_000)),
    ));
    docs
}

fn check(
    tag: &str,
    seq: &Result<Value, minctx_core::EvalError>,
    par: Result<Value, minctx_core::EvalError>,
) {
    match (seq, &par) {
        (Ok(va), Ok(vb)) => assert!(
            values_agree(va, vb),
            "{tag}: sequential {va:?} != parallel {vb:?}"
        ),
        (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "{tag}: errors diverge"),
        _ => panic!("{tag}: sequential {seq:?} vs parallel {par:?}"),
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full corpus x strategy x thread sweep is minutes-long under the interpreter"
)]
fn corpus_agrees_across_thread_counts_and_strategies() {
    for (name, doc) in &documents() {
        // All four strategies on the hand-written documents; the
        // generated document is past the cubic CVT evaluator's practical
        // size (and pointlessly slow under the metered naive one), so it
        // runs the two serving evaluators — only those two route through
        // the parallel kernels anyway.
        let strategies: &[Strategy] = if doc.len() > 650 {
            &[Strategy::MinContext, Strategy::OptMinContext]
        } else {
            &Strategy::ALL
        };
        for &strategy in strategies {
            let baseline = Engine::new(strategy);
            let threaded: Vec<(usize, Engine)> = [2, 4]
                .into_iter()
                .map(|t| {
                    (
                        t,
                        Engine::new(strategy)
                            .with_threads(t)
                            .with_par_threshold(8)
                            .with_par_chunk_min(2),
                    )
                })
                .collect();
            // threads(1) must be the literal sequential engine.
            assert_eq!(Engine::new(strategy).with_threads(1).threads(), 1);
            for query in corpus::QUERIES {
                let seq = baseline.evaluate_str(doc, query);
                for (t, engine) in &threaded {
                    let par = engine.evaluate_str(doc, query);
                    check(&format!("{name} / {strategy} / t={t} / {query}"), &seq, par);
                }
            }
        }
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "randomized corpus sweep is minutes-long under the interpreter"
)]
fn randomized_chunk_geometry_never_changes_results() {
    // Seeded property test: random split geometry (threshold, minimum
    // chunk size, thread count) must never change any answer.  Chunk
    // boundaries land at arbitrary offsets inside the postings columns
    // and context sets, so this sweeps merge seams the fixed-geometry
    // test cannot.
    let doc = xmark_doc(&XmarkConfig::sized(1_500));
    let baseline = Engine::new(Strategy::OptMinContext);
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    for round in 0..12 {
        let threads = 2 + (xorshift(&mut rng) as usize % 4); // 2..=5
        let threshold = 1 + (xorshift(&mut rng) as usize % 64); // 1..=64
        let min_chunk = 1 + (xorshift(&mut rng) as usize % 32); // 1..=32
        let engine = Engine::new(Strategy::OptMinContext)
            .with_threads(threads)
            .with_par_threshold(threshold)
            .with_par_chunk_min(min_chunk);
        for query in corpus::QUERIES
            .iter()
            .filter(|_| xorshift(&mut rng) % 3 == 0)
        {
            let seq = baseline.evaluate_str(&doc, query);
            let par = engine.evaluate_str(&doc, query);
            check(
                &format!("round {round} (t={threads} thr={threshold} min={min_chunk}) / {query}"),
                &seq,
                par,
            );
        }
    }
}

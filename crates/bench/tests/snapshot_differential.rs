//! Snapshot round-trip differential suite: every corpus document is
//! written to a snapshot, reopened zero-copy, and the full query corpus
//! must produce **identical** results on the owned and the mapped
//! document under all four arena strategies — query for query, ordinal
//! for ordinal (node-set values compare by `NodeId`, which *is* the
//! pre-order ordinal).
//!
//! This is the acceptance gate for the flattened column layout: if any
//! accessor (postings CSR, text-heap spans, sorted id index, packed
//! kinds, structure links) decoded mapped bytes differently from owned
//! buffers, some corpus query would diverge here.

use minctx_bench::{corpus, values_agree, xmark_doc, XmarkConfig};
use minctx_core::{open_snapshot, write_snapshot, Engine, Strategy};
use minctx_xml::Document;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "minctx-snap-diff-{}-{name}.mctx",
        std::process::id()
    ))
}

/// The round-trip under test: write, reopen, sanity-check the identity.
fn reopen(name: &str, doc: &Document) -> Document {
    let path = temp(name);
    let info = write_snapshot(doc, &path).expect("write_snapshot");
    let mapped = open_snapshot(&path).expect("open_snapshot");
    std::fs::remove_file(&path).ok();
    assert_eq!(mapped.len(), doc.len(), "{name}: node count");
    assert_eq!(mapped.stamp(), info.stamp, "{name}: stamp");
    assert_ne!(mapped.stamp(), doc.stamp(), "{name}: namespaces disjoint");
    mapped
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full corpus x strategy sweep is minutes-long under the interpreter"
)]
fn corpus_agrees_owned_vs_mapped_across_all_strategies() {
    // The shared corpus documents plus an XMark-style generated document
    // (irregular shape, ids, attributes at realistic densities) so the
    // postings and id-index fast paths see their benchmark shape.
    let mut documents = corpus::documents();
    documents.push((
        "xmark-2k".to_string(),
        xmark_doc(&XmarkConfig::sized(2_000)),
    ));
    for (name, owned) in &documents {
        let mapped = reopen(name, owned);
        // All four strategies on the corpus documents; the generated
        // document is past the cubic CVT evaluator's practical size (and
        // pointlessly slow under the metered naive one), so it runs the
        // two serving evaluators — the mapped-column decoding they all
        // share is already fully cross-checked on the smaller documents.
        let strategies: &[Strategy] = if owned.len() > 650 {
            &[Strategy::MinContext, Strategy::OptMinContext]
        } else {
            &Strategy::ALL
        };
        for &strategy in strategies {
            let engine = Engine::new(strategy);
            for query in corpus::QUERIES {
                let a = engine.evaluate_str(owned, query);
                let b = engine.evaluate_str(&mapped, query);
                match (&a, &b) {
                    (Ok(va), Ok(vb)) => assert!(
                        values_agree(va, vb),
                        "{name} / {strategy} / {query}: owned {va:?} != mapped {vb:?}"
                    ),
                    (Err(ea), Err(eb)) => assert_eq!(
                        ea.to_string(),
                        eb.to_string(),
                        "{name} / {strategy} / {query}: errors diverge"
                    ),
                    _ => panic!("{name} / {strategy} / {query}: owned {a:?} vs mapped {b:?}"),
                }
            }
        }
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full corpus x strategy sweep is minutes-long under the interpreter"
)]
fn mapped_documents_serve_compiled_query_caches() {
    // The serving shape on a mapped document: compile once, evaluate
    // repeatedly with zero name resolution — same guarantee the owned
    // path has, now on borrowed columns.
    let owned = xmark_doc(&XmarkConfig::sized(500));
    let mapped = reopen("cache", &owned);
    let q = minctx_syntax::parse_xpath("//item[@id]").unwrap();
    let engine = Engine::new(Strategy::MinContext);
    let first = engine.evaluate(&mapped, &q).unwrap();
    let resolved_at = mapped.names().lookup_count();
    for _ in 0..3 {
        assert_eq!(engine.evaluate(&mapped, &q).unwrap(), first);
    }
    assert_eq!(
        mapped.names().lookup_count(),
        resolved_at,
        "cached evaluation on a mapped document resolved names"
    );
    // A clone (sharing the mapping and the stamp) hits the same entry.
    let cached = engine.cached_queries();
    engine.evaluate(&mapped.clone(), &q).unwrap();
    assert_eq!(engine.cached_queries(), cached);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "full corpus x strategy sweep is minutes-long under the interpreter"
)]
fn round_trip_of_a_round_trip_is_byte_stable() {
    // write(open(write(doc))) must reproduce the same stamp (= same
    // section bytes): serialization is deterministic and adopting mapped
    // columns loses nothing.
    let doc = xmark_doc(&XmarkConfig::sized(300));
    let (p1, p2) = (temp("stable-1"), temp("stable-2"));
    let s1 = write_snapshot(&doc, &p1).unwrap().stamp;
    let reopened = open_snapshot(&p1).unwrap();
    let s2 = write_snapshot(&reopened, &p2).unwrap().stamp;
    assert_eq!(s1, s2);
    let bytes1 = std::fs::read(&p1).unwrap();
    let bytes2 = std::fs::read(&p2).unwrap();
    assert_eq!(bytes1, bytes2, "re-serialized snapshot differs");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

//! Miri-tier exercise of [`CountingAllocator`]: the only `unsafe` in
//! `minctx-bench` is its `GlobalAlloc` impl, so drive every method —
//! alloc, realloc (grow and shrink), dealloc — directly through the
//! trait and check the gauges.  Under Miri this validates the raw
//! pointers handed back and the layout contract; in the ordinary tier
//! it is the allocator's accounting regression test.

use minctx_bench::CountingAllocator;
use std::alloc::{GlobalAlloc, Layout};

#[test]
fn alloc_realloc_dealloc_account_correctly() {
    let a = CountingAllocator::new();
    let layout = Layout::from_size_align(64, 8).unwrap();

    // SAFETY: (test) layout is non-zero-sized; the pointer is checked,
    // written through while live, and freed below with the same layout.
    let p = unsafe { a.alloc(layout) };
    assert!(!p.is_null());
    // SAFETY: (test) p is valid for 64 bytes.
    unsafe { p.write_bytes(0xAB, 64) };
    assert_eq!(a.live(), 64);
    assert_eq!(a.peak(), 64);

    // SAFETY: (test) p came from `a.alloc(layout)`; growing to 128.
    let p = unsafe { a.realloc(p, layout, 128) };
    assert!(!p.is_null());
    // SAFETY: (test) first byte survived the grow and is readable.
    assert_eq!(unsafe { p.read() }, 0xAB);
    assert_eq!(a.live(), 128);
    assert_eq!(a.peak(), 128);

    let grown = Layout::from_size_align(128, 8).unwrap();
    // SAFETY: (test) p came from the realloc above with `grown`'s size;
    // shrinking to 16.
    let p = unsafe { a.realloc(p, grown, 16) };
    assert!(!p.is_null());
    assert_eq!(a.live(), 16);

    let shrunk = Layout::from_size_align(16, 8).unwrap();
    // SAFETY: (test) p is the live allocation with layout `shrunk`.
    unsafe { a.dealloc(p, shrunk) };
    assert_eq!(a.live(), 0);
    assert_eq!(a.peak(), 128, "peak is sticky");
    assert_eq!(a.total(), 64 + 128 + 16);

    a.reset_peak();
    assert_eq!(a.peak(), 0);
}
